//! Client-side verification of signature-mesh responses.

use crate::vo::{pair_digest, MeshBoundary, MeshResponse};
use vaq_authquery::cost::ClientCost;
use vaq_authquery::{Query, VerifyError};
use vaq_crypto::sha256::Digest;
use vaq_crypto::Verifier;
use vaq_funcdb::{FuncId, FunctionTemplate, Record};

/// Tolerance for boundary score comparisons.
const SCORE_EPS: f64 = 1e-9;

/// Outcome of a successful mesh verification.
#[derive(Clone, Debug, PartialEq)]
pub struct MeshVerified {
    /// Client cost counters (hashes and signature verifications).
    pub cost: ClientCost,
}

/// Verifies a signature-mesh query response.
///
/// The client checks that (1) the query's weight vector lies in the
/// subdomain the server answered from, (2) every consecutive pair across
/// `[left, result…, right]` carries a valid owner signature bound to that
/// subdomain — which proves soundness and adjacency — and (3) the boundary
/// entries prove completeness for the specific query type.
pub fn verify(
    query: &Query,
    response: &MeshResponse,
    template: &FunctionTemplate,
    verifier: &dyn Verifier,
) -> Result<MeshVerified, VerifyError> {
    let mut cost = ClientCost::default();
    let x = query.weights();
    let vo = &response.vo;
    let records = &response.records;

    if x.len() != template.dims() {
        return Err(VerifyError::BadRecord(
            "query weight vector does not match the template arity".into(),
        ));
    }

    // (1) Subdomain containment.
    if vo.subdomain.dims() != x.len() || !vo.subdomain.contains(x) {
        return Err(VerifyError::WrongSubdomain);
    }
    let cell_digest = vo.subdomain.digest();
    cost.hash_ops += 1;

    // (2) Signature chain over consecutive pairs.
    let mut chain: Vec<Digest> = Vec::with_capacity(records.len() + 2);
    chain.push(vo.left_boundary.digest());
    cost.hash_ops += 1;
    for r in records {
        chain.push(r.digest());
        cost.hash_ops += 1;
    }
    chain.push(vo.right_boundary.digest());
    cost.hash_ops += 1;

    if vo.pair_signatures.len() != chain.len() - 1 {
        return Err(VerifyError::MalformedVo(format!(
            "expected {} pair signatures, got {}",
            chain.len() - 1,
            vo.pair_signatures.len()
        )));
    }
    for (pair, signature) in chain.windows(2).zip(vo.pair_signatures.iter()) {
        let digest = pair_digest(&pair[0], &pair[1], &cell_digest);
        cost.hash_ops += 1;
        cost.signature_verifications += 1;
        if !verifier.verify_digest(&digest, signature) {
            return Err(VerifyError::SignatureMismatch);
        }
    }

    // (3) Query semantics.
    let score_of = |record: &Record| -> Result<f64, VerifyError> {
        if record.arity() != template.dims() {
            return Err(VerifyError::BadRecord(format!(
                "record {} has arity {}, template needs {}",
                record.id,
                record.arity(),
                template.dims()
            )));
        }
        Ok(template.to_function(FuncId(0), record).eval(x))
    };
    let scores: Vec<f64> = records.iter().map(&score_of).collect::<Result<_, _>>()?;
    for w in scores.windows(2) {
        if w[0] > w[1] + SCORE_EPS {
            return Err(VerifyError::InconsistentResultOrder);
        }
    }
    let left_score = match &vo.left_boundary {
        MeshBoundary::Record(r) => Some(score_of(r)?),
        _ => None,
    };
    let right_score = match &vo.right_boundary {
        MeshBoundary::Record(r) => Some(score_of(r)?),
        _ => None,
    };

    match query {
        Query::Range { lower, upper, .. } => {
            for (i, s) in scores.iter().enumerate() {
                if *s < lower - SCORE_EPS || *s > upper + SCORE_EPS {
                    return Err(VerifyError::UnsoundRecord { position: i });
                }
            }
            if let Some(ls) = left_score {
                if ls >= *lower - SCORE_EPS {
                    return Err(VerifyError::Incomplete(
                        "left boundary record also satisfies the range".into(),
                    ));
                }
            }
            if let Some(rs) = right_score {
                if rs <= *upper + SCORE_EPS {
                    return Err(VerifyError::Incomplete(
                        "right boundary record also satisfies the range".into(),
                    ));
                }
            }
        }
        Query::TopK { k, .. } => {
            if !records.is_empty() || *k > 0 {
                // The window must end at the max token unless the database is
                // smaller than k (in which case it must start at the min
                // token as well and include everything).
                if !matches!(vo.right_boundary, MeshBoundary::MaxToken) {
                    return Err(VerifyError::Incomplete(
                        "top-k result does not end at the maximum of the list".into(),
                    ));
                }
                if records.len() < *k && !matches!(vo.left_boundary, MeshBoundary::MinToken) {
                    return Err(VerifyError::WrongResultLength {
                        expected: *k,
                        got: records.len(),
                    });
                }
                if records.len() > *k {
                    return Err(VerifyError::WrongResultLength {
                        expected: *k,
                        got: records.len(),
                    });
                }
                if let (Some(ls), Some(min_included)) =
                    (left_score, scores.iter().cloned().reduce(f64::min))
                {
                    if ls > min_included + SCORE_EPS {
                        return Err(VerifyError::Incomplete(
                            "a record outside the top-k result scores higher than a returned one"
                                .into(),
                        ));
                    }
                }
            }
        }
        Query::Knn { k, target, .. } => {
            if records.len() > *k {
                return Err(VerifyError::WrongResultLength {
                    expected: *k,
                    got: records.len(),
                });
            }
            if records.len() < *k
                && !(matches!(vo.left_boundary, MeshBoundary::MinToken)
                    && matches!(vo.right_boundary, MeshBoundary::MaxToken))
            {
                return Err(VerifyError::WrongResultLength {
                    expected: *k,
                    got: records.len(),
                });
            }
            if !records.is_empty() {
                let worst_included = scores
                    .iter()
                    .map(|s| (s - target).abs())
                    .fold(0.0f64, f64::max);
                if let Some(ls) = left_score {
                    if (ls - target).abs() + SCORE_EPS < worst_included {
                        return Err(VerifyError::Incomplete(
                            "an excluded record is closer to the target than a returned one".into(),
                        ));
                    }
                }
                if let Some(rs) = right_score {
                    if (rs - target).abs() + SCORE_EPS < worst_included {
                        return Err(VerifyError::Incomplete(
                            "an excluded record is closer to the target than a returned one".into(),
                        ));
                    }
                }
            }
        }
    }

    Ok(MeshVerified { cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureMesh;
    use vaq_crypto::{SignatureScheme, Signer};
    use vaq_workload::uniform_dataset;

    #[test]
    fn mesh_client_cost_has_many_signature_verifications() {
        let ds = uniform_dataset(15, 1, 31);
        let scheme = SignatureScheme::test_rsa(31);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let verifier = scheme.verifier();
        let query = Query::top_k(vec![0.5], 6);
        let resp = mesh.process(&ds, &query);
        let verified = verify(&query, &resp, &ds.template, verifier.as_ref()).unwrap();
        // |q| + 1 signature verifications — the defining cost of the mesh.
        assert_eq!(
            verified.cost.signature_verifications,
            resp.records.len() + 1
        );
        assert!(verified.cost.hash_ops >= resp.records.len());
    }

    #[test]
    fn mesh_rejects_wrong_subdomain_weights() {
        let ds = uniform_dataset(6, 2, 32);
        let scheme = SignatureScheme::test_rsa(32);
        let mesh = SignatureMesh::build(&ds, &scheme);
        if mesh.cell_count() < 2 {
            return;
        }
        let verifier = scheme.verifier();
        // Answer honestly for one weight vector, verify against another that
        // lives in a different cell.
        let probes: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![i as f64 / 40.0, 1.0 - i as f64 / 40.0])
            .collect();
        let base_cell = mesh
            .cells()
            .iter()
            .position(|c| c.constraints.contains(&probes[0]))
            .unwrap();
        let other = probes[1..]
            .iter()
            .find(|w| {
                mesh.cells()
                    .iter()
                    .position(|c| c.constraints.contains(w))
                    .unwrap()
                    != base_cell
            })
            .cloned();
        let Some(other) = other else { return };
        let resp = mesh.process(&ds, &Query::top_k(probes[0].clone(), 2));
        let replay_query = Query::top_k(other, 2);
        let out = verify(&replay_query, &resp, &ds.template, verifier.as_ref());
        assert!(out.is_err());
    }

    #[test]
    fn mesh_rejects_mismatched_signature_count() {
        let ds = uniform_dataset(10, 1, 33);
        let scheme = SignatureScheme::test_rsa(33);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let verifier = scheme.verifier();
        let query = Query::range(vec![0.5], 0.2, 0.8);
        let mut resp = mesh.process(&ds, &query);
        resp.vo.pair_signatures.pop();
        let out = verify(&query, &resp, &ds.template, verifier.as_ref());
        assert!(matches!(out, Err(VerifyError::MalformedVo(_))));
    }
}
