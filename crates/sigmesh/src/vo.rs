//! Verification objects for the signature-mesh baseline.

use vaq_authquery::cost::ServerCost;
use vaq_crypto::sha256::{sha256, Digest, Sha256};
use vaq_crypto::Signature;
use vaq_funcdb::{Record, SubdomainConstraints};

/// A boundary entry flanking a mesh query result.
#[derive(Clone, Debug, PartialEq)]
pub enum MeshBoundary {
    /// The `min` token of the sorted list.
    MinToken,
    /// The `max` token of the sorted list.
    MaxToken,
    /// A real record adjacent to the result window.
    Record(Record),
}

impl MeshBoundary {
    /// Digest of the entry as it appears inside pair digests.
    pub fn digest(&self) -> Digest {
        match self {
            MeshBoundary::MinToken => sha256(b"vaq-sigmesh:min-token"),
            MeshBoundary::MaxToken => sha256(b"vaq-sigmesh:max-token"),
            MeshBoundary::Record(r) => r.digest(),
        }
    }

    /// Approximate serialized size.
    pub fn byte_size(&self) -> usize {
        match self {
            MeshBoundary::MinToken | MeshBoundary::MaxToken => 1,
            MeshBoundary::Record(r) => 1 + r.canonical_bytes().len(),
        }
    }
}

/// The digest signed for one consecutive pair inside one subdomain:
/// `H( H(left) | H(right) | B_i )` where `B_i` is the digest of the
/// subdomain's defining constraint system.
pub fn pair_digest(left: &Digest, right: &Digest, subdomain: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(left);
    h.update(right);
    h.update(subdomain);
    h.finalize()
}

/// The verification object returned with a mesh query result.
#[derive(Clone, Debug)]
pub struct MeshVo {
    /// The constraint system of the subdomain that contains the query's
    /// weight vector (the client checks containment and hashes it into the
    /// pair digests).
    pub subdomain: SubdomainConstraints,
    /// Record (or token) immediately left of the result window.
    pub left_boundary: MeshBoundary,
    /// Record (or token) immediately right of the result window.
    pub right_boundary: MeshBoundary,
    /// One signature per consecutive pair across
    /// `[left, r_a, …, r_b, right]` — that is `|q| + 1` signatures.
    pub pair_signatures: Vec<Signature>,
}

impl MeshVo {
    /// Approximate size in bytes (Fig. 8 metric).
    pub fn byte_size(&self) -> usize {
        let constraints_bytes = self.subdomain.canonical_bytes().len();
        constraints_bytes
            + self.left_boundary.byte_size()
            + self.right_boundary.byte_size()
            + self
                .pair_signatures
                .iter()
                .map(Signature::byte_len)
                .sum::<usize>()
    }

    /// Number of signatures carried.
    pub fn signature_count(&self) -> usize {
        self.pair_signatures.len()
    }
}

/// A mesh query response: result records, verification object and server
/// cost counters (shared [`ServerCost`] type so the harness can compare the
/// schemes directly).
#[derive(Clone, Debug)]
pub struct MeshResponse {
    /// Result records in ascending score order.
    pub records: Vec<Record>,
    /// The verification object.
    pub vo: MeshVo,
    /// Server cost; `imh_nodes_visited` holds the number of mesh cells
    /// scanned by the linear subdomain search.
    pub cost: ServerCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_digests_are_distinct() {
        let r = Record::new(1, vec![0.4]);
        let d1 = MeshBoundary::MinToken.digest();
        let d2 = MeshBoundary::MaxToken.digest();
        let d3 = MeshBoundary::Record(r).digest();
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d2, d3);
    }

    #[test]
    fn pair_digest_binds_all_parts() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        let s1 = sha256(b"cell-1");
        let s2 = sha256(b"cell-2");
        assert_ne!(pair_digest(&a, &b, &s1), pair_digest(&b, &a, &s1));
        assert_ne!(pair_digest(&a, &b, &s1), pair_digest(&a, &b, &s2));
    }
}
