//! The signature-mesh baseline (Yang, Cai & Hu, "Authentication of function
//! queries", ICDE 2016), re-implemented as the head-to-head comparator for
//! every figure of the paper's evaluation.
//!
//! The scheme works directly from the theorem of function sortability: the
//! pairwise intersections of the database's functions partition the weight
//! domain into subdomains, inside each of which the functions have one fixed
//! order. For every subdomain the data owner signs each pair of *consecutive*
//! entries of the sorted list (including the `min`/`max` tokens); the set of
//! all these signatures is the signature mesh.
//!
//! At query time the server performs a **linear search** over the subdomains
//! to find the one containing the query's weight vector (this linear search
//! is the main server-side cost the paper improves upon), extracts the
//! result window from the sorted list, and returns the chain of pair
//! signatures covering the window plus one boundary record on each side. The
//! client verifies every pair signature — `|q| + 1` expensive public-key
//! operations versus a single one for the IFMH schemes, which is exactly the
//! user-side cost gap shown in Fig. 7.
//!
//! Simplification relative to [20]: the original mesh merges the signature of
//! a pair that stays consecutive across several *adjacent* subdomains into
//! one signature. This implementation signs per subdomain (the upper bound
//! the paper quotes, "number of subdomains times the total number of
//! records"); the comparative shapes of Figs. 5–8 are unaffected because the
//! mesh remains the scheme whose signature count scales with the arrangement
//! size. See DESIGN.md for the full substitution note.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod verify;
pub mod vo;

pub use build::{MeshCell, SignatureMesh};
pub use verify::verify as verify_mesh_response;
pub use vo::{MeshBoundary, MeshResponse, MeshVo};

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_authquery::Query;
    use vaq_crypto::{SignatureScheme, Signer};
    use vaq_workload::uniform_dataset;

    #[test]
    fn mesh_end_to_end_all_query_types() {
        let ds = uniform_dataset(10, 1, 21);
        let scheme = SignatureScheme::test_rsa(5);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let verifier = scheme.verifier();
        for query in [
            Query::top_k(vec![0.7], 3),
            Query::range(vec![0.4], 0.2, 0.6),
            Query::knn(vec![0.3], 4, 0.5),
        ] {
            let resp = mesh.process(&ds, &query);
            let out = verify_mesh_response(&query, &resp, &ds.template, verifier.as_ref());
            assert!(out.is_ok(), "{query}: {:?}", out.err());
        }
    }

    #[test]
    fn mesh_signature_count_scales_with_cells_times_records() {
        let ds = uniform_dataset(8, 1, 22);
        let scheme = SignatureScheme::test_rsa(6);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let expected = mesh.cell_count() * (ds.len() + 1);
        assert_eq!(mesh.stats().signatures, expected);
        assert!(mesh.stats().signatures > 1);
    }

    #[test]
    fn mesh_detects_dropped_record() {
        let ds = uniform_dataset(12, 1, 23);
        let scheme = SignatureScheme::test_rsa(7);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let verifier = scheme.verifier();
        let query = Query::range(vec![0.5], 0.1, 0.9);
        let mut resp = mesh.process(&ds, &query);
        assert!(resp.records.len() >= 2);
        resp.records.remove(resp.records.len() / 2);
        let out = verify_mesh_response(&query, &resp, &ds.template, verifier.as_ref());
        assert!(out.is_err());
    }

    #[test]
    fn mesh_detects_modified_record_and_tampered_signature() {
        let ds = uniform_dataset(12, 1, 24);
        let scheme = SignatureScheme::test_rsa(8);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let verifier = scheme.verifier();
        let query = Query::top_k(vec![0.6], 4);

        let mut resp = mesh.process(&ds, &query);
        resp.records[0].attrs[0] += 0.01;
        assert!(verify_mesh_response(&query, &resp, &ds.template, verifier.as_ref()).is_err());

        let mut resp = mesh.process(&ds, &query);
        if let vaq_crypto::Signature::Rsa(sig) = &mut resp.vo.pair_signatures[0] {
            sig.bytes[0] ^= 1;
        }
        assert!(verify_mesh_response(&query, &resp, &ds.template, verifier.as_ref()).is_err());
    }

    #[test]
    fn mesh_server_cost_reflects_linear_search() {
        let ds = uniform_dataset(10, 1, 25);
        let scheme = SignatureScheme::test_rsa(9);
        let mesh = SignatureMesh::build(&ds, &scheme);
        let query = Query::top_k(vec![0.9], 2);
        let resp = mesh.process(&ds, &query);
        assert!(resp.cost.imh_nodes_visited >= 1);
        assert!(resp.cost.imh_nodes_visited <= mesh.cell_count());
    }
}
