//! Signature-mesh construction and server-side query processing.

use crate::vo::{pair_digest, MeshBoundary, MeshResponse, MeshVo};
use vaq_authquery::cost::{OwnerStats, ServerCost};
use vaq_authquery::Query;
use vaq_crypto::sha256::Digest;
use vaq_crypto::{Signature, Signer};
use vaq_funcdb::{Dataset, FuncId, LpSplitOracle, SubdomainConstraints};
use vaq_itree::ITreeBuilder;

/// One cell (subdomain) of the signature mesh.
#[derive(Clone, Debug)]
pub struct MeshCell {
    /// The subdomain's constraint system.
    pub constraints: SubdomainConstraints,
    /// A point inside the subdomain.
    pub witness: Vec<f64>,
    /// Function ids sorted ascending by score inside this subdomain.
    pub sorted: Vec<FuncId>,
}

/// The signature mesh: every subdomain's sorted list with one signature per
/// consecutive pair.
#[derive(Debug)]
pub struct SignatureMesh {
    cells: Vec<MeshCell>,
    /// `signatures[c][p]` signs pair `p` of cell `c`; pair 0 is
    /// `(min, first)`, pair `n` is `(last, max)`.
    signatures: Vec<Vec<Signature>>,
    stats: OwnerStats,
}

impl SignatureMesh {
    /// Builds the mesh for a dataset: enumerates the subdomain arrangement
    /// (using the same exact split oracle as the IFMH-tree so the two
    /// schemes index identical subdomains) and signs every consecutive pair
    /// in every subdomain.
    pub fn build(dataset: &Dataset, signer: &dyn Signer) -> Self {
        // Enumerate subdomains with the shared I-tree machinery; the mesh
        // itself keeps only the flat cell list (it has no search tree — that
        // is precisely its weakness).
        let itree = ITreeBuilder::new(LpSplitOracle::new())
            .build(&dataset.functions, dataset.domain.clone());

        let record_digests: Vec<Digest> = dataset.records.iter().map(|r| r.digest()).collect();
        let mut hash_ops = record_digests.len();
        let min_d = MeshBoundary::MinToken.digest();
        let max_d = MeshBoundary::MaxToken.digest();
        hash_ops += 2;

        let mut cells = Vec::with_capacity(itree.subdomain_count());
        let mut signatures = Vec::with_capacity(itree.subdomain_count());
        let mut structure_bytes = 0usize;
        let sig_size = signer.verifier().signature_size();

        for &leaf in itree.leaf_ids() {
            let constraints = itree.constraints(leaf).clone();
            let sorted = itree.sorted_list(leaf).to_vec();
            let witness = constraints
                .witness_point()
                .unwrap_or_else(|| constraints.domain.center());

            // Leaf digests with the min/max tokens at the ends.
            let mut chain: Vec<Digest> = Vec::with_capacity(sorted.len() + 2);
            chain.push(min_d);
            for id in &sorted {
                chain.push(record_digests[id.index()]);
            }
            chain.push(max_d);

            let cell_digest = constraints.digest();
            hash_ops += 1;

            let mut cell_sigs = Vec::with_capacity(chain.len() - 1);
            for pair in chain.windows(2) {
                let digest = pair_digest(&pair[0], &pair[1], &cell_digest);
                hash_ops += 1;
                cell_sigs.push(signer.sign_digest(&digest));
            }
            structure_bytes +=
                constraints.canonical_bytes().len() + sorted.len() * 4 + cell_sigs.len() * sig_size;

            cells.push(MeshCell {
                constraints,
                witness,
                sorted,
            });
            signatures.push(cell_sigs);
        }

        let total_signatures: usize = signatures.iter().map(Vec::len).sum();
        let stats = OwnerStats {
            records: dataset.len(),
            subdomains: cells.len(),
            imh_nodes: 0,
            fmh_nodes: 0,
            hash_ops,
            signatures: total_signatures,
            structure_bytes,
        };

        SignatureMesh {
            cells,
            signatures,
            stats,
        }
    }

    /// Number of mesh cells (subdomains).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Read access to the cells.
    pub fn cells(&self) -> &[MeshCell] {
        &self.cells
    }

    /// Owner-side statistics (Fig. 5 metrics).
    pub fn stats(&self) -> &OwnerStats {
        &self.stats
    }

    /// Processes an analytic query: linear search for the containing cell,
    /// window selection on its sorted list, and assembly of the signature
    /// chain covering the window.
    pub fn process(&self, dataset: &Dataset, query: &Query) -> MeshResponse {
        let x = query.weights();

        // Linear search over the cells — the cost the paper criticises.
        let mut scanned = 0usize;
        let mut found: Option<usize> = None;
        for (idx, cell) in self.cells.iter().enumerate() {
            scanned += 1;
            if cell.constraints.contains(x) {
                found = Some(idx);
                break;
            }
        }
        let cell_idx = found.expect("query weights outside the declared domain");
        let cell = &self.cells[cell_idx];
        let n = cell.sorted.len();

        let scores: Vec<f64> = cell.sorted.iter().map(|id| dataset.score(*id, x)).collect();
        let window = query.select_window(&scores);

        // Positions in the token-extended chain: token 0 = min, records at
        // 1..=n, token n+1 = max. Pair p sits between chain positions p and
        // p+1.
        let (records, first_chain, last_chain): (Vec<_>, usize, usize) = match window {
            Some((s, e)) => (
                cell.sorted[s..=e]
                    .iter()
                    .map(|id| dataset.record(*id).clone())
                    .collect(),
                s,
                e + 2,
            ),
            None => {
                let p = match query {
                    Query::Range { lower, .. } => scores.partition_point(|v| *v < *lower),
                    _ => n,
                };
                (Vec::new(), p, p + 1)
            }
        };

        let left_boundary = if first_chain == 0 {
            MeshBoundary::MinToken
        } else {
            MeshBoundary::Record(dataset.record(cell.sorted[first_chain - 1]).clone())
        };
        let right_boundary = if last_chain == n + 1 {
            MeshBoundary::MaxToken
        } else {
            MeshBoundary::Record(dataset.record(cell.sorted[last_chain - 1]).clone())
        };

        // Pair signatures covering chain positions first_chain..last_chain.
        let pair_signatures: Vec<Signature> = (first_chain..last_chain)
            .map(|p| self.signatures[cell_idx][p].clone())
            .collect();

        let cost = ServerCost {
            imh_nodes_visited: scanned,
            fmh_nodes_visited: (last_chain - first_chain + 1) + pair_signatures.len(),
            vo_nodes_collected: pair_signatures.len(),
            result_len: records.len(),
        };

        MeshResponse {
            records,
            vo: MeshVo {
                subdomain: cell.constraints.clone(),
                left_boundary,
                right_boundary,
                pair_signatures,
            },
            cost,
        }
    }
}
