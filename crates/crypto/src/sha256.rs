//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! The paper uses SHA-256 as the one-way hash `H(·)` for both the FMH-tree
//! (Merkle hashing of sorted function lists) and the IMH-tree (hashing of
//! intersection nodes), as well as inside the baseline signature mesh.
//!
//! The implementation favours clarity over raw speed but is easily fast
//! enough for the paper-scale experiments (tens of millions of compressions
//! per second are not required; hashing is the *cheap* operation in every
//! figure).

/// A 32-byte SHA-256 digest.
pub type Digest = [u8; 32];

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use vaq_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// fn hex(d: &[u8]) -> String { d.iter().map(|b| format!("{b:02x}")).collect() }
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block awaiting compression.
    buffer: [u8; 64],
    /// Number of valid bytes in `buffer`.
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher with the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partial block first.
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process full blocks directly from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut tmp = [0u8; 64];
            tmp.copy_from_slice(block);
            self.compress(&tmp);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_count(&pad[..pad_len + 8]);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like [`update`](Self::update) but without updating the running length
    /// (used only for padding).
    fn update_no_count(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    /// SHA-256 compression function on a single 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 of two concatenated 32-byte digests, `H(a | b)` — the Merkle-tree
/// combiner used throughout the paper.
///
/// Two digests are exactly one 64-byte compression block, and the padding
/// for a 64-byte message is a fixed second block, so this runs as two
/// `compress` calls with no buffering, no length bookkeeping, and no
/// intermediate allocation — the hot path of every interior-node hash.
pub fn sha256_pair(a: &Digest, b: &Digest) -> Digest {
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(a);
    block[32..].copy_from_slice(b);

    // Padding block for a 64-byte message: 0x80, zeros, then the bit length
    // (512) as a 64-bit big-endian integer.
    let mut pad = [0u8; 64];
    pad[0] = 0x80;
    pad[56..].copy_from_slice(&512u64.to_be_bytes());

    let mut h = Sha256::new();
    h.compress(&block);
    h.compress(&pad);

    let mut out = [0u8; 32];
    for (i, word) in h.state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 of the concatenation of several byte slices, streamed through the
/// hasher with no intermediate staging buffer.
pub fn sha256_multi(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

/// Renders a digest (or any byte slice) as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        to_hex(d)
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn exactly_one_block() {
        // 64 bytes: exercises padding into a second block.
        let msg = [0x61u8; 64];
        assert_eq!(
            hex(&sha256(&msg)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_boundary() {
        // 55 bytes keeps padding in the same block, 56 pushes it into the next.
        let m55 = [0x61u8; 55];
        let m56 = [0x61u8; 56];
        assert_eq!(
            hex(&sha256(&m55)),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
        );
        assert_eq!(
            hex(&sha256(&m56)),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = sha256(&data);
        for chunk_size in [1usize, 3, 7, 63, 64, 65, 100, 999] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_size) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn pair_matches_manual_concatenation() {
        let a = sha256(b"left child");
        let b = sha256(b"right child");
        let mut joined = Vec::new();
        joined.extend_from_slice(&a);
        joined.extend_from_slice(&b);
        assert_eq!(sha256_pair(&a, &b), sha256(&joined));
        // Order matters.
        assert_ne!(sha256_pair(&a, &b), sha256_pair(&b, &a));
    }

    #[test]
    fn multi_matches_manual_concatenation() {
        let parts: [&[u8]; 4] = [b"VAQ-EPOCH", &42u64.to_be_bytes(), b"", b"digest bytes"];
        let mut joined = Vec::new();
        for p in parts {
            joined.extend_from_slice(p);
        }
        assert_eq!(sha256_multi(&parts), sha256(&joined));
        assert_eq!(sha256_multi(&[]), sha256(b""));
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let d1 = sha256(b"record-1|3.9|2|5");
        let d2 = sha256(b"record-1|3.9|2|5");
        let d3 = sha256(b"record-1|3.9|2|6");
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }
}
