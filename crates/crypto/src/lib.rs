//! Cryptographic substrate for the verified-analytics workspace.
//!
//! The paper ("Verifying the Correctness of Analytic Query Results",
//! Nosrati & Cai) relies on three cryptographic building blocks:
//!
//! * a one-way hash function (SHA-256 in the paper's experiments),
//! * RSA signatures, and
//! * DSA signatures (Fig. 7c compares RSA against DSA verification cost).
//!
//! The reproduction environment only allows a small set of general-purpose
//! crates, none of which provide cryptography, so this crate implements the
//! whole stack from scratch:
//!
//! * [`sha256`] — the FIPS 180-4 SHA-256 compression function and a
//!   streaming [`sha256::Sha256`] hasher.
//! * [`bignum`] — an arbitrary-precision unsigned integer
//!   ([`bignum::BigUint`]) with the arithmetic needed for public-key
//!   signatures (modular exponentiation, modular inverse, division).
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation.
//! * [`rsa`] — textbook RSA signatures over SHA-256 digests.
//! * [`dsa`] — classic (finite-field) DSA signatures.
//! * [`signer`] — object-safe [`signer::Signer`] / [`signer::Verifier`]
//!   traits so the authenticated data structures can be parameterised over
//!   the signature scheme.
//!
//! # Security disclaimer
//!
//! These primitives exist to reproduce the *performance shape* of the
//! paper's experiments (hashing is cheap, signature operations are orders of
//! magnitude more expensive, RSA verification is cheaper than DSA
//! verification). They are **not** hardened implementations: there is no
//! padding scheme beyond a minimal deterministic one, no blinding, and no
//! constant-time guarantee. Do not use this crate to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bignum;
pub mod dsa;
pub mod montgomery;
pub mod prime;
pub mod rsa;
pub mod sha256;
pub mod sign_pool;
pub mod signer;

pub use bignum::BigUint;
pub use dsa::{DsaKeyPair, DsaPublicKey, DsaSignature};
pub use rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
pub use sha256::{sha256, Digest, Sha256};
pub use signer::{PublicKey, Signature, SignatureScheme, Signer, Verifier};
