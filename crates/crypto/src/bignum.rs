//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] provides exactly the arithmetic needed by the RSA and DSA
//! signature schemes used in the paper's experiments: comparison, addition,
//! subtraction, multiplication, long division, modular exponentiation,
//! modular inverse and random sampling. Limbs are stored little-endian as
//! `u32` so every primitive operation fits in `u64` intermediates without
//! `unsafe`.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is a little-endian vector of 32-bit limbs
/// with no trailing zero limbs (zero is represented by an empty vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![(v & 0xffff_ffff) as u32, (v >> 32) as u32];
        let mut out = BigUint {
            limbs: std::mem::take(&mut limbs),
        };
        out.normalize();
        out
    }

    /// Constructs from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut cur: u32 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            cur |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(cur);
                cur = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(cur);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Returns the value as big-endian bytes without leading zeros (zero
    /// becomes a single `0x00` byte).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Lowercase hexadecimal rendering without a `0x` prefix.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:08x}"));
            }
        }
        s
    }

    /// Parses a hexadecimal string (no prefix). Returns `None` on invalid
    /// characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<char> = s.chars().collect();
        let mut idx = 0;
        // Handle an odd leading nibble.
        if chars.len() % 2 == 1 {
            bytes.push(chars[0].to_digit(16)? as u8);
            idx = 1;
        }
        while idx < chars.len() {
            let hi = chars[idx].to_digit(16)? as u8;
            let lo = chars[idx + 1].to_digit(16)? as u8;
            bytes.push(hi * 16 + lo);
            idx += 2;
        }
        Some(BigUint::from_bytes_be(&bytes))
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = *self.limbs.get(i).unwrap_or(&0) as u64;
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let s = a + b + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction; panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self.cmp_to(other) != Ordering::Less, "BigUint underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let idx = i + j;
                let cur = out[idx] as u64 + (a as u64) * (b as u64) + carry;
                out[idx] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut idx = i + other.limbs.len();
            while carry > 0 {
                let cur = out[idx] as u64 + carry;
                out[idx] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                idx += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 32;
        let bit_shift = n % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 32;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// Total-order comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Long division: returns `(quotient, remainder)`.
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_to(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut rem = 0u64;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem));
        }

        // Bitwise long division for the multi-limb case; O(bits) iterations,
        // each a shift + compare + subtract. Plenty fast for <= 1024-bit
        // operands used in this workspace.
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        let total_bits = self.bits();
        let mut q_limbs = vec![0u32; self.limbs.len()];
        for i in (0..total_bits).rev() {
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder = remainder.add(&BigUint::one());
            }
            if remainder.cmp_to(divisor) != Ordering::Less {
                remainder = remainder.sub(divisor);
                q_limbs[i / 32] |= 1 << (i % 32);
            }
        }
        quotient.limbs = q_limbs;
        quotient.normalize();
        (quotient, remainder)
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular addition.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.add(other).rem(modulus)
    }

    /// Modular subtraction (`self - other mod modulus`), handling wrap-around.
    pub fn sub_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let a = self.rem(modulus);
        let b = other.rem(modulus);
        if a.cmp_to(&b) != Ordering::Less {
            a.sub(&b)
        } else {
            a.add(modulus).sub(&b)
        }
    }

    /// Modular multiplication.
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular exponentiation.
    ///
    /// Odd multi-limb moduli (every RSA modulus and DSA prime in this
    /// workspace) go through the windowed Montgomery fast path
    /// ([`crate::montgomery::MontgomeryContext`]); everything else falls
    /// back to [`BigUint::mod_pow_legacy`]. The two paths are
    /// property-tested equivalent.
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if modulus.limbs.len() > 1 && !modulus.is_even() {
            if let Some(ctx) = crate::montgomery::MontgomeryContext::new(modulus) {
                return ctx.mod_pow(self, exponent);
            }
        }
        self.mod_pow_legacy(exponent, modulus)
    }

    /// Modular exponentiation by plain LSB-first square-and-multiply, with
    /// every product reduced by long division.
    ///
    /// This is the pre-Montgomery implementation, kept (and exercised by
    /// property tests) as the reference the fast path must agree with, and
    /// as the fallback for even or single-limb moduli.
    pub fn mod_pow_legacy(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "mod_pow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(modulus);
        let nbits = exponent.bits();
        for i in 0..nbits {
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            base = base.mul_mod(&base, modulus);
        }
        result
    }

    /// Greatest common divisor (binary-free, Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` if `self` and `modulus` are not coprime.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() {
            return None;
        }
        // Extended Euclid with coefficients tracked as (value, is_negative).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (BigUint::zero(), false);
        let mut t1 = (BigUint::one(), false);

        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1 (signed arithmetic on magnitude+sign pairs)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }

        if !r0.is_one() {
            return None;
        }
        // Normalize t0 into [0, modulus).
        let (mag, neg) = t0;
        let mag = mag.rem(modulus);
        if neg && !mag.is_zero() {
            Some(modulus.sub(&mag))
        } else {
            Some(mag)
        }
    }

    /// Uniformly random value in `[0, bound)` (rejection sampling).
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if candidate.cmp_to(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        if bits == 0 {
            return BigUint::zero();
        }
        let limbs_needed = bits.div_ceil(32);
        let mut limbs = Vec::with_capacity(limbs_needed);
        for _ in 0..limbs_needed {
            limbs.push(rng.gen::<u32>());
        }
        // Mask excess bits in the top limb.
        let excess = limbs_needed * 32 - bits;
        if excess > 0 {
            let mask = u32::MAX >> excess;
            *limbs.last_mut().expect("at least one limb") &= mask;
        }
        let mut r = BigUint { limbs };
        r.normalize();
        r
    }

    /// Random value with exactly `bits` bits (the top bit is forced to one).
    pub fn random_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0);
        let mut v = Self::random_bits(rng, bits);
        // Force the top bit.
        let limb = (bits - 1) / 32;
        let off = (bits - 1) % 32;
        while v.limbs.len() <= limb {
            v.limbs.push(0);
        }
        v.limbs[limb] |= 1 << off;
        v.normalize();
        v
    }

    /// Converts to `u64`, returning `None` when the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// The little-endian `u32` limbs (no trailing zeros). Internal to the
    /// crate: the Montgomery context works on raw limbs.
    pub(crate) fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    /// Internal to the crate (Montgomery-domain conversions).
    pub(crate) fn from_limbs(limbs: Vec<u32>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

/// Signed subtraction on (magnitude, negative) pairs: `a - b`.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    let (am, an) = a;
    let (bm, bn) = b;
    match (an, bn) {
        // a - b with both non-negative
        (false, false) => {
            if am.cmp_to(bm) != Ordering::Less {
                (am.sub(bm), false)
            } else {
                (bm.sub(am), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (am.add(bm), false),
        // (-a) - b = -(a + b)
        (true, false) => (am.add(bm), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if bm.cmp_to(am) != Ordering::Less {
                (bm.sub(am), false)
            } else {
                (am.sub(bm), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn roundtrip_bytes() {
        let v = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(
            v.to_bytes_be(),
            vec![0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]
        );
        // Leading zeros are stripped.
        let v2 = BigUint::from_bytes_be(&[0x00, 0x00, 0xff]);
        assert_eq!(v2.to_bytes_be(), vec![0xff]);
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("deadbeef12345678").unwrap();
        assert_eq!(v.to_hex(), "deadbeef12345678");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(big(123).add(&big(456)), big(579));
        assert_eq!(big(579).sub(&big(456)), big(123));
        assert_eq!(big(1).add(&big(u64::MAX - 1)).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn add_carry_chain() {
        let a = BigUint::from_hex("ffffffffffffffffffffffff").unwrap();
        let b = a.add(&BigUint::one());
        assert_eq!(b.to_hex(), "1000000000000000000000000");
        assert_eq!(b.sub(&BigUint::one()), a);
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(big(12345).mul(&big(67890)), big(12345 * 67890));
        let a = BigUint::from_hex("ffffffff").unwrap();
        assert_eq!(a.mul(&a).to_hex(), "fffffffe00000001");
    }

    #[test]
    fn div_rem_small_and_large() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));

        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        let b = BigUint::from_hex("fedcba9876543").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_to(&b) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(big(1).shl(40).shr(40), big(1));
        assert_eq!(big(0b1011).shl(2), big(0b101100));
        assert_eq!(big(0b101100).shr(2), big(0b1011));
        assert_eq!(big(12345).shr(64), BigUint::zero());
    }

    #[test]
    fn mod_pow_known() {
        // 4^13 mod 497 = 445
        assert_eq!(big(4).mod_pow(&big(13), &big(497)), big(445));
        // Fermat's little theorem: a^(p-1) = 1 mod p
        assert_eq!(big(7).mod_pow(&big(1008), &big(1009)), big(1));
        // modulus one
        assert_eq!(big(7).mod_pow(&big(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 4 = 12 = 1 mod 11
        assert_eq!(big(3).mod_inverse(&big(11)), Some(big(4)));
        // Non-coprime -> None
        assert_eq!(big(6).mod_inverse(&big(9)), None);
        // Large-ish case checked by multiplication
        let m = BigUint::from_hex("ffffffffffffffc5").unwrap(); // prime
        let a = BigUint::from_hex("123456789abcdef").unwrap();
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(54).gcd(&big(24)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_hex("10000000000000000000001").unwrap();
        for _ in 0..50 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp_to(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn random_exact_bits_has_top_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        for bits in [1usize, 7, 32, 33, 64, 127, 256] {
            let v = BigUint::random_exact_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "bits = {bits}");
        }
    }

    #[test]
    fn ordering_consistency() {
        let a = big(100);
        let b = big(200);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp_to(&a), Ordering::Equal);
    }

    #[test]
    fn sub_mod_wraps() {
        let m = big(97);
        assert_eq!(big(5).sub_mod(&big(10), &m), big(92));
        assert_eq!(big(10).sub_mod(&big(5), &m), big(5));
    }

    proptest::proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in 0u64..u64::MAX/2, b in 0u64..u64::MAX/2) {
            let ba = big(a);
            let bb = big(b);
            proptest::prop_assert_eq!(ba.add(&bb).sub(&bb), ba);
        }

        #[test]
        fn prop_div_rem_reconstructs(a in 1u64.., b in 1u64..) {
            let ba = big(a);
            let bb = big(b);
            let (q, r) = ba.div_rem(&bb);
            proptest::prop_assert_eq!(q.mul(&bb).add(&r), ba);
            proptest::prop_assert!(r < bb);
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64.., b in 0u64..) {
            let expected = (a as u128) * (b as u128);
            let got = big(a).mul(&big(b));
            let bytes = got.to_bytes_be();
            let mut buf = [0u8; 16];
            buf[16 - bytes.len()..].copy_from_slice(&bytes);
            proptest::prop_assert_eq!(u128::from_be_bytes(buf), expected);
        }

        #[test]
        fn prop_mod_pow_matches_u128(base in 0u64..1000, exp in 0u64..20, modulus in 2u64..100_000) {
            let mut expected: u128 = 1;
            for _ in 0..exp {
                expected = expected * (base as u128) % (modulus as u128);
            }
            let got = big(base).mod_pow(&big(exp), &big(modulus));
            proptest::prop_assert_eq!(got.to_u64().unwrap() as u128, expected);
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(0u8..=255, 1..40)) {
            let v = BigUint::from_bytes_be(&bytes);
            let back = v.to_bytes_be();
            // Compare numerically (leading zeros are dropped).
            let v2 = BigUint::from_bytes_be(&back);
            proptest::prop_assert_eq!(v, v2);
        }
    }
}
