//! Precomputed DSA signing: a replenished per-signer pool of
//! message-independent nonce pairs.
//!
//! A DSA signature `(r, s)` splits into a message-independent half —
//! `r = (g^k mod p) mod q` and `k⁻¹ mod q` — and a message-dependent half,
//! `s = k⁻¹ (z + x·r) mod q`. The expensive exponentiation lives entirely in
//! the first half, so a signer can precompute `(r, k⁻¹)` pairs ahead of time
//! (off the latency path, e.g. while idle between epochs) and collapse each
//! actual signing call to one modular multiply-add. [`DsaSigningPool`] holds
//! such a queue of pairs and replenishes itself in batches when drained; the
//! `g^k` precomputation itself rides the fixed-base Montgomery tables from
//! [`crate::montgomery`].
//!
//! Security note: as everywhere in this crate, nonces come from a seeded
//! [`StdRng`] for reproducibility — fine for reproducing the paper's
//! performance shape, not for protecting real data.
//!
//! This file is on vaq-lint's panic-path hot list: no `unwrap`/`expect`/
//! `panic!` and no direct slice indexing outside tests.

use crate::bignum::BigUint;
use crate::dsa::DsaPublicKey;
use crate::montgomery::{FixedBaseTable, MontgomeryContext};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// A message-independent DSA nonce pair: `r = (g^k mod p) mod q` (nonzero)
/// and `k⁻¹ mod q`. Consumed by
/// [`DsaKeyPair::sign_with_pair`](crate::dsa::DsaKeyPair::sign_with_pair);
/// each pair must be used for at most one signature.
#[derive(Clone, Debug)]
pub struct DsaNoncePair {
    /// First signature component, already reduced mod `q`.
    pub(crate) r: BigUint,
    /// Inverse of the ephemeral nonce mod `q`.
    pub(crate) k_inv: BigUint,
}

/// A replenished queue of precomputed [`DsaNoncePair`]s for one signer.
#[derive(Debug)]
pub struct DsaSigningPool {
    p: BigUint,
    q: BigUint,
    g: BigUint,
    /// Montgomery context for `p` plus a fixed-base table for `g`, when `p`
    /// admits one (always, for generated keys); otherwise replenishment
    /// falls back to the generic `mod_pow`.
    ctx: Option<MontgomeryContext>,
    g_table: Option<FixedBaseTable>,
    pairs: VecDeque<DsaNoncePair>,
    rng: StdRng,
    batch: usize,
}

impl DsaSigningPool {
    /// Pairs generated per replenishment when the pool runs dry.
    pub const DEFAULT_BATCH: usize = 32;

    /// Builds an empty pool for the given public parameters. Pass a seeded
    /// `rng`; it is the sole source of ephemeral nonces for this pool.
    pub fn new(public: &DsaPublicKey, rng: StdRng) -> Self {
        let ctx = MontgomeryContext::new(&public.p);
        let g_table = ctx
            .as_ref()
            .map(|c| FixedBaseTable::new(c, &public.g, public.q.bits().max(1)));
        DsaSigningPool {
            p: public.p.clone(),
            q: public.q.clone(),
            g: public.g.clone(),
            ctx,
            g_table,
            pairs: VecDeque::new(),
            rng,
            batch: Self::DEFAULT_BATCH,
        }
    }

    /// Number of precomputed pairs currently available.
    pub fn available(&self) -> usize {
        self.pairs.len()
    }

    /// Generates up to `n` fresh pairs ahead of need (candidates with `r = 0`
    /// or a non-invertible nonce are skipped, so fewer than `n` may land).
    pub fn replenish(&mut self, n: usize) {
        for _ in 0..n {
            if let Some(pair) = self.generate_pair() {
                self.pairs.push_back(pair);
            }
        }
    }

    /// Takes the next pair, replenishing a batch first if the pool is dry.
    pub fn take(&mut self) -> DsaNoncePair {
        loop {
            if let Some(pair) = self.pairs.pop_front() {
                return pair;
            }
            self.replenish(self.batch);
        }
    }

    /// One candidate pair; `None` when the drawn nonce is unusable.
    fn generate_pair(&mut self) -> Option<DsaNoncePair> {
        // Ephemeral k in [1, q-1].
        let k =
            BigUint::random_below(&mut self.rng, &self.q.sub(&BigUint::one())).add(&BigUint::one());
        let g_pow_k = match (&self.ctx, &self.g_table) {
            (Some(ctx), Some(table)) => table.pow(ctx, &k),
            _ => self.g.mod_pow(&k, &self.p),
        };
        let r = g_pow_k.rem(&self.q);
        if r.is_zero() {
            return None;
        }
        let k_inv = k.mod_inverse(&self.q)?;
        Some(DsaNoncePair { r, k_inv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::DsaKeyPair;
    use crate::sha256::sha256;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> DsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        DsaKeyPair::generate(160, 64, &mut rng)
    }

    #[test]
    fn pool_replenishes_and_drains() {
        let kp = keypair(21);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(99));
        assert_eq!(pool.available(), 0);
        pool.replenish(5);
        assert!(pool.available() >= 4, "replenish should land most pairs");
        let before = pool.available();
        let _ = pool.take();
        assert_eq!(pool.available(), before - 1);
    }

    #[test]
    fn empty_pool_take_self_replenishes() {
        let kp = keypair(22);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(7));
        let pair = pool.take();
        assert!(!pair.r.is_zero());
        assert!(pool.available() > 0);
    }

    #[test]
    fn pooled_signatures_verify_under_unchanged_verifier() {
        let kp = keypair(23);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(5));
        for i in 0..10u32 {
            let digest = sha256(&i.to_be_bytes());
            let sig = kp.sign_pooled(&digest, &mut pool);
            assert!(kp.public.verify(&digest, &sig), "pooled sig {i}");
        }
    }

    #[test]
    fn pooled_signatures_fail_on_tampered_digest_and_wrong_key() {
        let kp = keypair(24);
        let other = keypair(25);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(6));
        let digest = sha256(b"authentic");
        let sig = kp.sign_pooled(&digest, &mut pool);
        assert!(kp.public.verify(&digest, &sig));
        assert!(!kp.public.verify(&sha256(b"tampered"), &sig));
        assert!(!other.public.verify(&digest, &sig));
    }

    #[test]
    fn distinct_pairs_give_distinct_signatures() {
        let kp = keypair(26);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(8));
        let digest = sha256(b"same message");
        let s1 = kp.sign_pooled(&digest, &mut pool);
        let s2 = kp.sign_pooled(&digest, &mut pool);
        assert_ne!(s1, s2, "each pair is single-use; signatures must differ");
        assert!(kp.public.verify(&digest, &s1));
        assert!(kp.public.verify(&digest, &s2));
    }

    #[test]
    fn pooled_matches_fresh_signing_semantics() {
        // A pooled signature is just a valid DSA signature; the verifier
        // cannot tell it apart from the rng-per-call path.
        let kp = keypair(27);
        let mut rng = StdRng::seed_from_u64(9);
        let mut pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(10));
        let digest = sha256(b"either path");
        let fresh = kp.sign(&digest, &mut rng);
        let pooled = kp.sign_pooled(&digest, &mut pool);
        assert!(kp.public.verify(&digest, &fresh));
        assert!(kp.public.verify(&digest, &pooled));
    }
}
