//! Classic finite-field DSA signatures.
//!
//! Fig. 7c of the paper compares the verification cost of RSA against DSA.
//! DSA verification requires two modular exponentiations (versus one short
//! exponentiation for RSA with e = 65537), which is why the paper observes
//! RSA verifying faster — this module reproduces that cost relationship.

use crate::bignum::BigUint;
use crate::montgomery::{FixedBaseTable, MontgomeryContext};
use crate::prime::generate_dsa_primes;
use crate::sha256::{sha256, Digest};
use crate::sign_pool::{DsaNoncePair, DsaSigningPool};
use rand::Rng;
use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};

/// Fixed-base precomputation backing the fast verify path: a Montgomery
/// context for `p` plus windowed tables for `g` and `y`, so the two
/// exponentiations in `verify` become table lookups with no squarings.
#[derive(Debug)]
struct DsaVerifyTables {
    ctx: MontgomeryContext,
    g_table: FixedBaseTable,
    y_table: FixedBaseTable,
}

/// Lazily-initialized, shared verify tables. `None` inside the `Arc` means
/// the modulus does not admit a Montgomery context (even `p` — only possible
/// with hand-crafted parameters) and verification uses the generic path.
#[derive(Debug, Default)]
struct VerifyCache(OnceLock<Arc<Option<DsaVerifyTables>>>);

impl Clone for VerifyCache {
    fn clone(&self) -> Self {
        // Share the already-built tables with the clone; an unbuilt cache
        // clones to another unbuilt cache.
        let cell = OnceLock::new();
        if let Some(tables) = self.0.get() {
            let _ = cell.set(Arc::clone(tables));
        }
        VerifyCache(cell)
    }
}

/// DSA domain parameters and public key.
#[derive(Clone, Debug)]
pub struct DsaPublicKey {
    /// Prime modulus.
    pub p: BigUint,
    /// Prime group order dividing `p - 1`.
    pub q: BigUint,
    /// Group generator of order `q`.
    pub g: BigUint,
    /// Public value `y = g^x mod p`.
    pub y: BigUint,
    /// Precomputed fixed-base tables for the verify fast path.
    verify_cache: VerifyCache,
}

impl PartialEq for DsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The verify cache is derived state; identity is the parameters.
        self.p == other.p && self.q == other.q && self.g == other.g && self.y == other.y
    }
}

impl Eq for DsaPublicKey {}

/// DSA key pair (private exponent `x` kept internal).
#[derive(Clone, Debug)]
pub struct DsaKeyPair {
    /// Public part.
    pub public: DsaPublicKey,
    x: BigUint,
}

/// A DSA signature `(r, s)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DsaSignature {
    /// First signature component.
    pub r: BigUint,
    /// Second signature component.
    pub s: BigUint,
}

impl DsaSignature {
    /// Serialized size in bytes (r and s, big-endian, concatenated).
    pub fn byte_len(&self) -> usize {
        self.r.to_bytes_be().len() + self.s.to_bytes_be().len()
    }
}

/// Reduces a digest to an integer modulo `q` (leftmost bits, FIPS 186 style).
fn digest_to_int(digest: &Digest, q: &BigUint) -> BigUint {
    let z = BigUint::from_bytes_be(digest);
    let excess = z.bits().saturating_sub(q.bits());
    z.shr(excess).rem(q)
}

impl DsaKeyPair {
    /// Generates parameters and a key pair.
    ///
    /// `p_bits`/`q_bits` of 512/160 reproduce the classic DSA sizes at
    /// benchmark scale; tests use smaller parameters for speed.
    pub fn generate<R: Rng + ?Sized>(p_bits: usize, q_bits: usize, rng: &mut R) -> Self {
        let (p, q) = generate_dsa_primes(p_bits, q_bits, rng);
        let p_minus_1 = p.sub(&BigUint::one());
        let exponent = p_minus_1.div_rem(&q).0;

        // Find a generator of the order-q subgroup.
        let g = loop {
            let h = BigUint::random_below(rng, &p_minus_1).add(&BigUint::one());
            let candidate = h.mod_pow(&exponent, &p);
            if !candidate.is_one() && !candidate.is_zero() {
                break candidate;
            }
        };

        // Private key x in [1, q-1], public key y = g^x mod p.
        let x = BigUint::random_below(rng, &q.sub(&BigUint::one())).add(&BigUint::one());
        let y = g.mod_pow(&x, &p);

        DsaKeyPair {
            public: DsaPublicKey::new(p, q, g, y),
            x,
        }
    }

    /// Signs a 32-byte digest.
    pub fn sign<R: Rng + ?Sized>(&self, digest: &Digest, rng: &mut R) -> DsaSignature {
        let pk = &self.public;
        let z = digest_to_int(digest, &pk.q);
        loop {
            // Ephemeral k in [1, q-1].
            let k = BigUint::random_below(rng, &pk.q.sub(&BigUint::one())).add(&BigUint::one());
            let r = pk.g.mod_pow(&k, &pk.p).rem(&pk.q);
            if r.is_zero() {
                continue;
            }
            let k_inv = match k.mod_inverse(&pk.q) {
                Some(v) => v,
                None => continue,
            };
            // s = k^-1 (z + x r) mod q
            let s = k_inv.mul_mod(&z.add(&self.x.mul_mod(&r, &pk.q)), &pk.q);
            if s.is_zero() {
                continue;
            }
            return DsaSignature { r, s };
        }
    }

    /// Signs an arbitrary message by hashing it first.
    pub fn sign_message<R: Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> DsaSignature {
        self.sign(&sha256(message), rng)
    }

    /// Signs a digest using a precomputed `(r, k⁻¹)` nonce pair: the whole
    /// signing operation collapses to one modular multiply-add,
    /// `s = k⁻¹ (z + x·r) mod q`. Returns `None` in the (vanishingly rare)
    /// case `s = 0`, in which case the caller should take another pair.
    pub fn sign_with_pair(&self, digest: &Digest, pair: &DsaNoncePair) -> Option<DsaSignature> {
        let pk = &self.public;
        let z = digest_to_int(digest, &pk.q);
        let s = pair
            .k_inv
            .mul_mod(&z.add(&self.x.mul_mod(&pair.r, &pk.q)), &pk.q);
        if s.is_zero() {
            return None;
        }
        Some(DsaSignature {
            r: pair.r.clone(),
            s,
        })
    }

    /// Signs a digest by drawing precomputed nonce pairs from `pool`,
    /// retrying (with fresh pairs) until a valid signature is produced.
    pub fn sign_pooled(&self, digest: &Digest, pool: &mut DsaSigningPool) -> DsaSignature {
        loop {
            let pair = pool.take();
            if let Some(sig) = self.sign_with_pair(digest, &pair) {
                return sig;
            }
        }
    }
}

impl DsaPublicKey {
    /// Builds a public key from its domain parameters and public value.
    ///
    /// The verify fast-path tables are built lazily on first `verify` and
    /// shared across clones, so constructing keys stays cheap.
    pub fn new(p: BigUint, q: BigUint, g: BigUint, y: BigUint) -> Self {
        DsaPublicKey {
            p,
            q,
            g,
            y,
            verify_cache: VerifyCache::default(),
        }
    }

    /// Returns (building on first use) the fixed-base verify tables, or
    /// `None` when `p` does not admit a Montgomery context.
    fn verify_tables(&self) -> Arc<Option<DsaVerifyTables>> {
        Arc::clone(self.verify_cache.0.get_or_init(|| {
            Arc::new(MontgomeryContext::new(&self.p).map(|ctx| {
                // u1, u2 < q, so q's width bounds every exponent we look up.
                let exp_bits = self.q.bits().max(1);
                let g_table = FixedBaseTable::new(&ctx, &self.g, exp_bits);
                let y_table = FixedBaseTable::new(&ctx, &self.y, exp_bits);
                DsaVerifyTables {
                    ctx,
                    g_table,
                    y_table,
                }
            }))
        }))
    }

    /// Verifies a signature over a 32-byte digest.
    pub fn verify(&self, digest: &Digest, signature: &DsaSignature) -> bool {
        let DsaSignature { r, s } = signature;
        if r.is_zero() || s.is_zero() {
            return false;
        }
        if r.cmp_to(&self.q) != Ordering::Less || s.cmp_to(&self.q) != Ordering::Less {
            return false;
        }
        let w = match s.mod_inverse(&self.q) {
            Some(w) => w,
            None => return false,
        };
        let z = digest_to_int(digest, &self.q);
        let u1 = z.mul_mod(&w, &self.q);
        let u2 = r.mul_mod(&w, &self.q);
        let tables = self.verify_tables();
        let v = match tables.as_ref() {
            // Fast path: both exponentiations are fixed-base table walks in
            // the Montgomery domain; the product never leaves the domain.
            Some(t) => {
                let gu1 = t.g_table.pow_mont(&t.ctx, &u1);
                let yu2 = t.y_table.pow_mont(&t.ctx, &u2);
                t.ctx.from_mont(&t.ctx.mont_mul(&gu1, &yu2)).rem(&self.q)
            }
            None => self
                .g
                .mod_pow(&u1, &self.p)
                .mul_mod(&self.y.mod_pow(&u2, &self.p), &self.p)
                .rem(&self.q),
        };
        v == *r
    }

    /// Verifies a signature over an arbitrary message (hashes it first).
    pub fn verify_message(&self, message: &[u8], signature: &DsaSignature) -> bool {
        self.verify(&sha256(message), signature)
    }

    /// Approximate serialized signature size in bytes (2 × |q|).
    pub fn signature_size(&self) -> usize {
        2 * self.q.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> (DsaKeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = DsaKeyPair::generate(160, 64, &mut rng);
        (kp, rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (kp, mut rng) = keypair(1);
        let digest = sha256(b"subdomain S4 root hash");
        let sig = kp.sign(&digest, &mut rng);
        assert!(kp.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_digest() {
        let (kp, mut rng) = keypair(2);
        let sig = kp.sign(&sha256(b"original"), &mut rng);
        assert!(!kp.public.verify(&sha256(b"forged"), &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let (kp1, mut rng1) = keypair(3);
        let (kp2, _) = keypair(4);
        let digest = sha256(b"message");
        let sig = kp1.sign(&digest, &mut rng1);
        assert!(!kp2.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let (kp, mut rng) = keypair(5);
        let digest = sha256(b"message");
        let sig = kp.sign(&digest, &mut rng);
        let tampered = DsaSignature {
            r: sig.r.add(&BigUint::one()).rem(&kp.public.q),
            s: sig.s.clone(),
        };
        assert!(!kp.public.verify(&digest, &tampered));
    }

    #[test]
    fn verify_rejects_zero_components() {
        let (kp, _) = keypair(6);
        let digest = sha256(b"message");
        let sig = DsaSignature {
            r: BigUint::zero(),
            s: BigUint::one(),
        };
        assert!(!kp.public.verify(&digest, &sig));
        let sig = DsaSignature {
            r: BigUint::one(),
            s: BigUint::zero(),
        };
        assert!(!kp.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_out_of_range_components() {
        let (kp, mut rng) = keypair(7);
        let digest = sha256(b"message");
        let sig = kp.sign(&digest, &mut rng);
        let bad = DsaSignature {
            r: sig.r.add(&kp.public.q),
            s: sig.s.clone(),
        };
        assert!(!kp.public.verify(&digest, &bad));
    }

    #[test]
    fn different_nonces_give_different_signatures() {
        let (kp, mut rng) = keypair(8);
        let digest = sha256(b"message");
        let s1 = kp.sign(&digest, &mut rng);
        let s2 = kp.sign(&digest, &mut rng);
        assert_ne!(s1, s2);
        assert!(kp.public.verify(&digest, &s1));
        assert!(kp.public.verify(&digest, &s2));
    }

    #[test]
    fn message_api_roundtrip() {
        let (kp, mut rng) = keypair(9);
        let sig = kp.sign_message(b"range query result", &mut rng);
        assert!(kp.public.verify_message(b"range query result", &sig));
        assert!(!kp.public.verify_message(b"range query resulT", &sig));
        assert!(sig.byte_len() > 0);
        assert!(kp.public.signature_size() >= sig.byte_len() / 2);
    }
}
