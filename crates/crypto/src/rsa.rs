//! Textbook RSA signatures over SHA-256 digests.
//!
//! The paper's experiments sign Merkle roots (and, in the baseline signature
//! mesh, every consecutive pair of records) with RSA. What matters for the
//! reproduction is the *cost model*: signing and verification are modular
//! exponentiations that dwarf the cost of a hash operation. This module
//! provides key generation, signing (`digest^d mod n`) and verification
//! (`sig^e mod n == encoded digest`), with a minimal deterministic encoding
//! of the digest into the modulus space.

use crate::bignum::BigUint;
use crate::prime::generate_prime;
use crate::sha256::{sha256, Digest};
use rand::Rng;

/// Public RSA verification key `(n, e)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent (65537 unless the factorisation forces a fallback).
    pub e: BigUint,
}

/// RSA key pair; the private exponent stays in this struct.
#[derive(Clone, Debug)]
pub struct RsaKeyPair {
    /// Public part.
    pub public: RsaPublicKey,
    /// Private exponent `d = e^{-1} mod lambda(n)`.
    d: BigUint,
}

/// An RSA signature (the raw modular value, big-endian encoded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaSignature {
    /// `encode(digest)^d mod n` as big-endian bytes.
    pub bytes: Vec<u8>,
}

impl RsaSignature {
    /// Size of the signature in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the signature is empty (never produced by [`RsaKeyPair::sign`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Encodes a digest into an integer smaller than `n` by hashing it again and
/// truncating to `n.bits() - 8` bits. Deterministic and collision-resistant
/// enough for the reproduction (a full PKCS#1 encoding is out of scope).
fn encode_digest(digest: &Digest, n: &BigUint) -> BigUint {
    // Expand the digest with counter-mode SHA-256 so the encoding fills the
    // modulus, then reduce below n by truncation.
    let target_bytes = ((n.bits().saturating_sub(8)) / 8).max(16);
    let mut material = Vec::with_capacity(target_bytes);
    let mut counter: u32 = 0;
    while material.len() < target_bytes {
        let mut block = Vec::with_capacity(36);
        block.extend_from_slice(digest);
        block.extend_from_slice(&counter.to_be_bytes());
        material.extend_from_slice(&sha256(&block));
        counter += 1;
    }
    material.truncate(target_bytes);
    BigUint::from_bytes_be(&material).rem(n)
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of roughly `modulus_bits` bits.
    ///
    /// `modulus_bits` of 512 matches the scale used for benchmarking; tests
    /// use smaller keys for speed. Panics if `modulus_bits < 64`.
    pub fn generate<R: Rng + ?Sized>(modulus_bits: usize, rng: &mut R) -> Self {
        assert!(modulus_bits >= 64, "modulus too small");
        let half = modulus_bits / 2;
        loop {
            let p = generate_prime(half, rng);
            let q = generate_prime(modulus_bits - half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let e = BigUint::from_u64(65537);
            let e = if phi.gcd(&e).is_one() {
                e
            } else {
                BigUint::from_u64(3)
            };
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let d = match e.mod_inverse(&phi) {
                Some(d) => d,
                None => continue,
            };
            return RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
            };
        }
    }

    /// Signs a 32-byte digest.
    pub fn sign(&self, digest: &Digest) -> RsaSignature {
        let m = encode_digest(digest, &self.public.n);
        let s = m.mod_pow(&self.d, &self.public.n);
        RsaSignature {
            bytes: s.to_bytes_be(),
        }
    }

    /// Signs an arbitrary message by hashing it first.
    pub fn sign_message(&self, message: &[u8]) -> RsaSignature {
        self.sign(&sha256(message))
    }
}

impl RsaPublicKey {
    /// Verifies a signature over a 32-byte digest.
    pub fn verify(&self, digest: &Digest, signature: &RsaSignature) -> bool {
        let s = BigUint::from_bytes_be(&signature.bytes);
        if s.cmp_to(&self.n) != std::cmp::Ordering::Less {
            return false;
        }
        let recovered = s.mod_pow(&self.e, &self.n);
        let expected = encode_digest(digest, &self.n);
        recovered == expected
    }

    /// Verifies a signature over an arbitrary message (hashes it first).
    pub fn verify_message(&self, message: &[u8], signature: &RsaSignature) -> bool {
        self.verify(&sha256(message), signature)
    }

    /// Approximate byte size of a signature under this key.
    pub fn signature_size(&self) -> usize {
        self.n.bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize, seed: u64) -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(seed);
        RsaKeyPair::generate(bits, &mut rng)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(256, 1);
        let digest = sha256(b"the root hash of an IFMH tree");
        let sig = kp.sign(&digest);
        assert!(kp.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_wrong_digest() {
        let kp = keypair(256, 2);
        let sig = kp.sign(&sha256(b"original"));
        assert!(!kp.public.verify(&sha256(b"tampered"), &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair(256, 3);
        let kp2 = keypair(256, 4);
        let digest = sha256(b"message");
        let sig = kp1.sign(&digest);
        assert!(!kp2.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_bit_flipped_signature() {
        let kp = keypair(256, 5);
        let digest = sha256(b"message");
        let mut sig = kp.sign(&digest);
        sig.bytes[0] ^= 0x01;
        assert!(!kp.public.verify(&digest, &sig));
    }

    #[test]
    fn verify_rejects_oversized_signature_value() {
        let kp = keypair(256, 6);
        let digest = sha256(b"message");
        // A "signature" numerically >= n must be rejected outright.
        let huge = kp.public.n.add(&BigUint::one());
        let sig = RsaSignature {
            bytes: huge.to_bytes_be(),
        };
        assert!(!kp.public.verify(&digest, &sig));
    }

    #[test]
    fn sign_message_hashes_first() {
        let kp = keypair(256, 7);
        let sig = kp.sign_message(b"hello world");
        assert!(kp.public.verify_message(b"hello world", &sig));
        assert!(!kp.public.verify_message(b"hello worlds", &sig));
    }

    #[test]
    fn signature_size_reflects_modulus() {
        let kp = keypair(256, 8);
        assert!(kp.public.signature_size() >= 28 && kp.public.signature_size() <= 34);
        let sig = kp.sign(&sha256(b"x"));
        assert!(sig.len() <= kp.public.signature_size());
        assert!(!sig.is_empty());
    }

    #[test]
    fn deterministic_signing() {
        let kp = keypair(256, 9);
        let d = sha256(b"same input");
        assert_eq!(kp.sign(&d), kp.sign(&d));
    }
}
