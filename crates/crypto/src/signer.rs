//! Unified signing interface over RSA and DSA.
//!
//! The authenticated structures (IFMH-tree, signature mesh) only need
//! "sign this digest" / "verify this digest", and the experiments switch
//! between RSA and DSA (Fig. 7c). [`SignatureScheme`] bundles a key pair of
//! either kind behind one enum, and the [`Signer`] / [`Verifier`] traits
//! allow code to stay generic.

use crate::dsa::{DsaKeyPair, DsaPublicKey, DsaSignature};
use crate::rsa::{RsaKeyPair, RsaPublicKey, RsaSignature};
use crate::sha256::Digest;
use crate::sign_pool::DsaSigningPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// Which signature algorithm a [`SignatureScheme`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    /// RSA with public exponent 65537.
    Rsa,
    /// Finite-field DSA.
    Dsa,
}

/// A signature produced by either scheme.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Signature {
    /// RSA signature bytes.
    Rsa(RsaSignature),
    /// DSA signature pair.
    Dsa(DsaSignature),
}

impl Signature {
    /// Serialized size in bytes, used for verification-object size accounting
    /// (Fig. 8).
    pub fn byte_len(&self) -> usize {
        match self {
            Signature::Rsa(s) => s.bytes.len(),
            Signature::Dsa(s) => s.byte_len(),
        }
    }
}

/// Anything that can sign a 32-byte digest.
pub trait Signer {
    /// Signs the digest.
    fn sign_digest(&self, digest: &Digest) -> Signature;
    /// Returns the matching verifier.
    fn verifier(&self) -> Box<dyn Verifier>;
}

/// Anything that can verify a signature over a 32-byte digest.
pub trait Verifier: Send + Sync {
    /// Returns true if the signature is valid for the digest.
    fn verify_digest(&self, digest: &Digest, signature: &Signature) -> bool;
    /// Nominal signature size in bytes (for communication-cost accounting).
    fn signature_size(&self) -> usize;
}

/// A concrete key pair for one of the supported algorithms.
pub enum SignatureScheme {
    /// RSA key pair.
    Rsa(RsaKeyPair),
    /// DSA key pair plus a pool of precomputed `(r, k⁻¹)` nonce pairs, so
    /// signing is one modular multiply-add instead of an exponentiation.
    /// The pool is boxed to keep the enum close to the RSA variant's size.
    Dsa(DsaKeyPair, Box<RefCell<DsaSigningPool>>),
}

impl std::fmt::Debug for SignatureScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureScheme::Rsa(_) => write!(f, "SignatureScheme::Rsa"),
            SignatureScheme::Dsa(_, _) => write!(f, "SignatureScheme::Dsa"),
        }
    }
}

impl SignatureScheme {
    /// Generates an RSA scheme with the given modulus size.
    pub fn new_rsa(modulus_bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        SignatureScheme::Rsa(RsaKeyPair::generate(modulus_bits, &mut rng))
    }

    /// Generates a DSA scheme with the given parameter sizes.
    pub fn new_dsa(p_bits: usize, q_bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = DsaKeyPair::generate(p_bits, q_bits, &mut rng);
        let pool = DsaSigningPool::new(&kp.public, StdRng::seed_from_u64(seed ^ 0x5eed));
        SignatureScheme::Dsa(kp, Box::new(RefCell::new(pool)))
    }

    /// A small/fast RSA scheme suitable for unit tests.
    pub fn test_rsa(seed: u64) -> Self {
        Self::new_rsa(128, seed)
    }

    /// A small/fast DSA scheme suitable for unit tests.
    pub fn test_dsa(seed: u64) -> Self {
        Self::new_dsa(160, 64, seed)
    }

    /// Which algorithm this scheme uses.
    pub fn algorithm(&self) -> SignatureAlgorithm {
        match self {
            SignatureScheme::Rsa(_) => SignatureAlgorithm::Rsa,
            SignatureScheme::Dsa(_, _) => SignatureAlgorithm::Dsa,
        }
    }

    /// Public-key half of the scheme.
    pub fn public_key(&self) -> PublicKey {
        match self {
            SignatureScheme::Rsa(kp) => PublicKey::Rsa(kp.public.clone()),
            SignatureScheme::Dsa(kp, _) => PublicKey::Dsa(kp.public.clone()),
        }
    }
}

impl Signer for SignatureScheme {
    fn sign_digest(&self, digest: &Digest) -> Signature {
        match self {
            SignatureScheme::Rsa(kp) => Signature::Rsa(kp.sign(digest)),
            SignatureScheme::Dsa(kp, pool) => {
                let mut pool = pool.borrow_mut();
                Signature::Dsa(kp.sign_pooled(digest, &mut pool))
            }
        }
    }

    fn verifier(&self) -> Box<dyn Verifier> {
        Box::new(self.public_key())
    }
}

/// Public verification key for either algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PublicKey {
    /// RSA public key.
    Rsa(RsaPublicKey),
    /// DSA public key.
    Dsa(DsaPublicKey),
}

impl Verifier for PublicKey {
    fn verify_digest(&self, digest: &Digest, signature: &Signature) -> bool {
        match (self, signature) {
            (PublicKey::Rsa(pk), Signature::Rsa(sig)) => pk.verify(digest, sig),
            (PublicKey::Dsa(pk), Signature::Dsa(sig)) => pk.verify(digest, sig),
            // Algorithm mismatch is always a verification failure.
            _ => false,
        }
    }

    fn signature_size(&self) -> usize {
        match self {
            PublicKey::Rsa(pk) => pk.signature_size(),
            PublicKey::Dsa(pk) => pk.signature_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn rsa_scheme_roundtrip() {
        let scheme = SignatureScheme::test_rsa(11);
        assert_eq!(scheme.algorithm(), SignatureAlgorithm::Rsa);
        let digest = sha256(b"root");
        let sig = scheme.sign_digest(&digest);
        let verifier = scheme.verifier();
        assert!(verifier.verify_digest(&digest, &sig));
        assert!(!verifier.verify_digest(&sha256(b"other"), &sig));
        assert!(verifier.signature_size() > 0);
    }

    #[test]
    fn dsa_scheme_roundtrip() {
        let scheme = SignatureScheme::test_dsa(12);
        assert_eq!(scheme.algorithm(), SignatureAlgorithm::Dsa);
        let digest = sha256(b"root");
        let sig = scheme.sign_digest(&digest);
        let verifier = scheme.verifier();
        assert!(verifier.verify_digest(&digest, &sig));
        assert!(!verifier.verify_digest(&sha256(b"other"), &sig));
    }

    #[test]
    fn algorithm_mismatch_rejected() {
        let rsa = SignatureScheme::test_rsa(13);
        let dsa = SignatureScheme::test_dsa(14);
        let digest = sha256(b"root");
        let rsa_sig = rsa.sign_digest(&digest);
        let dsa_verifier = dsa.verifier();
        assert!(!dsa_verifier.verify_digest(&digest, &rsa_sig));
    }

    #[test]
    fn signature_byte_len_positive() {
        let rsa = SignatureScheme::test_rsa(15);
        let digest = sha256(b"x");
        assert!(rsa.sign_digest(&digest).byte_len() > 0);
        let dsa = SignatureScheme::test_dsa(16);
        assert!(dsa.sign_digest(&digest).byte_len() > 0);
    }

    #[test]
    fn public_key_clone_verifies_independently() {
        let scheme = SignatureScheme::test_rsa(17);
        let digest = sha256(b"cloned key");
        let sig = scheme.sign_digest(&digest);
        let pk = scheme.public_key();
        let pk2 = pk.clone();
        assert!(pk2.verify_digest(&digest, &sig));
    }
}
