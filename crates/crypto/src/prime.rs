//! Probabilistic primality testing and random prime generation.
//!
//! RSA and DSA key generation need random primes of a few hundred bits.
//! [`is_probable_prime`] implements Miller–Rabin with a configurable number
//! of rounds plus trial division by small primes, and [`generate_prime`]
//! samples odd candidates of an exact bit length until one passes.

use crate::bignum::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199,
];

/// Miller–Rabin primality test with `rounds` random bases.
///
/// Returns `true` if `n` is probably prime (error probability at most
/// 4^-rounds) and `false` if `n` is definitely composite.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if n.cmp_to(&two) == std::cmp::Ordering::Equal {
        return true;
    }
    if n.is_even() {
        return false;
    }

    // Trial division by small primes.
    for &p in &SMALL_PRIMES {
        let bp = BigUint::from_u64(p);
        if n.cmp_to(&bp) == std::cmp::Ordering::Equal {
            return true;
        }
        if n.rem(&bp).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let upper = n.sub(&BigUint::from_u64(3));
        let a = BigUint::random_below(rng, &upper).add(&two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x.cmp_to(&n_minus_1) == std::cmp::Ordering::Equal {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x.cmp_to(&n_minus_1) == std::cmp::Ordering::Equal {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// `bits` must be at least 2. The candidate's top and bottom bits are forced
/// to one so the result has the requested size and is odd.
pub fn generate_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "prime must have at least 2 bits");
    loop {
        let mut candidate = BigUint::random_exact_bits(rng, bits);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if candidate.bits() != bits {
            continue;
        }
        if is_probable_prime(&candidate, 16, rng) {
            return candidate;
        }
    }
}

/// Generates a "safe-style" prime pair `(p, q)` with `p = q * k + 1`, where
/// `q` has `q_bits` bits and `p` has (approximately) `p_bits` bits.
///
/// This is the standard structure required by DSA: `q` divides `p - 1`.
pub fn generate_dsa_primes<R: Rng + ?Sized>(
    p_bits: usize,
    q_bits: usize,
    rng: &mut R,
) -> (BigUint, BigUint) {
    assert!(p_bits > q_bits + 8, "p must be substantially larger than q");
    let q = generate_prime(q_bits, rng);
    loop {
        // Choose k with p_bits - q_bits bits so p = q*k + 1 has ~p_bits bits.
        let k = BigUint::random_exact_bits(rng, p_bits - q_bits);
        // Force k even so p is odd (q odd, k even => q*k even => p odd).
        let k = if k.is_even() {
            k
        } else {
            k.add(&BigUint::one())
        };
        let p = q.mul(&k).add(&BigUint::one());
        if p.bits() < p_bits - 1 || p.bits() > p_bits + 1 {
            continue;
        }
        if is_probable_prime(&p, 16, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_are_prime() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 7, 11, 13, 101, 997, 7919, 104729] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_are_composite() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [0u64, 1, 4, 6, 9, 15, 100, 561, 1105, 6601, 8911, 104730] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 20, &mut rng));
        }
    }

    #[test]
    fn generate_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [16usize, 32, 64, 96] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn generate_larger_prime() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = generate_prime(160, &mut rng);
        assert_eq!(p.bits(), 160);
        assert!(is_probable_prime(&p, 8, &mut rng));
    }

    #[test]
    fn dsa_primes_satisfy_divisibility() {
        let mut rng = StdRng::seed_from_u64(6);
        let (p, q) = generate_dsa_primes(160, 64, &mut rng);
        // q divides p - 1
        let p_minus_1 = p.sub(&BigUint::one());
        assert!(p_minus_1.rem(&q).is_zero());
        assert!(is_probable_prime(&p, 8, &mut rng));
        assert!(is_probable_prime(&q, 8, &mut rng));
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime.
        let mut rng = StdRng::seed_from_u64(7);
        let p = BigUint::from_hex("7fffffffffffffffffffffffffffffff").unwrap();
        assert!(is_probable_prime(&p, 16, &mut rng));
        // 2^128 - 1 is composite.
        let c = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert!(!is_probable_prime(&c, 16, &mut rng));
    }
}
