//! Montgomery-form modular arithmetic: the engine behind the hot-path
//! [`BigUint::mod_pow`](crate::bignum::BigUint::mod_pow).
//!
//! The legacy exponentiation reduces every product by bitwise long
//! division — O(bits²) per multiply. A [`MontgomeryContext`] fixes an odd
//! modulus `n` up front and replaces each reduction with a CIOS
//! (coarsely-integrated operand scanning) Montgomery multiplication: one
//! fused multiply-reduce pass over the limbs with no division at all.
//! Exponentiation walks the exponent in 4-bit windows over a 16-entry
//! odd-powers table, and [`FixedBaseTable`] goes further for bases that are
//! reused across many exponentiations (the DSA generator `g`, the public
//! key `y`, and the signing pool's `g^k` precomputation): all powers
//! `base^(d·16^j)` are materialized once, after which an exponentiation is
//! just one table lookup and one multiply per 4 exponent bits — no
//! squarings on the hot path.
//!
//! This file is on vaq-lint's panic-path hot list: no `unwrap`/`expect`/
//! `panic!` and no direct slice indexing outside tests. Out-of-range inputs
//! degrade to the (slower, equivalent) generic path instead of panicking.

use crate::bignum::BigUint;

/// Exponent window width in bits.
const WINDOW_BITS: usize = 4;
/// Entries per window table (`2^WINDOW_BITS`).
const WINDOW_SIZE: usize = 1 << WINDOW_BITS;

/// Precomputed Montgomery-domain state for one odd modulus.
#[derive(Clone, Debug)]
pub struct MontgomeryContext {
    /// Modulus limbs, little-endian, exactly `k` limbs.
    n: Vec<u32>,
    /// The modulus as a [`BigUint`] (for reductions and fallbacks).
    modulus: BigUint,
    /// `-n^{-1} mod 2^32`, the per-limb reduction factor.
    n0inv: u32,
    /// `R^2 mod n` where `R = 2^(32k)`; multiplying by it converts into the
    /// Montgomery domain.
    r2: Vec<u32>,
    /// `R mod n`: the Montgomery representation of 1.
    one: Vec<u32>,
    /// The plain integer 1, padded to `k` limbs (for leaving the domain).
    int_one: Vec<u32>,
    /// Limb count of the modulus.
    k: usize,
}

/// `x * ys` accumulated into `t` (little-endian), with the carry rippled
/// through the tail of `t`. Requires `t.len() >= ys.len() + 1` with enough
/// headroom for the final carry (guaranteed by the `k + 2`-limb scratch).
fn addmul(t: &mut [u32], x: u32, ys: &[u32]) {
    if x == 0 {
        return;
    }
    let (lo, hi) = t.split_at_mut(ys.len().min(t.len()));
    let mut carry = 0u64;
    for (tj, &yj) in lo.iter_mut().zip(ys) {
        let cur = *tj as u64 + (x as u64) * (yj as u64) + carry;
        *tj = cur as u32;
        carry = cur >> 32;
    }
    for tj in hi.iter_mut() {
        if carry == 0 {
            break;
        }
        let cur = *tj as u64 + carry;
        *tj = cur as u32;
        carry = cur >> 32;
    }
}

/// `a < b` over equal-length little-endian limb slices.
fn limbs_lt(a: &[u32], b: &[u32]) -> bool {
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// `a -= b` over equal-length little-endian limb slices (wrapping, i.e. the
/// final borrow — if any — is discarded; callers arrange for it to cancel an
/// implicit high limb).
fn limbs_sub_assign(a: &mut [u32], b: &[u32]) {
    let mut borrow = 0i64;
    for (x, &y) in a.iter_mut().zip(b) {
        let d = *x as i64 - y as i64 - borrow;
        if d < 0 {
            *x = (d + (1i64 << 32)) as u32;
            borrow = 1;
        } else {
            *x = d as u32;
            borrow = 0;
        }
    }
}

/// The `w`-th 4-bit window of `e` (LSB-first window order).
fn window_digit(e: &BigUint, w: usize) -> usize {
    let mut d = 0usize;
    for b in 0..WINDOW_BITS {
        if e.bit(w * WINDOW_BITS + b) {
            d |= 1 << b;
        }
    }
    d
}

impl MontgomeryContext {
    /// Builds the context for an odd modulus `> 1`; returns `None` for even
    /// moduli, zero and one (callers fall back to the legacy path).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let n: Vec<u32> = modulus.limbs().to_vec();
        let k = n.len();
        let n0 = n.first().copied()?;
        // Newton's iteration doubles correct low bits each round: five
        // rounds from 1 gives the full 32-bit inverse of the odd n0.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n0inv = inv.wrapping_neg();

        // R mod n and R^2 mod n via the (one-off) generic reduction.
        let r = BigUint::one().shl(32 * k).rem(modulus);
        let r2_int = r.mul(&r).rem(modulus);
        let mut one = r.limbs().to_vec();
        one.resize(k, 0);
        let mut r2 = r2_int.limbs().to_vec();
        r2.resize(k, 0);
        let mut int_one = vec![0u32; k];
        if let Some(low) = int_one.first_mut() {
            *low = 1;
        }

        Some(MontgomeryContext {
            n,
            modulus: modulus.clone(),
            n0inv,
            r2,
            one,
            int_one,
            k,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: for `k`-limb inputs `a, b < n`,
    /// returns `a · b · R^{-1} mod n` as `k` limbs.
    pub(crate) fn mont_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut t = vec![0u32; self.k + 2];
        for &ai in a {
            addmul(&mut t, ai, b);
            let m = t.first().copied().unwrap_or(0).wrapping_mul(self.n0inv);
            addmul(&mut t, m, &self.n);
            // t is now divisible by 2^32: drop the zero low limb.
            t.rotate_left(1);
            if let Some(last) = t.last_mut() {
                *last = 0;
            }
        }
        // t < 2n: one conditional subtraction normalizes into [0, n).
        let (lo, hi) = t.split_at_mut(self.k);
        let high = hi.first().copied().unwrap_or(0);
        if high != 0 || !limbs_lt(lo, &self.n) {
            limbs_sub_assign(lo, &self.n);
        }
        t.truncate(self.k);
        t
    }

    /// Converts `x` into the Montgomery domain (reducing it mod `n` first).
    pub(crate) fn to_mont(&self, x: &BigUint) -> Vec<u32> {
        let mut reduced = x.rem(&self.modulus).limbs().to_vec();
        reduced.resize(self.k, 0);
        self.mont_mul(&reduced, &self.r2)
    }

    /// Converts a Montgomery-domain value back to a plain [`BigUint`].
    /// Named for symmetry with [`Self::to_mont`]; it is a domain
    /// conversion, not a constructor.
    #[allow(clippy::wrong_self_convention)]
    pub(crate) fn from_mont(&self, a: &[u32]) -> BigUint {
        BigUint::from_limbs(self.mont_mul(a, &self.int_one))
    }

    /// `base^exponent mod n` by 4-bit windowed Montgomery exponentiation.
    pub fn mod_pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one();
        }
        let base_m = self.to_mont(base);
        // table[d] = base^d in the Montgomery domain, d in 0..16.
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(WINDOW_SIZE);
        table.push(self.one.clone());
        table.push(base_m.clone());
        for _ in 2..WINDOW_SIZE {
            let next = match table.last() {
                Some(prev) => self.mont_mul(prev, &base_m),
                None => break,
            };
            table.push(next);
        }

        let windows = exponent.bits().div_ceil(WINDOW_BITS);
        let mut acc = self.one.clone();
        for w in (0..windows).rev() {
            if w + 1 != windows {
                for _ in 0..WINDOW_BITS {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let d = window_digit(exponent, w);
            if d != 0 {
                if let Some(entry) = table.get(d) {
                    acc = self.mont_mul(&acc, entry);
                }
            }
        }
        self.from_mont(&acc)
    }
}

/// Fixed-base windowed precomputation: every power `base^(d · 16^j)` is
/// materialized once, so each later exponentiation is just one Montgomery
/// multiply per 4 exponent bits with **no squarings**.
///
/// Used for the DSA generator `g` and public key `y` on the verify path,
/// and for `g^k` in the signing pool's nonce precomputation.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    /// `windows[j]` holds `base^(d · 16^j)` for `d` in `0..16`, all in the
    /// Montgomery domain.
    windows: Vec<Vec<Vec<u32>>>,
    /// The base itself, for the out-of-range fallback.
    base: BigUint,
}

impl FixedBaseTable {
    /// Precomputes tables covering exponents up to `max_exp_bits` bits.
    pub fn new(ctx: &MontgomeryContext, base: &BigUint, max_exp_bits: usize) -> Self {
        let levels = max_exp_bits.div_ceil(WINDOW_BITS).max(1);
        let mut windows = Vec::with_capacity(levels);
        // level_base = base^(16^j), advanced by 4 squarings per level.
        let mut level_base = ctx.to_mont(base);
        for _ in 0..levels {
            let mut row: Vec<Vec<u32>> = Vec::with_capacity(WINDOW_SIZE);
            row.push(ctx.one.clone());
            row.push(level_base.clone());
            for _ in 2..WINDOW_SIZE {
                let next = match row.last() {
                    Some(prev) => ctx.mont_mul(prev, &level_base),
                    None => break,
                };
                row.push(next);
            }
            for _ in 0..WINDOW_BITS {
                level_base = ctx.mont_mul(&level_base, &level_base);
            }
            windows.push(row);
        }
        FixedBaseTable {
            windows,
            base: base.clone(),
        }
    }

    /// Number of exponent bits the precomputation covers.
    pub fn max_exp_bits(&self) -> usize {
        self.windows.len() * WINDOW_BITS
    }

    /// `base^exponent` in the Montgomery domain. Exponents beyond the
    /// precomputed range fall back to the generic windowed path.
    pub(crate) fn pow_mont(&self, ctx: &MontgomeryContext, exponent: &BigUint) -> Vec<u32> {
        if exponent.bits() > self.max_exp_bits() {
            return ctx.to_mont(&ctx.mod_pow(&self.base, exponent));
        }
        let mut acc = ctx.one.clone();
        for (j, row) in self.windows.iter().enumerate() {
            let d = window_digit(exponent, j);
            if d != 0 {
                if let Some(entry) = row.get(d) {
                    acc = ctx.mont_mul(&acc, entry);
                }
            }
        }
        acc
    }

    /// `base^exponent mod n` as a plain [`BigUint`].
    pub fn pow(&self, ctx: &MontgomeryContext, exponent: &BigUint) -> BigUint {
        ctx.from_mont(&self.pow_mont(ctx, exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_even_zero_and_one_moduli() {
        assert!(MontgomeryContext::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::new(&BigUint::one()).is_none());
        assert!(MontgomeryContext::new(&big(1 << 20)).is_none());
        assert!(MontgomeryContext::new(&big(97)).is_some());
    }

    #[test]
    fn matches_legacy_on_known_values() {
        // Multi-limb odd modulus.
        let m = BigUint::from_hex("ffffffffffffffc5").unwrap(); // prime
        let ctx = MontgomeryContext::new(&m).unwrap();
        for (b, e) in [(4u64, 13u64), (7, 1008), (123456789, 987654321), (2, 0)] {
            assert_eq!(
                ctx.mod_pow(&big(b), &big(e)),
                big(b).mod_pow_legacy(&big(e), &m),
                "b={b} e={e}"
            );
        }
    }

    #[test]
    fn matches_legacy_on_random_wide_operands() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [33usize, 64, 96, 160, 256, 512] {
            let mut m = BigUint::random_exact_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add(&BigUint::one());
            }
            let ctx = MontgomeryContext::new(&m).expect("odd modulus");
            for _ in 0..4 {
                let base = BigUint::random_bits(&mut rng, bits + 17);
                let exp = BigUint::random_bits(&mut rng, 80);
                assert_eq!(
                    ctx.mod_pow(&base, &exp),
                    base.mod_pow_legacy(&exp, &m),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn base_larger_than_modulus_is_reduced() {
        let m = big(1_000_003); // odd
        let ctx = MontgomeryContext::new(&m).unwrap();
        let base = big(123_456_789_012_345);
        let exp = big(12345);
        assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_legacy(&exp, &m));
    }

    #[test]
    fn modulus_equal_to_value_yields_zero_powers() {
        let m = big(101);
        let ctx = MontgomeryContext::new(&m).unwrap();
        assert_eq!(ctx.mod_pow(&big(101), &big(5)), BigUint::zero());
        assert_eq!(ctx.mod_pow(&BigUint::zero(), &big(7)), BigUint::zero());
        assert_eq!(ctx.mod_pow(&big(17), &BigUint::zero()), BigUint::one());
    }

    #[test]
    fn mont_roundtrip_is_identity() {
        let m = BigUint::from_hex("f000000000000001b").unwrap();
        let ctx = MontgomeryContext::new(&m).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let x = BigUint::random_below(&mut rng, &m);
            let back = ctx.from_mont(&ctx.to_mont(&x));
            assert_eq!(back, x);
        }
    }

    #[test]
    fn fixed_base_table_matches_generic_path() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = BigUint::random_exact_bits(&mut rng, 200);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        let ctx = MontgomeryContext::new(&m).unwrap();
        let base = BigUint::random_below(&mut rng, &m);
        let table = FixedBaseTable::new(&ctx, &base, 96);
        for _ in 0..10 {
            let exp = BigUint::random_bits(&mut rng, 96);
            assert_eq!(table.pow(&ctx, &exp), ctx.mod_pow(&base, &exp));
        }
        // Exponent beyond the covered range uses the fallback.
        let wide = BigUint::random_bits(&mut rng, 160);
        assert_eq!(table.pow(&ctx, &wide), ctx.mod_pow(&base, &wide));
        assert_eq!(table.max_exp_bits(), 96);
    }

    #[test]
    fn fixed_base_products_combine_in_the_montgomery_domain() {
        // g^a · y^b mod n assembled from two tables without leaving the
        // domain — the exact shape of the DSA verify fast path.
        let mut rng = StdRng::seed_from_u64(13);
        let mut m = BigUint::random_exact_bits(&mut rng, 128);
        if m.is_even() {
            m = m.add(&BigUint::one());
        }
        let ctx = MontgomeryContext::new(&m).unwrap();
        let g = BigUint::random_below(&mut rng, &m);
        let y = BigUint::random_below(&mut rng, &m);
        let tg = FixedBaseTable::new(&ctx, &g, 64);
        let ty = FixedBaseTable::new(&ctx, &y, 64);
        let a = BigUint::random_bits(&mut rng, 64);
        let b = BigUint::random_bits(&mut rng, 64);
        let fast = ctx.from_mont(&ctx.mont_mul(&tg.pow_mont(&ctx, &a), &ty.pow_mont(&ctx, &b)));
        let slow = g
            .mod_pow_legacy(&a, &m)
            .mul_mod(&y.mod_pow_legacy(&b, &m), &m);
        assert_eq!(fast, slow);
    }

    proptest::proptest! {
        #[test]
        fn prop_montgomery_equals_legacy(
            base in 0u64..,
            exp in 0u64..5000,
            modulus in 3u64..,
        ) {
            // Force odd multi-limb-capable moduli; small odd ones too.
            let m = big(modulus | 1);
            if let Some(ctx) = MontgomeryContext::new(&m) {
                let fast = ctx.mod_pow(&big(base), &big(exp));
                let slow = big(base).mod_pow_legacy(&big(exp), &m);
                proptest::prop_assert_eq!(fast, slow);
            }
        }
    }
}
