//! Known-answer and cross-consistency tests for the cryptographic substrate.

use vaq_crypto::sha256::{sha256, to_hex, Sha256};
use vaq_crypto::{BigUint, SignatureScheme, Signer};

/// NIST / de-facto standard SHA-256 vectors beyond the ones in the unit
/// tests (covering multi-block messages and byte-at-a-time feeding).
#[test]
fn sha256_additional_known_answers() {
    let cases: Vec<(&[u8], &str)> = vec![
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
        (
            b"The quick brown fox jumps over the lazy dog.",
            "ef537f25c895bfa782526529a9b63d97aa631564d5d789c2b765448c8635fb6c",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (msg, expected) in cases {
        assert_eq!(to_hex(&sha256(msg)), expected);
    }
}

#[test]
fn sha256_byte_at_a_time_matches_oneshot() {
    let msg: Vec<u8> = (0u8..=255).cycle().take(1031).collect();
    let oneshot = sha256(&msg);
    let mut h = Sha256::new();
    for b in &msg {
        h.update(std::slice::from_ref(b));
    }
    assert_eq!(h.finalize(), oneshot);
}

#[test]
fn biguint_modpow_matches_known_rsa_toy_example() {
    // Classic toy RSA: p = 61, q = 53, n = 3233, e = 17, d = 2753.
    let n = BigUint::from_u64(3233);
    let e = BigUint::from_u64(17);
    let d = BigUint::from_u64(2753);
    let m = BigUint::from_u64(65);
    let c = m.mod_pow(&e, &n);
    assert_eq!(c, BigUint::from_u64(2790));
    assert_eq!(c.mod_pow(&d, &n), m);
}

#[test]
fn biguint_large_known_product() {
    // 2^127 - 1 squared, checked against the known decimal-free hex value.
    let m127 = BigUint::from_hex("7fffffffffffffffffffffffffffffff").unwrap();
    let sq = m127.mul(&m127);
    assert_eq!(
        sq.to_hex(),
        "3fffffffffffffffffffffffffffffff00000000000000000000000000000001"
    );
}

#[test]
fn signatures_are_not_interchangeable_across_digests_or_schemes() {
    let rsa1 = SignatureScheme::test_rsa(1001);
    let rsa2 = SignatureScheme::test_rsa(1002);
    let dsa = SignatureScheme::test_dsa(1003);
    let d1 = sha256(b"digest one");
    let d2 = sha256(b"digest two");

    let s_rsa1 = rsa1.sign_digest(&d1);
    let s_dsa = dsa.sign_digest(&d1);

    // Correct pairings verify.
    assert!(rsa1.verifier().verify_digest(&d1, &s_rsa1));
    assert!(dsa.verifier().verify_digest(&d1, &s_dsa));
    // Every wrong pairing fails.
    assert!(!rsa1.verifier().verify_digest(&d2, &s_rsa1));
    assert!(!rsa2.verifier().verify_digest(&d1, &s_rsa1));
    assert!(!dsa.verifier().verify_digest(&d2, &s_dsa));
    assert!(!rsa1.verifier().verify_digest(&d1, &s_dsa));
    assert!(!dsa.verifier().verify_digest(&d1, &s_rsa1));
}

#[test]
fn many_sign_verify_cycles_are_stable() {
    let scheme = SignatureScheme::test_rsa(1004);
    let verifier = scheme.verifier();
    for i in 0..25u32 {
        let digest = sha256(&i.to_be_bytes());
        let sig = scheme.sign_digest(&digest);
        assert!(verifier.verify_digest(&digest, &sig), "cycle {i}");
        // A signature from one cycle never verifies another cycle's digest.
        let other = sha256(&(i + 1).to_be_bytes());
        assert!(!verifier.verify_digest(&other, &sig));
    }
}
