//! Property tests for the theorem of function sortability (paper Sec. 2.3.1):
//! inside every subdomain the I-tree produces, the order of the functions is
//! the same at every point of that subdomain, and it equals the order stored
//! at the leaf.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vaq_funcdb::{sort_functions_at, Domain, FuncId, LinearFunction, LpSplitOracle};
use vaq_itree::{ITreeBuilder, Node};

fn functions_from(coeffs: &[(f64, f64)]) -> Vec<LinearFunction> {
    coeffs
        .iter()
        .enumerate()
        .map(|(i, (a, b))| LinearFunction::new(FuncId(i as u32), vec![*a, *b], 0.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every point sampled inside a leaf's constraint system sorts the
    /// functions exactly as the leaf's stored list (up to ties on
    /// boundaries, which sampling interior points avoids almost surely).
    #[test]
    fn leaf_order_is_invariant_across_the_leaf(
        coeffs in prop::collection::vec((0.05f64..1.0, 0.05f64..1.0), 2..7),
        seed in 0u64..1_000,
    ) {
        let functions = functions_from(&coeffs);
        let domain = Domain::unit(2);
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&functions, domain.clone());
        let mut rng = StdRng::seed_from_u64(seed);

        for &leaf in tree.leaf_ids() {
            let Node::Subdomain { constraints, sorted, .. } = tree.node(leaf) else {
                panic!("leaf id must reference a subdomain node");
            };
            // Rejection-sample a few interior points of this leaf.
            let mut found = 0;
            for _ in 0..400 {
                if found >= 3 {
                    break;
                }
                let p = domain.sample(&mut rng);
                if !constraints.contains(&p) {
                    continue;
                }
                // Skip points that lie (numerically) on any intersection
                // boundary, where the order is legitimately ambiguous.
                let on_boundary = functions.iter().enumerate().any(|(i, fi)| {
                    functions.iter().skip(i + 1).any(|fj| {
                        (fi.eval(&p) - fj.eval(&p)).abs() < 1e-9
                    })
                });
                if on_boundary {
                    continue;
                }
                found += 1;
                let direct = sort_functions_at(&functions, &p);
                prop_assert_eq!(
                    &direct, sorted,
                    "order at {:?} disagrees with leaf order", p
                );
            }
        }
    }

    /// The leaves partition the domain: every sampled point belongs to the
    /// constraint system of the leaf that `locate` returns, and `locate`
    /// agrees with a brute-force scan over all leaves.
    #[test]
    fn locate_agrees_with_linear_scan(
        coeffs in prop::collection::vec((0.05f64..1.0, 0.05f64..1.0), 2..6),
        px in 0.01f64..0.99,
        py in 0.01f64..0.99,
    ) {
        let functions = functions_from(&coeffs);
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&functions, Domain::unit(2));
        let p = [px, py];
        let located = tree.locate(&p);
        prop_assert!(tree.constraints(located.leaf).contains(&p));

        // At least one leaf must contain the point (they cover the domain);
        // the located one must be among them.
        let containing: Vec<_> = tree
            .leaf_ids()
            .iter()
            .copied()
            .filter(|id| tree.constraints(*id).contains(&p))
            .collect();
        prop_assert!(!containing.is_empty());
        prop_assert!(containing.contains(&located.leaf));
    }
}
