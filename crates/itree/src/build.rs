//! I-tree construction (paper Sec. 3.1, step 1).
//!
//! Starting from a single subdomain node covering the whole domain, every
//! pairwise intersection `I_{i,j}` is inserted with a breadth-first walk:
//! wherever the intersection actually partitions a node's region, a
//! subdomain leaf is converted into an intersection node with two fresh
//! leaves, and the walk continues into both children of intersection nodes
//! whose region is split. Regions that lie entirely on one side of the
//! hyperplane are skipped, which is what keeps the tree from exploding into
//! the full `O(n^{2d})` arrangement unless the data forces it.

use crate::node::{ITree, Node, NodeId};
use std::collections::VecDeque;
use vaq_funcdb::{
    sort_functions_at, Domain, HalfSpace, LinearFunction, SplitDecision, SplitOracle,
    SubdomainConstraints,
};

/// Statistics gathered while building an I-tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Number of function pairs whose intersection was inserted.
    pub pairs_inserted: usize,
    /// Number of split-oracle queries issued.
    pub oracle_calls: usize,
    /// Number of nodes visited across all insertions.
    pub nodes_visited: usize,
    /// Final number of subdomain (leaf) nodes.
    pub subdomains: usize,
    /// Final number of intersection (internal) nodes.
    pub intersection_nodes: usize,
}

/// Builds I-trees using a configurable split oracle.
#[derive(Clone, Debug)]
pub struct ITreeBuilder<O: SplitOracle> {
    oracle: O,
}

impl<O: SplitOracle> ITreeBuilder<O> {
    /// Creates a builder around the given split oracle.
    pub fn new(oracle: O) -> Self {
        ITreeBuilder { oracle }
    }

    /// Builds the I-tree for `functions` over `domain`.
    pub fn build(&self, functions: &[LinearFunction], domain: Domain) -> ITree {
        self.build_with_stats(functions, domain).0
    }

    /// Builds the I-tree and reports construction statistics.
    pub fn build_with_stats(
        &self,
        functions: &[LinearFunction],
        domain: Domain,
    ) -> (ITree, BuildStats) {
        let mut stats = BuildStats::default();

        // Root: a single subdomain covering the whole domain.
        let whole = SubdomainConstraints::whole(domain.clone());
        let witness = whole.witness_point().unwrap_or_else(|| domain.center());
        let root_node = Node::Subdomain {
            constraints: whole,
            sorted: Vec::new(),
            witness,
        };
        let mut tree = ITree {
            nodes: vec![root_node],
            root: NodeId(0),
            domain,
            leaves: vec![NodeId(0)],
        };

        // Insert every pairwise intersection.
        for i in 0..functions.len() {
            for j in (i + 1)..functions.len() {
                let fi = &functions[i];
                let fj = &functions[j];
                if fi.same_map(fj) {
                    // Identical affine maps never produce a transversal
                    // intersection; their order is resolved by the id
                    // tie-break in the sort.
                    continue;
                }
                let (coeffs, constant) = fi.difference(fj);
                self.insert_intersection(&mut tree, fi, fj, &coeffs, constant, &mut stats);
                stats.pairs_inserted += 1;
            }
        }

        // Attach sorted function lists to every leaf.
        tree.leaves = tree
            .iter()
            .filter(|(_, n)| n.is_leaf())
            .map(|(id, _)| id)
            .collect();
        let leaves = tree.leaves.clone();
        for id in leaves {
            if let Node::Subdomain {
                witness, sorted, ..
            } = &mut tree.nodes[id.index()]
            {
                *sorted = sort_functions_at(functions, witness);
            }
        }

        stats.subdomains = tree.leaves.len();
        stats.intersection_nodes = tree.node_count() - tree.leaves.len();
        (tree, stats)
    }

    /// Inserts one intersection hyperplane into the tree.
    fn insert_intersection(
        &self,
        tree: &mut ITree,
        fi: &LinearFunction,
        fj: &LinearFunction,
        coeffs: &[f64],
        constant: f64,
        stats: &mut BuildStats,
    ) {
        let mut queue: VecDeque<(NodeId, SubdomainConstraints)> = VecDeque::new();
        queue.push_back((tree.root, SubdomainConstraints::whole(tree.domain.clone())));

        while let Some((id, region)) = queue.pop_front() {
            stats.nodes_visited += 1;
            stats.oracle_calls += 1;
            let decision = self.oracle.classify(&region, coeffs, constant);
            if decision != SplitDecision::Splits {
                continue;
            }
            match tree.nodes[id.index()].clone() {
                Node::Intersection {
                    coeffs: node_coeffs,
                    constant: node_constant,
                    above,
                    below,
                    pair,
                } => {
                    // Descend into both children, refining the region with the
                    // half-space each child lives in.
                    let hs_above = HalfSpace {
                        coeffs: node_coeffs.clone(),
                        constant: node_constant,
                        non_negative: true,
                        pair: Some((pair.0 .0, pair.1 .0)),
                    };
                    let hs_below = hs_above.complement();
                    queue.push_back((above, region.with(hs_above)));
                    queue.push_back((below, region.with(hs_below)));
                }
                Node::Subdomain { constraints, .. } => {
                    // Convert this leaf into an intersection node with two new
                    // subdomain children.
                    let hs_above = HalfSpace::above(fi, fj);
                    let hs_below = HalfSpace::below(fi, fj);
                    let above_constraints = constraints.with(hs_above.clone());
                    let below_constraints = constraints.with(hs_below.clone());

                    let above_witness = above_constraints
                        .witness_point()
                        .unwrap_or_else(|| above_constraints.domain.center());
                    let below_witness = below_constraints
                        .witness_point()
                        .unwrap_or_else(|| below_constraints.domain.center());

                    let above_id = NodeId(tree.nodes.len() as u32);
                    tree.nodes.push(Node::Subdomain {
                        constraints: above_constraints,
                        sorted: Vec::new(),
                        witness: above_witness,
                    });
                    let below_id = NodeId(tree.nodes.len() as u32);
                    tree.nodes.push(Node::Subdomain {
                        constraints: below_constraints,
                        sorted: Vec::new(),
                        witness: below_witness,
                    });

                    tree.nodes[id.index()] = Node::Intersection {
                        pair: (fi.id, fj.id),
                        coeffs: coeffs.to_vec(),
                        constant,
                        above: above_id,
                        below: below_id,
                    };
                }
            }
        }
    }
}
