//! The Intersection tree (I-tree).
//!
//! The I-tree (Yang & Cai, TKDE 2018; paper Sec. 2.3.2) indexes the
//! subdomains that the pairwise intersections of a set of functions carve
//! out of the weight domain. Internal *intersection nodes* record that two
//! functions intersect somewhere inside their region and point to the
//! *above* (`f_i − f_j ≥ 0`) and *below* (`f_i − f_j < 0`) children; leaf
//! *subdomain nodes* represent regions in which the functions have one fixed
//! total order, and carry that sorted function list.
//!
//! The tree is the query-processing backbone of both the paper's IFMH-tree
//! (which adds Merkle hashing on top) and the signature-mesh baseline (which
//! enumerates the same subdomains but searches them linearly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod node;
pub mod search;

pub use build::{BuildStats, ITreeBuilder};
pub use node::{ITree, Node, NodeId};
pub use search::{LocateResult, PathStep};

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_funcdb::{
        sort_functions_at, Dataset, Domain, FuncId, FunctionTemplate, LpSplitOracle, Record,
    };

    /// The four univariate functions of the paper's Fig. 2a (values chosen to
    /// produce several intersections inside [0, 1]).
    fn paper_like_dataset() -> Dataset {
        let template = FunctionTemplate::new(vec!["x"]);
        let records = vec![
            Record::new(1, vec![1.0]),  // f1(x) = x        (as 1-attr linear form)
            Record::new(2, vec![0.6]),  // f2(x) = 0.6x
            Record::new(3, vec![0.25]), // f3(x) = 0.25x
            Record::new(4, vec![-0.5]), // f4(x) = -0.5x
        ];
        Dataset::new(records, template, Domain::unit(1))
    }

    /// Univariate affine functions with distinct slopes/intercepts produce a
    /// textbook arrangement of intersection points.
    fn affine_dataset() -> (Vec<vaq_funcdb::LinearFunction>, Domain) {
        use vaq_funcdb::LinearFunction;
        let fs = vec![
            LinearFunction::new(FuncId(0), vec![1.0], 0.0),  // x
            LinearFunction::new(FuncId(1), vec![-1.0], 1.0), // 1 - x
            LinearFunction::new(FuncId(2), vec![0.0], 0.3),  // 0.3
            LinearFunction::new(FuncId(3), vec![2.0], -0.4), // 2x - 0.4
        ];
        (fs, Domain::unit(1))
    }

    #[test]
    fn build_on_functions_through_origin_gives_single_subdomain() {
        // All functions are scalar multiples of x on [0,1]: they only meet at
        // x = 0, which does not partition the (closed) domain interior, so a
        // single subdomain with one global order is expected.
        let ds = paper_like_dataset();
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&ds.functions, ds.domain.clone());
        assert_eq!(tree.leaf_ids().len(), 1);
        let leaf = tree.leaf_ids()[0];
        let sorted = tree.sorted_list(leaf).to_vec();
        // At any interior point, order is f4 < f3 < f2 < f1 (ids 3,2,1,0).
        assert_eq!(sorted, vec![FuncId(3), FuncId(2), FuncId(1), FuncId(0)]);
    }

    #[test]
    fn build_affine_arrangement_and_locate_agree_with_direct_sort() {
        let (fs, domain) = affine_dataset();
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&fs, domain.clone());
        assert!(tree.leaf_ids().len() >= 4, "expected several subdomains");

        // At many probe points, the sorted list of the located subdomain must
        // equal the direct sort at that point.
        for i in 0..50 {
            let x = [i as f64 / 49.0];
            let located = tree.locate(&x);
            let leaf_sorted = tree.sorted_list(located.leaf).to_vec();
            let direct = sort_functions_at(&fs, &x);
            assert_eq!(leaf_sorted, direct, "mismatch at x = {x:?}");
        }
    }

    #[test]
    fn every_leaf_witness_point_is_inside_its_constraints() {
        let (fs, domain) = affine_dataset();
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&fs, domain);
        for &leaf in tree.leaf_ids() {
            let node = tree.node(leaf);
            if let Node::Subdomain {
                constraints,
                witness,
                ..
            } = node
            {
                assert!(constraints.contains(witness), "witness not in subdomain");
            } else {
                panic!("leaf id does not point at a subdomain node");
            }
        }
    }

    #[test]
    fn locate_paths_never_exceed_tree_size_and_count_nodes() {
        let (fs, domain) = affine_dataset();
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&fs, domain);
        let res = tree.locate(&[0.77]);
        assert!(res.nodes_visited >= 1);
        assert!(res.nodes_visited <= tree.node_count());
        assert_eq!(res.path.len() + 1, res.nodes_visited);
    }

    #[test]
    fn two_dimensional_arrangement() {
        let template = FunctionTemplate::new(vec!["w1", "w2"]);
        let records = vec![
            Record::new(1, vec![1.0, 0.0]),
            Record::new(2, vec![0.0, 1.0]),
            Record::new(3, vec![0.7, 0.7]),
            Record::new(4, vec![0.2, 0.9]),
        ];
        let ds = Dataset::new(records, template, Domain::unit(2));
        let tree = ITreeBuilder::new(LpSplitOracle::new()).build(&ds.functions, ds.domain.clone());
        assert!(tree.leaf_ids().len() >= 3);
        // Consistency of located order with direct sorting at probe points.
        // Probe points are chosen off every intersection boundary so the
        // tie-break-free direct sort is unambiguous.
        for p in [[0.1, 0.9], [0.9, 0.1], [0.52, 0.47], [0.33, 0.77]] {
            let located = tree.locate(&p);
            assert_eq!(
                tree.sorted_list(located.leaf).to_vec(),
                sort_functions_at(&ds.functions, &p),
                "mismatch at {p:?}"
            );
        }
    }

    #[test]
    fn build_stats_are_populated() {
        let (fs, domain) = affine_dataset();
        let builder = ITreeBuilder::new(LpSplitOracle::new());
        let (tree, stats) = builder.build_with_stats(&fs, domain);
        assert_eq!(stats.pairs_inserted, 6);
        assert!(stats.oracle_calls > 0);
        assert_eq!(stats.subdomains, tree.leaf_ids().len());
        assert!(stats.intersection_nodes + stats.subdomains == tree.node_count());
    }
}
