//! Point-location search in the I-tree.

use crate::node::{ITree, Node, NodeId};

/// One step of the root-to-leaf search path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The intersection node that was examined.
    pub node: NodeId,
    /// The child the search descended into.
    pub taken: NodeId,
    /// The child that was *not* taken (its hash becomes part of the
    /// verification object in the one-signature scheme).
    pub sibling: NodeId,
    /// True if the search went to the *above* child (`f_i − f_j ≥ 0`).
    pub went_above: bool,
}

/// Result of locating the subdomain containing a query input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocateResult {
    /// The subdomain (leaf) node containing the point.
    pub leaf: NodeId,
    /// The intersection nodes traversed, in root-to-leaf order.
    pub path: Vec<PathStep>,
    /// Number of nodes visited (path nodes plus the leaf), the server-cost
    /// metric of Fig. 6.
    pub nodes_visited: usize,
}

impl ITree {
    /// Finds the subdomain node whose region contains `x`.
    ///
    /// The search mirrors the paper's algorithm: at every intersection node
    /// evaluate the difference function at `x`; descend into *above* if it
    /// is ≥ 0 and into *below* otherwise, until a subdomain node is reached.
    pub fn locate(&self, x: &[f64]) -> LocateResult {
        let mut current = self.root;
        let mut path = Vec::new();
        let mut visited = 0usize;
        loop {
            visited += 1;
            match self.node(current) {
                Node::Subdomain { .. } => {
                    return LocateResult {
                        leaf: current,
                        path,
                        nodes_visited: visited,
                    };
                }
                Node::Intersection {
                    coeffs,
                    constant,
                    above,
                    below,
                    ..
                } => {
                    let g: f64 =
                        coeffs.iter().zip(x.iter()).map(|(c, v)| c * v).sum::<f64>() + constant;
                    let went_above = g >= 0.0;
                    let (taken, sibling) = if went_above {
                        (*above, *below)
                    } else {
                        (*below, *above)
                    };
                    path.push(PathStep {
                        node: current,
                        taken,
                        sibling,
                        went_above,
                    });
                    current = taken;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ITreeBuilder;
    use vaq_funcdb::{Domain, FuncId, LinearFunction, LpSplitOracle};

    fn sample_tree() -> ITree {
        let fs = vec![
            LinearFunction::new(FuncId(0), vec![1.0], 0.0),
            LinearFunction::new(FuncId(1), vec![-1.0], 1.0),
            LinearFunction::new(FuncId(2), vec![0.0], 0.3),
        ];
        ITreeBuilder::new(LpSplitOracle::new()).build(&fs, Domain::unit(1))
    }

    #[test]
    fn locate_reaches_a_leaf_with_consistent_path() {
        let tree = sample_tree();
        let res = tree.locate(&[0.42]);
        assert!(tree.node(res.leaf).is_leaf());
        // Each taken child of a step must be the next step's node or the leaf.
        for (i, step) in res.path.iter().enumerate() {
            let next = res.path.get(i + 1).map(|s| s.node).unwrap_or(res.leaf);
            assert_eq!(step.taken, next);
            assert_ne!(step.taken, step.sibling);
        }
    }

    #[test]
    fn located_leaf_contains_point() {
        let tree = sample_tree();
        for i in 0..20 {
            let x = [i as f64 / 19.0];
            let res = tree.locate(&x);
            assert!(tree.constraints(res.leaf).contains(&x), "x = {x:?}");
        }
    }

    #[test]
    fn nodes_visited_counts_path_plus_leaf() {
        let tree = sample_tree();
        let res = tree.locate(&[0.9]);
        assert_eq!(res.nodes_visited, res.path.len() + 1);
    }
}
