//! I-tree node and arena representation.

use vaq_funcdb::{Domain, FuncId, SubdomainConstraints};

/// Index of a node in the tree's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the arena vector.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// A node of the I-tree.
#[derive(Clone, Debug)]
pub enum Node {
    /// An internal node recording that functions `pair.0` and `pair.1`
    /// intersect inside this node's region. The *above* child covers
    /// `f_i − f_j ≥ 0`, the *below* child `f_i − f_j < 0`.
    Intersection {
        /// The pair of intersecting functions `(i, j)`.
        pair: (FuncId, FuncId),
        /// Coefficients of the difference function `f_i − f_j`.
        coeffs: Vec<f64>,
        /// Constant of the difference function.
        constant: f64,
        /// Child covering the non-negative side.
        above: NodeId,
        /// Child covering the negative side.
        below: NodeId,
    },
    /// A leaf: a subdomain in which the functions have one fixed order.
    Subdomain {
        /// The constraint system (domain box + path half-spaces).
        constraints: SubdomainConstraints,
        /// The function ids sorted ascending by score in this subdomain.
        sorted: Vec<FuncId>,
        /// A point strictly inside the subdomain (used to sort and to debug).
        witness: Vec<f64>,
    },
}

impl Node {
    /// True if this is a leaf (subdomain) node.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Subdomain { .. })
    }
}

/// The I-tree: an arena of nodes with a designated root.
#[derive(Clone, Debug)]
pub struct ITree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) domain: Domain,
    pub(crate) leaves: Vec<NodeId>,
}

impl ITree {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The owner-declared weight domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes (intersection + subdomain).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Ids of all subdomain (leaf) nodes, in creation order.
    pub fn leaf_ids(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of subdomains.
    pub fn subdomain_count(&self) -> usize {
        self.leaves.len()
    }

    /// The sorted function list of a leaf. Panics if `id` is not a leaf.
    pub fn sorted_list(&self, id: NodeId) -> &[FuncId] {
        match self.node(id) {
            Node::Subdomain { sorted, .. } => sorted,
            Node::Intersection { .. } => panic!("sorted_list called on an intersection node"),
        }
    }

    /// The constraint system of a leaf. Panics if `id` is not a leaf.
    pub fn constraints(&self, id: NodeId) -> &SubdomainConstraints {
        match self.node(id) {
            Node::Subdomain { constraints, .. } => constraints,
            Node::Intersection { .. } => panic!("constraints called on an intersection node"),
        }
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Approximate in-memory size in bytes of the structural part of the
    /// tree (used for Fig. 5c structure-size accounting).
    pub fn byte_size(&self) -> usize {
        let mut total = 0usize;
        for node in &self.nodes {
            total += match node {
                Node::Intersection { coeffs, .. } => {
                    // pair + 2 child pointers + difference coefficients
                    8 + 8 + coeffs.len() * 8 + 8
                }
                Node::Subdomain {
                    constraints,
                    sorted,
                    witness,
                } => {
                    constraints.halfspaces.len() * (constraints.domain.dims() * 8 + 16)
                        + sorted.len() * 4
                        + witness.len() * 8
                }
            };
        }
        total
    }
}
