//! End-to-end integration tests: owner → server → client for every query
//! type and both signing modes, with results cross-checked against a naive
//! (trusted, brute-force) reference implementation.

use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{SignatureScheme, Signer};
use vaq_funcdb::{Dataset, Record};
use vaq_workload::{patient_risk_table, uniform_dataset};

/// Brute-force reference: which record ids should a query return?
fn reference_answer(dataset: &Dataset, query: &Query) -> Vec<u64> {
    let x = query.weights();
    let mut scored: Vec<(f64, u64)> = dataset
        .records
        .iter()
        .zip(dataset.functions.iter())
        .map(|(r, f)| (f.eval(x), r.id))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    match query {
        Query::TopK { k, .. } => {
            let k = (*k).min(scored.len());
            scored[scored.len() - k..]
                .iter()
                .map(|(_, id)| *id)
                .collect()
        }
        Query::Range { lower, upper, .. } => scored
            .iter()
            .filter(|(s, _)| *s >= *lower && *s <= *upper)
            .map(|(_, id)| *id)
            .collect(),
        Query::Knn { k, target, .. } => {
            let mut by_dist: Vec<(f64, u64)> = scored
                .iter()
                .map(|(s, id)| ((s - target).abs(), *id))
                .collect();
            by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let k = (*k).min(by_dist.len());
            let mut ids: Vec<u64> = by_dist[..k].iter().map(|(_, id)| *id).collect();
            ids.sort_unstable();
            ids
        }
    }
}

fn run_and_verify(dataset: &Dataset, mode: SigningMode, query: &Query) -> Vec<u64> {
    let scheme = SignatureScheme::test_rsa(0xF00D);
    let tree = IfmhTree::build(dataset, mode, &scheme);
    let server = Server::new(dataset.clone(), tree);
    let response = server.process(query);
    let verifier = scheme.verifier();
    let outcome = client::verify(
        query,
        &response.records,
        &response.vo,
        &dataset.template,
        verifier.as_ref(),
    );
    assert!(
        outcome.is_ok(),
        "verification failed for {query}: {:?}",
        outcome.err()
    );
    let verified = outcome.unwrap();
    assert_eq!(verified.scores.len(), response.records.len());
    assert!(verified.cost.signature_verifications == 1);
    response.records.iter().map(|r| r.id).collect()
}

#[test]
fn top_k_matches_reference_both_modes() {
    let ds = uniform_dataset(24, 1, 11);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        for k in [1usize, 3, 10, 24, 30] {
            let query = Query::top_k(vec![0.73], k);
            let mut got = run_and_verify(&ds, mode, &query);
            let mut expected = reference_answer(&ds, &query);
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "mode {mode}, k {k}");
        }
    }
}

#[test]
fn range_matches_reference_both_modes() {
    let ds = uniform_dataset(30, 1, 12);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        for (lo, hi) in [(0.1, 0.3), (0.0, 1.0), (0.45, 0.55), (0.9, 0.95)] {
            let query = Query::range(vec![0.31], lo, hi);
            let mut got = run_and_verify(&ds, mode, &query);
            let mut expected = reference_answer(&ds, &query);
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "mode {mode}, range [{lo}, {hi}]");
        }
    }
}

#[test]
fn knn_matches_reference_both_modes() {
    let ds = uniform_dataset(25, 1, 13);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        for (k, y) in [(1usize, 0.4), (5, 0.2), (7, 0.95), (25, 0.5)] {
            let query = Query::knn(vec![0.62], k, y);
            let got = run_and_verify(&ds, mode, &query);
            let expected = reference_answer(&ds, &query);
            // KNN sets can differ on exact-tie distances; compare distances
            // rather than identities to stay robust.
            let x = query.weights();
            let dist = |id: u64| {
                let f = &ds.functions[id as usize];
                (f.eval(x) - y).abs()
            };
            let mut got_d: Vec<f64> = got.iter().map(|id| dist(*id)).collect();
            let mut exp_d: Vec<f64> = expected.iter().map(|id| dist(*id)).collect();
            got_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            exp_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got_d.len(), exp_d.len());
            for (g, e) in got_d.iter().zip(exp_d.iter()) {
                assert!((g - e).abs() < 1e-9, "mode {mode}, k {k}, y {y}");
            }
        }
    }
}

#[test]
fn empty_range_results_verify() {
    let ds = uniform_dataset(20, 1, 14);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        // Scores under weights in [0,1] stay within [0,1]; ask far outside.
        let query = Query::range(vec![0.5], 5.0, 6.0);
        let got = run_and_verify(&ds, mode, &query);
        assert!(got.is_empty());
        // And a range below every score.
        let query = Query::range(vec![0.5], -3.0, -2.0);
        let got = run_and_verify(&ds, mode, &query);
        assert!(got.is_empty());
    }
}

#[test]
fn two_dimensional_dataset_verifies_across_subdomains() {
    let ds = patient_risk_table(10, 3);
    let scheme = SignatureScheme::test_rsa(0xBEEF);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        let tree = IfmhTree::build(&ds, mode, &scheme);
        assert!(
            tree.subdomain_count() >= 2,
            "expected a non-trivial arrangement"
        );
        let server = Server::new(ds.clone(), tree);
        let verifier = scheme.verifier();
        for wx in [0.05, 0.35, 0.65, 0.95] {
            for wy in [0.1, 0.5, 0.9] {
                let query = Query::top_k(vec![wx, wy], 3);
                let response = server.process(&query);
                let out = client::verify(
                    &query,
                    &response.records,
                    &response.vo,
                    &ds.template,
                    verifier.as_ref(),
                );
                assert!(
                    out.is_ok(),
                    "mode {mode}, weights ({wx}, {wy}): {:?}",
                    out.err()
                );
                let mut got: Vec<u64> = response.records.iter().map(|r| r.id).collect();
                let mut expected = reference_answer(&ds, &query);
                got.sort_unstable();
                expected.sort_unstable();
                assert_eq!(got, expected);
            }
        }
    }
}

#[test]
fn dsa_signed_tree_verifies() {
    let ds = uniform_dataset(12, 1, 15);
    let scheme = SignatureScheme::test_dsa(0xABCD);
    let tree = IfmhTree::build(&ds, SigningMode::MultiSignature, &scheme);
    let server = Server::new(ds.clone(), tree);
    let query = Query::range(vec![0.8], 0.2, 0.6);
    let response = server.process(&query);
    let verifier = scheme.verifier();
    let out = client::verify(
        &query,
        &response.records,
        &response.vo,
        &ds.template,
        verifier.as_ref(),
    );
    assert!(out.is_ok(), "{:?}", out.err());
}

#[test]
fn single_record_database() {
    let ds = uniform_dataset(1, 2, 16);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        let query = Query::top_k(vec![0.4, 0.6], 1);
        let got = run_and_verify(&ds, mode, &query);
        assert_eq!(got, vec![0]);
        let query = Query::knn(vec![0.4, 0.6], 3, 0.1);
        let got = run_and_verify(&ds, mode, &query);
        assert_eq!(got, vec![0]);
    }
}

#[test]
fn duplicate_records_are_handled() {
    // Two identical rows: the functions coincide everywhere (no transversal
    // intersection); ordering falls back to the id tie-break.
    let template = vaq_funcdb::FunctionTemplate::anonymous(2);
    let records = vec![
        Record::new(0, vec![0.5, 0.5]),
        Record::new(1, vec![0.5, 0.5]),
        Record::new(2, vec![0.9, 0.1]),
    ];
    let ds = Dataset::new(records, template, vaq_funcdb::Domain::unit(2));
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        let query = Query::top_k(vec![0.5, 0.5], 2);
        let got = run_and_verify(&ds, mode, &query);
        assert_eq!(got.len(), 2);
    }
}

#[test]
fn verification_cost_counters_are_populated() {
    let ds = uniform_dataset(20, 1, 17);
    let scheme = SignatureScheme::test_rsa(0xCAFE);
    let tree = IfmhTree::build(&ds, SigningMode::OneSignature, &scheme);
    let server = Server::new(ds.clone(), tree);
    let query = Query::range(vec![0.5], 0.2, 0.8);
    let response = server.process(&query);
    assert!(response.cost.imh_nodes_visited >= 1);
    assert!(response.cost.fmh_nodes_visited > 0);
    assert!(response.vo.byte_size() > 0);
    let verifier = scheme.verifier();
    let out = client::verify(
        &query,
        &response.records,
        &response.vo,
        &ds.template,
        verifier.as_ref(),
    )
    .unwrap();
    assert!(out.cost.hash_ops >= response.records.len());
    assert_eq!(out.cost.signature_verifications, 1);
}

#[test]
fn multi_signature_vo_is_smaller_on_imh_part_than_one_signature() {
    // With a deep enough IMH-tree the one-signature VO carries a path while
    // the multi-signature VO carries only the subdomain's inequalities, so
    // their sizes differ; both must verify.
    let ds = uniform_dataset(16, 1, 18);
    let scheme = SignatureScheme::test_rsa(0xD00D);
    let one = IfmhTree::build(&ds, SigningMode::OneSignature, &scheme);
    let multi = IfmhTree::build(&ds, SigningMode::MultiSignature, &scheme);
    assert_eq!(one.signature_count(), 1);
    assert_eq!(multi.signature_count(), multi.subdomain_count());

    let server_one = Server::new(ds.clone(), one);
    let server_multi = Server::new(ds.clone(), multi);
    let query = Query::top_k(vec![0.37], 3);
    let r1 = server_one.process(&query);
    let r2 = server_multi.process(&query);
    let verifier = scheme.verifier();
    assert!(client::verify(&query, &r1.records, &r1.vo, &ds.template, verifier.as_ref()).is_ok());
    assert!(client::verify(&query, &r2.records, &r2.vo, &ds.template, verifier.as_ref()).is_ok());
    assert_eq!(
        r1.records.iter().map(|r| r.id).collect::<Vec<_>>(),
        r2.records.iter().map(|r| r.id).collect::<Vec<_>>()
    );
}
