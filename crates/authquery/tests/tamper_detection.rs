//! Adversarial tests: every way a malicious (or faulty) server can deviate
//! from the honest protocol must be detected by the client.
//!
//! These scenarios mirror the paper's adversary model (Sec. 2.2) and the two
//! attack cases analysed in Sec. 4.1: dropping records from the middle of a
//! result (incompleteness) and forging boundary records.

use vaq_authquery::{
    client, BoundaryEntry, IfmhTree, IntersectionVerification, Query, Server, SigningMode,
    VerifyError,
};
use vaq_crypto::{SignatureScheme, Signer, Verifier};
use vaq_funcdb::{Dataset, Record};
use vaq_workload::uniform_dataset;

struct Setup {
    dataset: Dataset,
    server: Server,
    verifier: Box<dyn Verifier>,
}

fn setup(mode: SigningMode, n: usize, seed: u64) -> Setup {
    let dataset = uniform_dataset(n, 1, seed);
    let scheme = SignatureScheme::test_rsa(seed ^ 0x5151);
    let tree = IfmhTree::build(&dataset, mode, &scheme);
    let server = Server::new(dataset.clone(), tree);
    Setup {
        dataset,
        server,
        verifier: scheme.verifier(),
    }
}

fn both_modes() -> Vec<SigningMode> {
    vec![SigningMode::OneSignature, SigningMode::MultiSignature]
}

#[test]
fn dropping_a_middle_record_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 1);
        let query = Query::range(vec![0.5], 0.1, 0.9);
        let mut resp = s.server.process(&query);
        assert!(resp.records.len() >= 3, "need a non-trivial result");
        // The server drops one record from the middle of the result but keeps
        // the verification object untouched.
        resp.records.remove(resp.records.len() / 2);
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(out.is_err(), "mode {mode}: dropped record must be detected");
    }
}

#[test]
fn modifying_a_record_attribute_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 2);
        let query = Query::top_k(vec![0.4], 5);
        let mut resp = s.server.process(&query);
        resp.records[0].attrs[0] += 0.05;
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(
            out.is_err(),
            "mode {mode}: modified record must be detected"
        );
    }
}

#[test]
fn substituting_a_foreign_record_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 3);
        let query = Query::top_k(vec![0.4], 4);
        let mut resp = s.server.process(&query);
        // Replace one result record with a fabricated one that would score
        // plausibly but never existed in the database.
        resp.records[1] = Record::new(999, vec![0.77]);
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(out.is_err(), "mode {mode}: forged record must be detected");
    }
}

#[test]
fn truncating_the_top_k_result_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 15, 4);
        let query = Query::top_k(vec![0.8], 6);
        let mut resp = s.server.process(&query);
        // Return only 4 of the requested 6 (e.g. to save work).
        resp.records.truncate(4);
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(
            out.is_err(),
            "mode {mode}: truncated top-k must be detected"
        );
    }
}

#[test]
fn answering_top_k_with_lower_ranked_records_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 15, 5);
        let honest_top3 = s.server.process(&Query::top_k(vec![0.6], 3));
        // A malicious server tries to pass off ranks 4-6 as the top 3 by
        // reusing the VO of a *different* (honest) query window: take the
        // honest answer for top-6 and give only its lower half plus its VO.
        let top6 = s.server.process(&Query::top_k(vec![0.6], 6));
        let lower_half: Vec<Record> = top6.records[..3].to_vec();
        let query = Query::top_k(vec![0.6], 3);
        let out = client::verify(
            &query,
            &lower_half,
            &top6.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(out.is_err(), "mode {mode}: wrong window must be detected");
        // Sanity: the honest top-3 verifies.
        let ok = client::verify(
            &query,
            &honest_top3.records,
            &honest_top3.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(ok.is_ok());
    }
}

#[test]
fn narrowing_a_range_result_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 25, 6);
        let query = Query::range(vec![0.3], 0.2, 0.8);
        // The server answers honestly for a narrower range and presents it
        // for the original query (classic "save work" incompleteness).
        let narrow = s.server.process(&Query::range(vec![0.3], 0.3, 0.6));
        let out = client::verify(
            &query,
            &narrow.records,
            &narrow.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(out.is_err(), "mode {mode}: narrowed range must be detected");
    }
}

#[test]
fn vo_from_a_different_weight_vector_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 25, 7);
        // Only meaningful when different weights land in different subdomains;
        // with a univariate database all weights share one subdomain, so use
        // a 2-attribute dataset here.
        let dataset = uniform_dataset(8, 2, 7);
        let scheme = SignatureScheme::test_rsa(77);
        let tree = IfmhTree::build(&dataset, mode, &scheme);
        if tree.subdomain_count() < 2 {
            continue; // arrangement happened to be trivial; nothing to test
        }
        let server = Server::new(dataset.clone(), tree);
        let verifier = scheme.verifier();

        // Find two weight vectors that live in different subdomains.
        let probes: Vec<Vec<f64>> = (1..40)
            .map(|i| vec![i as f64 / 40.0, 1.0 - i as f64 / 40.0])
            .collect();
        let mut split = None;
        for w in &probes[1..] {
            let a = server.tree().itree().locate(&probes[0]).leaf;
            let b = server.tree().itree().locate(w).leaf;
            if a != b {
                split = Some((probes[0].clone(), w.clone()));
                break;
            }
        }
        let Some((w1, w2)) = split else { continue };

        // Answer computed (honestly) for w2 but presented for the query at w1.
        let q1 = Query::top_k(w1, 3);
        let r2 = server.process(&Query::top_k(w2, 3));
        let out = client::verify(
            &q1,
            &r2.records,
            &r2.vo,
            &dataset.template,
            verifier.as_ref(),
        );
        assert!(
            matches!(out, Err(VerifyError::WrongSubdomain) | Err(_)),
            "mode {mode}: wrong-subdomain replay must be detected"
        );
        let _ = s; // keep the outer setup alive for symmetry
    }
}

#[test]
fn tampered_signature_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 12, 8);
        let query = Query::range(vec![0.5], 0.2, 0.7);
        let mut resp = s.server.process(&query);
        // Flip a bit in the signature.
        match &mut resp.vo.signature {
            vaq_crypto::Signature::Rsa(sig) => sig.bytes[0] ^= 0x01,
            vaq_crypto::Signature::Dsa(sig) => {
                sig.r = sig.r.add(&vaq_crypto::BigUint::one());
            }
        }
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert_eq!(
            out.unwrap_err(),
            VerifyError::SignatureMismatch,
            "mode {mode}"
        );
    }
}

#[test]
fn signature_from_a_different_owner_is_detected() {
    for mode in both_modes() {
        let dataset = uniform_dataset(12, 1, 9);
        let owner = SignatureScheme::test_rsa(100);
        let imposter = SignatureScheme::test_rsa(101);
        let tree = IfmhTree::build(&dataset, mode, &imposter);
        let server = Server::new(dataset.clone(), tree);
        let query = Query::top_k(vec![0.5], 3);
        let resp = server.process(&query);
        // The client trusts the real owner's key, not the imposter's.
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &dataset.template,
            owner.verifier().as_ref(),
        );
        assert_eq!(
            out.unwrap_err(),
            VerifyError::SignatureMismatch,
            "mode {mode}"
        );
    }
}

#[test]
fn tampered_boundary_record_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 10);
        // Range chosen so both boundaries are real records.
        let query = Query::range(vec![0.5], 0.3, 0.7);
        let mut resp = s.server.process(&query);
        if let BoundaryEntry::Record(r) = &mut resp.vo.left_boundary {
            // Pretend the record just below the range actually scores lower
            // than it does (to hide an omission).
            r.attrs[0] = 0.0;
            let out = client::verify(
                &query,
                &resp.records,
                &resp.vo,
                &s.dataset.template,
                s.verifier.as_ref(),
            );
            assert!(
                out.is_err(),
                "mode {mode}: tampered boundary must be detected"
            );
        }
    }
}

#[test]
fn fake_sentinel_in_place_of_boundary_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 11);
        let query = Query::range(vec![0.5], 0.3, 0.7);
        let mut resp = s.server.process(&query);
        if matches!(resp.vo.left_boundary, BoundaryEntry::Record(_)) {
            // Claim the result starts at the very beginning of the list.
            resp.vo.left_boundary = BoundaryEntry::MinSentinel;
            let out = client::verify(
                &query,
                &resp.records,
                &resp.vo,
                &s.dataset.template,
                s.verifier.as_ref(),
            );
            assert!(out.is_err(), "mode {mode}: fake sentinel must be detected");
        }
    }
}

#[test]
fn tampered_range_proof_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 12);
        let query = Query::range(vec![0.5], 0.2, 0.5);
        let mut resp = s.server.process(&query);
        if let Some(node) = resp.vo.range_proof.nodes.first_mut() {
            node.hash[0] ^= 0xff;
            let out = client::verify(
                &query,
                &resp.records,
                &resp.vo,
                &s.dataset.template,
                s.verifier.as_ref(),
            );
            assert!(out.is_err(), "mode {mode}: tampered proof must be detected");
        }
    }
}

#[test]
fn lying_about_leaf_count_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 13);
        // A top-k answer where the server pretends the database is smaller
        // than it is (so a truncated result looks complete).
        let query = Query::top_k(vec![0.6], 8);
        let mut resp = s.server.process(&query);
        resp.records.drain(..4); // keep only the top 4
        resp.vo.range_proof.leaf_count = 4 + 2; // claim n = 4
        resp.vo.first_leaf = 1;
        resp.vo.left_boundary = BoundaryEntry::MinSentinel;
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(
            out.is_err(),
            "mode {mode}: forged leaf count must be detected"
        );
    }
}

#[test]
fn reordering_result_records_is_detected() {
    for mode in both_modes() {
        let s = setup(mode, 20, 14);
        let query = Query::range(vec![0.5], 0.1, 0.9);
        let mut resp = s.server.process(&query);
        assert!(resp.records.len() >= 2);
        let last = resp.records.len() - 1;
        resp.records.swap(0, last);
        let out = client::verify(
            &query,
            &resp.records,
            &resp.vo,
            &s.dataset.template,
            s.verifier.as_ref(),
        );
        assert!(
            out.is_err(),
            "mode {mode}: reordered result must be detected"
        );
    }
}

#[test]
fn multi_signature_inequalities_cannot_be_swapped() {
    // Replaying a *different subdomain's* signature with doctored
    // inequalities must fail: the signature binds the inequalities.
    let dataset = uniform_dataset(8, 2, 15);
    let scheme = SignatureScheme::test_rsa(200);
    let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
    if tree.subdomain_count() < 2 {
        return;
    }
    let server = Server::new(dataset.clone(), tree);
    let verifier = scheme.verifier();
    let query = Query::top_k(vec![0.9, 0.1], 2);
    let mut resp = server.process(&query);
    // Drop the inequalities so any X appears to satisfy the subdomain.
    if let IntersectionVerification::MultiSignature { halfspaces } =
        &mut resp.vo.intersection_verification
    {
        halfspaces.clear();
    }
    let out = client::verify(
        &query,
        &resp.records,
        &resp.vo,
        &dataset.template,
        verifier.as_ref(),
    );
    assert!(out.is_err(), "stripped inequalities must be detected");
}

#[test]
fn honest_responses_still_verify_after_adversarial_suite() {
    // Guard against the checks being trivially over-strict: honest responses
    // for the same configurations used above must all pass.
    for mode in both_modes() {
        let s = setup(mode, 20, 16);
        for query in [
            Query::top_k(vec![0.6], 8),
            Query::range(vec![0.5], 0.3, 0.7),
            Query::knn(vec![0.4], 5, 0.5),
        ] {
            let resp = s.server.process(&query);
            let out = client::verify(
                &query,
                &resp.records,
                &resp.vo,
                &s.dataset.template,
                s.verifier.as_ref(),
            );
            assert!(
                out.is_ok(),
                "honest {query} must verify under {mode}: {:?}",
                out.err()
            );
        }
    }
}
