//! Property-based integration tests: for random datasets and random queries,
//! honest server responses always verify and always match the brute-force
//! reference answer.

use proptest::prelude::*;
use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{SignatureScheme, Signer};
use vaq_funcdb::{Dataset, Domain, FunctionTemplate, Record};

/// Builds a dataset from raw attribute rows.
fn dataset_from_rows(rows: &[Vec<f64>]) -> Dataset {
    let dims = rows[0].len();
    let template = FunctionTemplate::anonymous(dims);
    let records = rows
        .iter()
        .enumerate()
        .map(|(i, attrs)| Record::new(i as u64, attrs.clone()))
        .collect();
    Dataset::new(records, template, Domain::unit(dims))
}

/// Reference result ids (sorted) for a query.
fn reference(dataset: &Dataset, query: &Query) -> Vec<u64> {
    let x = query.weights();
    let mut scored: Vec<(f64, u64)> = dataset
        .functions
        .iter()
        .zip(dataset.records.iter())
        .map(|(f, r)| (f.eval(x), r.id))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut ids: Vec<u64> = match query {
        Query::TopK { k, .. } => {
            let k = (*k).min(scored.len());
            scored[scored.len() - k..].iter().map(|(_, i)| *i).collect()
        }
        Query::Range { lower, upper, .. } => scored
            .iter()
            .filter(|(s, _)| s >= lower && s <= upper)
            .map(|(_, i)| *i)
            .collect(),
        Query::Knn { k, target, .. } => {
            let mut d: Vec<(f64, u64)> = scored
                .iter()
                .map(|(s, i)| ((s - target).abs(), *i))
                .collect();
            d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            d[..(*k).min(d.len())].iter().map(|(_, i)| *i).collect()
        }
    };
    ids.sort_unstable();
    ids
}

/// Distance multiset for KNN comparison (ties make identity comparison
/// ill-defined).
fn distance_profile(dataset: &Dataset, ids: &[u64], x: &[f64], target: f64) -> Vec<f64> {
    let mut d: Vec<f64> = ids
        .iter()
        .map(|id| (dataset.functions[*id as usize].eval(x) - target).abs())
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 1-dimensional rows keep the subdomain arrangement small enough that a
    // full owner/server/client round-trip stays fast inside proptest.
    prop::collection::vec(prop::collection::vec(0.01f64..0.99, 1..=1), 2..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn honest_responses_always_verify_and_match_reference(
        rows in rows_strategy(),
        weight in 0.05f64..0.95,
        k in 1usize..6,
        lo in 0.0f64..0.5,
        width in 0.0f64..0.5,
        mode_multi in proptest::bool::ANY,
    ) {
        let dataset = dataset_from_rows(&rows);
        let mode = if mode_multi { SigningMode::MultiSignature } else { SigningMode::OneSignature };
        let scheme = SignatureScheme::test_rsa(42);
        let tree = IfmhTree::build(&dataset, mode, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let verifier = scheme.verifier();

        let queries = vec![
            Query::top_k(vec![weight], k),
            Query::range(vec![weight], lo, lo + width),
            Query::knn(vec![weight], k, lo + width),
        ];
        for query in queries {
            let resp = server.process(&query);
            let out = client::verify(&query, &resp.records, &resp.vo, &dataset.template, verifier.as_ref());
            prop_assert!(out.is_ok(), "query {} failed: {:?}", query, out.err());

            let mut got: Vec<u64> = resp.records.iter().map(|r| r.id).collect();
            got.sort_unstable();
            let expected = reference(&dataset, &query);
            match &query {
                Query::Knn { target, .. } => {
                    // Compare distance profiles to stay robust under ties.
                    let x = query.weights();
                    prop_assert_eq!(got.len(), expected.len());
                    let gp = distance_profile(&dataset, &got, x, *target);
                    let ep = distance_profile(&dataset, &expected, x, *target);
                    for (g, e) in gp.iter().zip(ep.iter()) {
                        prop_assert!((g - e).abs() < 1e-9);
                    }
                }
                _ => prop_assert_eq!(got, expected, "query {}", query),
            }
        }
    }

    #[test]
    fn dropping_any_result_record_is_always_detected(
        rows in prop::collection::vec(prop::collection::vec(0.01f64..0.99, 1..=1), 4..10),
        weight in 0.05f64..0.95,
        drop_idx in 0usize..20,
    ) {
        let dataset = dataset_from_rows(&rows);
        let scheme = SignatureScheme::test_rsa(43);
        let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let verifier = scheme.verifier();
        let query = Query::range(vec![weight], 0.0, 1.0);
        let mut resp = server.process(&query);
        prop_assume!(resp.records.len() >= 2);
        let idx = drop_idx % resp.records.len();
        resp.records.remove(idx);
        let out = client::verify(&query, &resp.records, &resp.vo, &dataset.template, verifier.as_ref());
        prop_assert!(out.is_err(), "dropping record {} must be detected", idx);
    }

    #[test]
    fn perturbing_any_returned_attribute_is_always_detected(
        rows in prop::collection::vec(prop::collection::vec(0.01f64..0.99, 1..=1), 3..10),
        weight in 0.05f64..0.95,
        victim in 0usize..20,
        delta in 1e-6f64..0.5,
    ) {
        let dataset = dataset_from_rows(&rows);
        let scheme = SignatureScheme::test_rsa(44);
        let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let verifier = scheme.verifier();
        let query = Query::top_k(vec![weight], 3);
        let mut resp = server.process(&query);
        prop_assume!(!resp.records.is_empty());
        let idx = victim % resp.records.len();
        resp.records[idx].attrs[0] += delta;
        let out = client::verify(&query, &resp.records, &resp.vo, &dataset.template, verifier.as_ref());
        prop_assert!(out.is_err(), "perturbing record {} must be detected", idx);
    }
}
