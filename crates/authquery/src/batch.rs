//! Batch query processing and verification.
//!
//! Analytic dashboards rarely issue one query at a time: a committee ranks
//! applicants under several weightings, a risk desk sweeps several score
//! bands. Batching does not change the protocol — each query still gets its
//! own verification object — but it gives callers a single call site and a
//! single aggregated cost record, which is also what the experiment harness
//! uses to average costs over query mixes.

use crate::client::{self, VerifiedResult};
use crate::cost::{ClientCost, ServerCost};
use crate::error::VerifyError;
use crate::query::Query;
use crate::server::{QueryResponse, Server};
use vaq_crypto::Verifier;
use vaq_funcdb::FunctionTemplate;

/// The responses to a batch of queries, in query order.
#[derive(Clone, Debug)]
pub struct BatchResponse {
    /// Individual responses.
    pub responses: Vec<QueryResponse>,
}

impl BatchResponse {
    /// Aggregated server cost across the batch.
    pub fn total_server_cost(&self) -> ServerCost {
        let mut total = ServerCost::default();
        for r in &self.responses {
            total.imh_nodes_visited += r.cost.imh_nodes_visited;
            total.fmh_nodes_visited += r.cost.fmh_nodes_visited;
            total.vo_nodes_collected += r.cost.vo_nodes_collected;
            total.result_len += r.cost.result_len;
        }
        total
    }

    /// Total size of all verification objects in bytes.
    pub fn total_vo_bytes(&self) -> usize {
        self.responses.iter().map(|r| r.vo.byte_size()).sum()
    }
}

/// Outcome of verifying a batch.
#[derive(Clone, Debug)]
pub struct BatchVerification {
    /// Per-query verification outcomes, in query order.
    pub outcomes: Vec<Result<VerifiedResult, VerifyError>>,
}

impl BatchVerification {
    /// True if every query in the batch verified.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(Result::is_ok)
    }

    /// Indices of the queries that failed verification.
    pub fn failed_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_err())
            .map(|(i, _)| i)
            .collect()
    }

    /// Aggregated client cost over the successfully verified queries.
    pub fn total_client_cost(&self) -> ClientCost {
        let mut total = ClientCost::default();
        for outcome in self.outcomes.iter().flatten() {
            total.add(&outcome.cost);
        }
        total
    }
}

/// Processes a batch of queries against a server.
pub fn process_batch(server: &Server, queries: &[Query]) -> BatchResponse {
    BatchResponse {
        responses: queries.iter().map(|q| server.process(q)).collect(),
    }
}

/// Verifies a batch of responses against their queries.
///
/// The `queries` and `responses` slices must be parallel; the function
/// panics if their lengths differ (that is a caller bug, not an attack).
pub fn verify_batch(
    queries: &[Query],
    responses: &[QueryResponse],
    template: &FunctionTemplate,
    verifier: &dyn Verifier,
) -> BatchVerification {
    assert_eq!(
        queries.len(),
        responses.len(),
        "queries and responses must be parallel slices"
    );
    BatchVerification {
        outcomes: queries
            .iter()
            .zip(responses.iter())
            .map(|(q, r)| client::verify(q, &r.records, &r.vo, template, verifier))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifmh::IfmhTree;
    use crate::signing::SigningMode;
    use vaq_crypto::{SignatureScheme, Signer};
    use vaq_funcdb::{Dataset, Domain, FunctionTemplate, Record};

    fn setup() -> (Dataset, Server, SignatureScheme) {
        let template = FunctionTemplate::new(vec!["x"]);
        let records = (0..20)
            .map(|i| Record::new(i, vec![(i as f64 + 0.5) / 20.0]))
            .collect();
        let dataset = Dataset::new(records, template, Domain::unit(1));
        let scheme = SignatureScheme::test_rsa(91);
        let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
        let server = Server::new(dataset.clone(), tree);
        (dataset, server, scheme)
    }

    fn sample_queries() -> Vec<Query> {
        vec![
            Query::top_k(vec![0.8], 4),
            Query::range(vec![0.3], 0.05, 0.2),
            Query::knn(vec![0.6], 3, 0.3),
        ]
    }

    #[test]
    fn batch_processing_and_verification_succeeds() {
        let (dataset, server, scheme) = setup();
        let queries = sample_queries();
        let batch = process_batch(&server, &queries);
        assert_eq!(batch.responses.len(), 3);
        assert!(batch.total_vo_bytes() > 0);
        assert!(batch.total_server_cost().total_nodes() > 0);

        let verifier = scheme.verifier();
        let verification = verify_batch(
            &queries,
            &batch.responses,
            &dataset.template,
            verifier.as_ref(),
        );
        assert!(verification.all_ok());
        assert!(verification.failed_indices().is_empty());
        assert_eq!(verification.total_client_cost().signature_verifications, 3);
    }

    #[test]
    fn batch_verification_pinpoints_tampered_query() {
        let (dataset, server, scheme) = setup();
        let queries = sample_queries();
        let mut batch = process_batch(&server, &queries);
        // Tamper with the second response only.
        batch.responses[1].records.clear();
        let verifier = scheme.verifier();
        let verification = verify_batch(
            &queries,
            &batch.responses,
            &dataset.template,
            verifier.as_ref(),
        );
        assert!(!verification.all_ok());
        assert_eq!(verification.failed_indices(), vec![1]);
        // Costs still aggregate over the passing queries.
        assert_eq!(verification.total_client_cost().signature_verifications, 2);
    }

    #[test]
    #[should_panic(expected = "parallel slices")]
    fn mismatched_lengths_panic() {
        let (dataset, server, scheme) = setup();
        let queries = sample_queries();
        let batch = process_batch(&server, &queries);
        let verifier = scheme.verifier();
        let _ = verify_batch(
            &queries[..2],
            &batch.responses,
            &dataset.template,
            verifier.as_ref(),
        );
    }
}
