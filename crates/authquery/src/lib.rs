//! Authenticated analytic queries over outsourced function databases.
//!
//! This crate is the paper's primary contribution: the **IFMH-tree**
//! (Intersection and Function Merkle Hash tree) and the machinery around it
//! that lets a data user verify that the result of a *top-k*, *range* or
//! *KNN* query returned by an untrusted server is **sound** (every returned
//! record is original and satisfies the query) and **complete** (no
//! qualifying record was omitted).
//!
//! # Roles
//!
//! * **Data owner** — builds an [`IfmhTree`] over the dataset with
//!   [`IfmhTree::build`], choosing a [`SigningMode`]:
//!   [`SigningMode::OneSignature`] signs only the IMH root,
//!   [`SigningMode::MultiSignature`] signs every subdomain's FMH root
//!   together with its defining inequalities. The owner uploads the dataset
//!   and the tree to the server and publishes the public key and the
//!   utility-function template.
//! * **Server** — wraps the dataset and the tree in a [`Server`] and answers
//!   queries with [`Server::process`], returning the query result plus a
//!   [`VerificationObject`].
//! * **Data user (client)** — calls [`client::verify`] with the query, the
//!   result, the verification object, the template and the owner's public
//!   key; a successful verification proves soundness and completeness.
//!
//! # Quick example
//!
//! ```
//! use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
//! use vaq_crypto::SignatureScheme;
//! use vaq_funcdb::{Dataset, Domain, FunctionTemplate, Record};
//!
//! // Owner side: a tiny applicant table.
//! let template = FunctionTemplate::new(vec!["gpa", "awards", "papers"]);
//! let records = vec![
//!     Record::new(0, vec![0.9, 0.2, 0.3]),
//!     Record::new(1, vec![0.6, 0.8, 0.1]),
//!     Record::new(2, vec![0.4, 0.5, 0.9]),
//! ];
//! let dataset = Dataset::new(records, template.clone(), Domain::unit(3));
//! let scheme = SignatureScheme::test_rsa(7);
//! let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
//!
//! // Server side.
//! let server = Server::new(dataset.clone(), tree);
//! let query = Query::top_k(vec![1.0, 0.5, 0.25], 2);
//! let response = server.process(&query);
//!
//! // Client side.
//! let public_key = scheme.public_key();
//! let outcome = client::verify(
//!     &query,
//!     &response.records,
//!     &response.vo,
//!     &template,
//!     &public_key,
//! );
//! assert!(outcome.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod cost;
pub mod error;
pub mod ifmh;
pub mod owner;
pub mod proof_cache;
pub mod query;
pub mod server;
pub mod signing;
pub mod vo;

pub use batch::{process_batch, verify_batch, BatchResponse, BatchVerification};
pub use client::{
    verify, verify_at_epoch, verify_at_epoch_with_scratch, VerifiedResult, VerifyScratch,
};
pub use cost::{ClientCost, OwnerStats, ServerCost};
pub use error::VerifyError;
pub use ifmh::IfmhTree;
pub use owner::{DataOwner, PublishedMetadata};
pub use proof_cache::{LeafProof, ProofCache};
pub use query::{Query, QueryKind};
pub use server::{ProcessTiming, QueryResponse, Server};
pub use signing::SigningMode;
pub use vo::{BoundaryEntry, IntersectionVerification, IvStep, VerificationObject};
