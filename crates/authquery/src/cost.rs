//! Cost accounting structures.
//!
//! The paper's evaluation reports *counts* (nodes traversed, hash
//! operations, signatures) as well as wall-clock times. The library threads
//! explicit counters through the owner, server and client code paths so the
//! experiment harness can reproduce the count-based figures exactly and
//! measure the time-based ones around the same calls.

/// Statistics about building the authenticated structure (data-owner
/// overhead, Fig. 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OwnerStats {
    /// Number of records in the dataset.
    pub records: usize,
    /// Number of subdomains (I-tree leaves / FMH-trees).
    pub subdomains: usize,
    /// Total nodes in the IMH-tree (intersection + subdomain nodes).
    pub imh_nodes: usize,
    /// Total nodes across all FMH-trees.
    pub fmh_nodes: usize,
    /// Number of one-way hash operations performed during construction.
    pub hash_ops: usize,
    /// Number of digital signatures created (1 for one-signature, one per
    /// subdomain for multi-signature, |pairs|·|runs| for the mesh baseline).
    pub signatures: usize,
    /// Approximate size of the structure in bytes (Fig. 5c).
    pub structure_bytes: usize,
}

/// Per-query server-side cost (Fig. 6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerCost {
    /// IMH-tree nodes visited while locating the subdomain.
    pub imh_nodes_visited: usize,
    /// FMH-tree nodes touched while extracting the result and building the
    /// range proof.
    pub fmh_nodes_visited: usize,
    /// Extra nodes collected into the verification object (path siblings in
    /// the one-signature scheme).
    pub vo_nodes_collected: usize,
    /// Number of records in the query result.
    pub result_len: usize,
}

impl ServerCost {
    /// Total traversal cost — the metric plotted in Fig. 6.
    pub fn total_nodes(&self) -> usize {
        self.imh_nodes_visited + self.fmh_nodes_visited + self.vo_nodes_collected
    }
}

/// Per-query client-side verification cost (Fig. 7).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientCost {
    /// One-way hash operations performed (leaf digests, Merkle recombination
    /// and IMH path recomputation).
    pub hash_ops: usize,
    /// Signature verifications performed (always 1 for the IFMH schemes,
    /// `|q| + 1` for the signature-mesh baseline).
    pub signature_verifications: usize,
}

impl ClientCost {
    /// Merges another cost record into this one.
    pub fn add(&mut self, other: &ClientCost) {
        self.hash_ops += other.hash_ops;
        self.signature_verifications += other.signature_verifications;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_cost_total() {
        let c = ServerCost {
            imh_nodes_visited: 5,
            fmh_nodes_visited: 7,
            vo_nodes_collected: 3,
            result_len: 10,
        };
        assert_eq!(c.total_nodes(), 15);
    }

    #[test]
    fn client_cost_add() {
        let mut a = ClientCost {
            hash_ops: 3,
            signature_verifications: 1,
        };
        a.add(&ClientCost {
            hash_ops: 2,
            signature_verifications: 4,
        });
        assert_eq!(a.hash_ops, 5);
        assert_eq!(a.signature_verifications, 5);
    }
}
