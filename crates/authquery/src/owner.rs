//! Data-owner conveniences: key management, outsourcing and publication.
//!
//! The paper's system model has the data owner perform three actions:
//! generate a signing key, build the authenticated structure over the
//! database, and publish the verification material (the utility-function
//! template, the weight domain and the public key) to data users. The
//! [`DataOwner`] type bundles those steps behind one ergonomic API, so the
//! examples and downstream users do not have to wire the pieces together by
//! hand.

use crate::ifmh::IfmhTree;
use crate::signing::SigningMode;
use vaq_crypto::signer::PublicKey;
use vaq_crypto::SignatureScheme;
use vaq_funcdb::{Dataset, Domain, FunctionTemplate};

/// Everything a data user needs in order to verify query results.
///
/// This is the material the owner publishes out of band (on its web page,
/// via PKI, ...) — crucially it contains **no secrets** and does not need to
/// be refreshed per query.
#[derive(Clone, Debug, PartialEq)]
pub struct PublishedMetadata {
    /// The utility-function template the server applies to every record.
    pub template: FunctionTemplate,
    /// The owner-declared weight domain.
    pub domain: Domain,
    /// The owner's public verification key.
    pub public_key: PublicKey,
    /// Which signing mode the outsourced structure uses.
    pub mode: SigningMode,
    /// The publication epoch: monotonically increasing across
    /// republications; every signature in the outsourced structure is bound
    /// to it, so responses from a superseded publication are rejected.
    pub epoch: u64,
}

/// The data owner: holds the dataset and the signing key, builds the
/// authenticated structure and publishes the verification material.
pub struct DataOwner {
    dataset: Dataset,
    scheme: SignatureScheme,
    mode: SigningMode,
    epoch: u64,
}

impl DataOwner {
    /// Creates an owner around an existing dataset and signature scheme at
    /// publication epoch 0.
    pub fn new(dataset: Dataset, scheme: SignatureScheme, mode: SigningMode) -> Self {
        DataOwner {
            dataset,
            scheme,
            mode,
            epoch: 0,
        }
    }

    /// Creates an owner with a freshly generated RSA key of `modulus_bits`.
    pub fn with_rsa_key(
        dataset: Dataset,
        modulus_bits: usize,
        seed: u64,
        mode: SigningMode,
    ) -> Self {
        Self::new(dataset, SignatureScheme::new_rsa(modulus_bits, seed), mode)
    }

    /// Creates an owner with a freshly generated DSA key.
    pub fn with_dsa_key(
        dataset: Dataset,
        p_bits: usize,
        q_bits: usize,
        seed: u64,
        mode: SigningMode,
    ) -> Self {
        Self::new(
            dataset,
            SignatureScheme::new_dsa(p_bits, q_bits, seed),
            mode,
        )
    }

    /// The owner's dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The signing mode the owner will use.
    pub fn mode(&self) -> SigningMode {
        self.mode
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces the dataset and advances to the next publication epoch.
    ///
    /// The next [`DataOwner::outsource`] builds (and signs) the structure at
    /// the new epoch, and [`DataOwner::publish`] announces it — which is the
    /// signal that retires every earlier publication: clients holding the
    /// new metadata reject responses signed under any previous epoch.
    pub fn republish(&mut self, dataset: Dataset) -> u64 {
        self.dataset = dataset;
        self.epoch += 1;
        self.epoch
    }

    /// Builds the IFMH-tree — the "upload package" the owner hands to the
    /// cloud server together with the raw records. Signatures are bound to
    /// the current publication epoch.
    pub fn outsource(&self) -> IfmhTree {
        IfmhTree::build_at_epoch(&self.dataset, self.mode, &self.scheme, self.epoch)
    }

    /// The verification material the owner publishes to data users.
    pub fn publish(&self) -> PublishedMetadata {
        PublishedMetadata {
            template: self.dataset.template.clone(),
            domain: self.dataset.domain.clone(),
            public_key: self.scheme.public_key(),
            mode: self.mode,
            epoch: self.epoch,
        }
    }
}

impl std::fmt::Debug for DataOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataOwner")
            .field("records", &self.dataset.len())
            .field("dims", &self.dataset.dims())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::query::Query;
    use crate::server::Server;
    use vaq_funcdb::Record;

    fn dataset() -> Dataset {
        let template = FunctionTemplate::new(vec!["a", "b"]);
        let records = (0..8)
            .map(|i| Record::new(i, vec![i as f64 / 8.0, 1.0 - i as f64 / 8.0]))
            .collect();
        Dataset::new(records, template, Domain::unit(2))
    }

    #[test]
    fn owner_publish_then_full_protocol() {
        let owner = DataOwner::with_rsa_key(dataset(), 128, 5, SigningMode::MultiSignature);
        let metadata = owner.publish();
        let tree = owner.outsource();
        assert_eq!(tree.mode(), SigningMode::MultiSignature);

        let server = Server::new(owner.dataset().clone(), tree);
        let query = Query::top_k(vec![0.9, 0.1], 3);
        let response = server.process(&query);

        // The data user verifies with only the published metadata.
        let out = client::verify(
            &query,
            &response.records,
            &response.vo,
            &metadata.template,
            &metadata.public_key,
        );
        assert!(out.is_ok(), "{:?}", out.err());
    }

    #[test]
    fn published_metadata_contains_no_private_material() {
        let owner = DataOwner::with_rsa_key(dataset(), 128, 6, SigningMode::OneSignature);
        let m1 = owner.publish();
        let m2 = owner.publish();
        // Publishing is deterministic and repeatable.
        assert_eq!(m1, m2);
        assert_eq!(m1.mode, SigningMode::OneSignature);
        assert_eq!(m1.template.dims(), 2);
    }

    #[test]
    fn dsa_owner_works_end_to_end() {
        let owner = DataOwner::with_dsa_key(dataset(), 160, 64, 7, SigningMode::OneSignature);
        let metadata = owner.publish();
        let server = Server::new(owner.dataset().clone(), owner.outsource());
        let query = Query::range(vec![0.5, 0.5], 0.3, 0.7);
        let response = server.process(&query);
        assert!(client::verify(
            &query,
            &response.records,
            &response.vo,
            &metadata.template,
            &metadata.public_key
        )
        .is_ok());
    }

    #[test]
    fn republication_retires_the_previous_epoch() {
        let mut owner = DataOwner::with_rsa_key(dataset(), 128, 10, SigningMode::MultiSignature);
        assert_eq!(owner.publish().epoch, 0);
        let old_server = Server::new(owner.dataset().clone(), owner.outsource());
        let query = Query::top_k(vec![0.7, 0.3], 2);
        let old_response = old_server.process(&query);

        // The owner republishes (here: the same records again); the epoch
        // advances and the new metadata supersedes the old publication.
        let next = owner.republish(dataset());
        assert_eq!(next, 1);
        let metadata = owner.publish();
        assert_eq!(metadata.epoch, 1);
        let server = Server::new(owner.dataset().clone(), owner.outsource());
        let response = server.process(&query);

        // A response from the current publication verifies at epoch 1...
        client::verify_at_epoch(
            &query,
            &response.records,
            &response.vo,
            &metadata.template,
            &metadata.public_key,
            metadata.epoch,
        )
        .expect("current-epoch response verifies");
        // ...while a replayed response signed under the superseded epoch is
        // rejected even though its records and VO are internally honest.
        assert!(matches!(
            client::verify_at_epoch(
                &query,
                &old_response.records,
                &old_response.vo,
                &metadata.template,
                &metadata.public_key,
                metadata.epoch,
            ),
            Err(crate::VerifyError::SignatureMismatch)
        ));
    }

    #[test]
    fn debug_does_not_leak_key_material() {
        let owner = DataOwner::with_rsa_key(dataset(), 128, 8, SigningMode::OneSignature);
        let s = format!("{owner:?}");
        assert!(s.contains("records"));
        assert!(!s.to_lowercase().contains("private"));
    }
}
