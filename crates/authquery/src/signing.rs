//! Signing strategies for the IFMH-tree.

/// Where the data owner places signatures in the IFMH-tree (paper Sec. 3.1,
/// step 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SigningMode {
    /// Sign only the root of the IMH-tree. The whole structure carries a
    /// single signature; verification objects must include the IMH path from
    /// the queried subdomain up to the root.
    OneSignature,
    /// Sign every subdomain node: the signature covers the hash of the
    /// subdomain's defining inequalities concatenated with the root hash of
    /// its FMH-tree. Verification objects then skip the IMH path entirely.
    MultiSignature,
}

impl SigningMode {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            SigningMode::OneSignature => "one-signature",
            SigningMode::MultiSignature => "multi-signature",
        }
    }
}

impl std::fmt::Display for SigningMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SigningMode::OneSignature.label(), "one-signature");
        assert_eq!(SigningMode::MultiSignature.to_string(), "multi-signature");
    }
}
