//! Epoch-scoped interior-proof cache.
//!
//! Within one publication epoch the IFMH-tree is immutable, so everything a
//! verification object needs *besides* the query-specific range proof is
//! static per subdomain: the root-to-leaf IMH path with its sibling hashes
//! (one-signature mode) or the subdomain's defining half-spaces
//! (multi-signature mode), plus the signature that covers it. This module
//! materializes that per-leaf data once at `build_at_epoch` / `republish`
//! time into a read-only [`ProofCache`], so `vo_build` assembles proofs by
//! cloning precomputed slices instead of re-walking the I-tree and
//! re-reading node hashes per query.
//!
//! The cache lives *inside* the [`IfmhTree`](crate::IfmhTree) it was built
//! from, so an epoch hot-swap replaces tree, signatures, and cache as one
//! atomic unit — a query racing a republish can never pair old-epoch cached
//! digests with a new-epoch signature.
//!
//! This file is on vaq-lint's panic-path hot list: no `unwrap`/`expect`/
//! `panic!` and no direct slice indexing outside tests.

use crate::signing::SigningMode;
use crate::vo::{IntersectionVerification, IvStep};
use std::collections::HashMap;
use vaq_crypto::sha256::Digest;
use vaq_crypto::Signature;
use vaq_itree::{ITree, Node, NodeId};

/// Everything a VO needs for one subdomain except the range proof: the
/// subdomain-verification data, the covering signature, and the node count
/// the legacy assembly would have reported for cost accounting.
#[derive(Clone, Debug)]
pub struct LeafProof {
    /// Precomputed subdomain verification data (IMH path or inequality set).
    pub(crate) iv: IntersectionVerification,
    /// The signature covering this subdomain at the cache's epoch.
    pub(crate) signature: Signature,
    /// Interior nodes the uncached path would have collected (path length in
    /// one-signature mode, 0 in multi-signature mode).
    pub(crate) nodes_collected: usize,
}

/// Read-only per-subdomain proof material for one publication epoch.
#[derive(Clone, Debug, Default)]
pub struct ProofCache {
    /// Precomputed proofs keyed by I-tree subdomain node id.
    proofs: HashMap<u32, LeafProof>,
    /// The epoch every cached signature is bound to.
    epoch: u64,
}

impl ProofCache {
    /// Materializes the cache from a freshly built tree's parts. Called once
    /// per build/republish; the result is immutable thereafter.
    pub(crate) fn build(
        itree: &ITree,
        node_hashes: &[Digest],
        mode: SigningMode,
        root_signature: &Option<Signature>,
        leaf_signatures: &HashMap<u32, Signature>,
        epoch: u64,
    ) -> Self {
        let mut proofs = HashMap::new();
        match mode {
            SigningMode::OneSignature => {
                let Some(signature) = root_signature else {
                    return ProofCache { proofs, epoch };
                };
                // DFS from the root, extending the IvStep path per branch;
                // each subdomain leaf's root-to-leaf path is unique and
                // static for the whole epoch.
                let mut stack: Vec<(NodeId, Vec<IvStep>)> = vec![(itree.root(), Vec::new())];
                while let Some((id, path)) = stack.pop() {
                    match itree.node(id) {
                        Node::Subdomain { .. } => {
                            let nodes_collected = path.len();
                            proofs.insert(
                                id.0,
                                LeafProof {
                                    iv: IntersectionVerification::OneSignature { path },
                                    signature: signature.clone(),
                                    nodes_collected,
                                },
                            );
                        }
                        Node::Intersection {
                            pair,
                            coeffs,
                            constant,
                            above,
                            below,
                        } => {
                            let step = |sibling: &NodeId, went_above: bool| IvStep {
                                pair: (pair.0 .0, pair.1 .0),
                                coeffs: coeffs.clone(),
                                constant: *constant,
                                sibling_hash: node_hashes
                                    .get(sibling.index())
                                    .copied()
                                    .unwrap_or([0u8; 32]),
                                went_above,
                            };
                            let mut above_path = path.clone();
                            above_path.push(step(below, true));
                            stack.push((*above, above_path));
                            let mut below_path = path;
                            below_path.push(step(above, false));
                            stack.push((*below, below_path));
                        }
                    }
                }
            }
            SigningMode::MultiSignature => {
                for &leaf in itree.leaf_ids() {
                    if let Some(signature) = leaf_signatures.get(&leaf.0) {
                        proofs.insert(
                            leaf.0,
                            LeafProof {
                                iv: IntersectionVerification::MultiSignature {
                                    halfspaces: itree.constraints(leaf).halfspaces.clone(),
                                },
                                signature: signature.clone(),
                                nodes_collected: 0,
                            },
                        );
                    }
                }
            }
        }
        ProofCache { proofs, epoch }
    }

    /// The precomputed proof for a subdomain leaf, if cached.
    pub fn get(&self, leaf: NodeId) -> Option<&LeafProof> {
        self.proofs.get(&leaf.0)
    }

    /// The publication epoch every cached signature is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of subdomains with cached proof material.
    pub fn len(&self) -> usize {
        self.proofs.len()
    }

    /// True when no proofs are cached.
    pub fn is_empty(&self) -> bool {
        self.proofs.is_empty()
    }

    /// Approximate in-memory size in bytes of the cached proof material
    /// (for structure-size accounting).
    pub fn byte_size(&self) -> usize {
        self.proofs
            .values()
            .map(|p| p.iv.byte_size() + p.signature.byte_len())
            .sum()
    }
}
