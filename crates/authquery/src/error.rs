//! Verification errors.

/// Why a verification object / query result pair was rejected.
///
/// Every variant corresponds to a concrete attack (or transmission fault)
/// from the paper's adversary model: forged or dropped records, a wrong
/// subdomain, a truncated result, a tampered proof or signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The signature over the recomputed root digest did not verify.
    SignatureMismatch,
    /// The Merkle range proof was malformed or incomplete.
    MalformedProof(String),
    /// The query's weight vector does not fall in the subdomain the server
    /// answered from (one-signature: a path branch disagrees with the
    /// evaluation of the intersection function; multi-signature: an
    /// inequality is violated).
    WrongSubdomain,
    /// The result records are not consistent with the claimed positions in
    /// the authenticated sorted list (wrong order or wrong leaf indices).
    InconsistentResultOrder,
    /// A record in the result does not satisfy the query condition
    /// (soundness violation).
    UnsoundRecord {
        /// Position of the offending record within the result.
        position: usize,
    },
    /// A boundary record proves the result incomplete (a qualifying record
    /// was left out), or a boundary that must be a sentinel is not.
    Incomplete(String),
    /// The result length does not match what the query requires (e.g. a
    /// top-k query answered with fewer than k records although the database
    /// holds at least k).
    WrongResultLength {
        /// Number of records expected.
        expected: usize,
        /// Number of records received.
        got: usize,
    },
    /// The verification object is structurally inconsistent with the query
    /// result (e.g. leaf indices overflow the tree).
    MalformedVo(String),
    /// The record data itself is malformed (arity mismatch with template).
    BadRecord(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::SignatureMismatch => write!(f, "root signature does not verify"),
            VerifyError::MalformedProof(m) => write!(f, "malformed Merkle proof: {m}"),
            VerifyError::WrongSubdomain => {
                write!(f, "query input does not belong to the proven subdomain")
            }
            VerifyError::InconsistentResultOrder => {
                write!(
                    f,
                    "result records are inconsistent with the authenticated order"
                )
            }
            VerifyError::UnsoundRecord { position } => {
                write!(
                    f,
                    "record at position {position} does not satisfy the query condition"
                )
            }
            VerifyError::Incomplete(m) => write!(f, "result is incomplete: {m}"),
            VerifyError::WrongResultLength { expected, got } => {
                write!(f, "expected {expected} records, got {got}")
            }
            VerifyError::MalformedVo(m) => write!(f, "malformed verification object: {m}"),
            VerifyError::BadRecord(m) => write!(f, "bad record: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(VerifyError, &str)> = vec![
            (VerifyError::SignatureMismatch, "signature"),
            (VerifyError::WrongSubdomain, "subdomain"),
            (VerifyError::UnsoundRecord { position: 3 }, "position 3"),
            (
                VerifyError::WrongResultLength {
                    expected: 5,
                    got: 2,
                },
                "expected 5",
            ),
            (VerifyError::Incomplete("gap".into()), "gap"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
