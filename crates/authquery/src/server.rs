//! The (untrusted) server: query processing and VO construction.

use crate::cost::ServerCost;
use crate::ifmh::IfmhTree;
use crate::query::Query;
use crate::signing::SigningMode;
use crate::vo::{BoundaryEntry, IntersectionVerification, IvStep, VerificationObject};
use std::time::{Duration, Instant};
use vaq_crypto::Signature;
use vaq_funcdb::{Dataset, Record};
use vaq_itree::{LocateResult, Node, NodeId};

/// A query result together with its verification object and the server's
/// traversal cost.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The result records `R(q)`, in ascending score order.
    pub records: Vec<Record>,
    /// The verification object `VO(q)`.
    pub vo: VerificationObject,
    /// The server's cost counters for this query (Fig. 6 metric).
    pub cost: ServerCost,
}

/// Wall-clock breakdown of [`Server::process_timed`]: how long was spent
/// answering the query versus constructing (and binding signatures into)
/// the verification object.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProcessTiming {
    /// Subdomain location, scoring, and result-window selection.
    pub execute: Duration,
    /// FMH range proof, subdomain verification data, and signature binding.
    pub vo_build: Duration,
}

/// The cloud server: holds the outsourced dataset and the owner-built
/// IFMH-tree, and answers analytic queries with verifiable results.
#[derive(Debug)]
pub struct Server {
    dataset: Dataset,
    tree: IfmhTree,
}

impl Server {
    /// Creates a server from the outsourced dataset and tree.
    pub fn new(dataset: Dataset, tree: IfmhTree) -> Self {
        Server { dataset, tree }
    }

    /// Read access to the hosted dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Read access to the hosted IFMH-tree.
    pub fn tree(&self) -> &IfmhTree {
        &self.tree
    }

    /// The publication epoch of the hosted structure: every signature in
    /// this server's responses is bound to it.
    pub fn epoch(&self) -> u64 {
        self.tree.epoch()
    }

    /// Processes an analytic query and constructs the verification object.
    pub fn process(&self, query: &Query) -> QueryResponse {
        self.process_timed(query).0
    }

    /// Like [`Server::process`], but also reports how the wall-clock time
    /// split between query execution and VO construction, so callers can
    /// attribute latency to the right stage.
    pub fn process_timed(&self, query: &Query) -> (QueryResponse, ProcessTiming) {
        self.process_inner(query, true)
    }

    /// Reference path: identical to [`Server::process`] but assembles the
    /// subdomain-verification data by re-walking the I-tree instead of using
    /// the interior-proof cache. Kept for differential testing — the VO
    /// bytes must be identical to the cached path.
    pub fn process_uncached(&self, query: &Query) -> QueryResponse {
        self.process_inner(query, false).0
    }

    fn process_inner(&self, query: &Query, use_cache: bool) -> (QueryResponse, ProcessTiming) {
        let x = query.weights();
        assert_eq!(
            x.len(),
            self.dataset.dims(),
            "query weight vector has wrong dimensionality"
        );

        let t_start = Instant::now();

        // 1. Locate the subdomain containing X.
        let located = self.tree.itree.locate(x);
        let leaf = located.leaf;
        let sorted = self.tree.itree.sorted_list(leaf);
        let scores: Vec<f64> = sorted.iter().map(|id| self.dataset.score(*id, x)).collect();
        let n = sorted.len();

        // 2. Select the result window on the sorted list.
        let window = query.select_window(&scores);

        // 3. Map the window to FMH leaf indices (leaf 0 is the f_min
        //    sentinel, records occupy leaves 1..=n, leaf n+1 is f_max).
        let (records, first_leaf, last_leaf): (Vec<Record>, usize, usize) = match window {
            Some((s, e)) => {
                let records = sorted[s..=e]
                    .iter()
                    .map(|id| self.dataset.record(*id).clone())
                    .collect();
                (records, s, e + 2)
            }
            None => {
                // Empty result: prove the gap between the two adjacent
                // entries bracketing where the result would have been.
                let p = match query {
                    Query::Range { lower, .. } => scores.partition_point(|v| *v < *lower),
                    _ => n,
                };
                (Vec::new(), p, p + 1)
            }
        };

        let left_boundary = if first_leaf == 0 {
            BoundaryEntry::MinSentinel
        } else {
            BoundaryEntry::Record(self.dataset.record(sorted[first_leaf - 1]).clone())
        };
        let right_boundary = if last_leaf == n + 1 {
            BoundaryEntry::MaxSentinel
        } else {
            BoundaryEntry::Record(self.dataset.record(sorted[last_leaf - 1]).clone())
        };

        let execute = t_start.elapsed();
        let t_vo = Instant::now();

        // 4. FMH range proof over [first_leaf, last_leaf].
        let fmh = self
            .tree
            .fmh_tree(leaf)
            .expect("every subdomain has an FMH tree");
        let range_proof = fmh.prove_range(first_leaf, last_leaf);

        // 5. Subdomain verification data and signature: served from the
        //    epoch-scoped interior-proof cache when available (everything in
        //    it is immutable within the epoch), with the tree re-walk kept
        //    as the uncached reference path.
        let cached = if use_cache {
            self.tree.proof_cache().get(leaf)
        } else {
            None
        };
        let (intersection_verification, signature, vo_nodes_collected) = match cached {
            Some(proof) => (
                proof.iv.clone(),
                proof.signature.clone(),
                proof.nodes_collected,
            ),
            None => self.assemble_interior_proof(&located, leaf),
        };

        let cost = ServerCost {
            imh_nodes_visited: located.nodes_visited,
            fmh_nodes_visited: (last_leaf - first_leaf + 1)
                + range_proof.nodes.len()
                + fmh.height(),
            vo_nodes_collected,
            result_len: records.len(),
        };

        let vo = VerificationObject {
            first_leaf: first_leaf as u32,
            left_boundary,
            right_boundary,
            range_proof,
            intersection_verification,
            signature,
        };

        let timing = ProcessTiming {
            execute,
            vo_build: t_vo.elapsed(),
        };
        (QueryResponse { records, vo, cost }, timing)
    }

    /// Legacy interior-proof assembly: re-walks the located path and reads
    /// node hashes per query. The proof cache precomputes exactly this.
    fn assemble_interior_proof(
        &self,
        located: &LocateResult,
        leaf: NodeId,
    ) -> (IntersectionVerification, Signature, usize) {
        match self.tree.mode() {
            SigningMode::OneSignature => {
                let mut path = Vec::with_capacity(located.path.len());
                for step in &located.path {
                    if let Node::Intersection {
                        pair,
                        coeffs,
                        constant,
                        ..
                    } = self.tree.itree.node(step.node)
                    {
                        path.push(IvStep {
                            pair: (pair.0 .0, pair.1 .0),
                            coeffs: coeffs.clone(),
                            constant: *constant,
                            sibling_hash: self.tree.node_hash(step.sibling),
                            went_above: step.went_above,
                        });
                    }
                }
                let collected = path.len();
                (
                    IntersectionVerification::OneSignature { path },
                    self.tree
                        .root_signature
                        .clone()
                        .expect("one-signature tree carries a root signature"),
                    collected,
                )
            }
            SigningMode::MultiSignature => {
                let halfspaces = self.tree.itree.constraints(leaf).halfspaces.clone();
                (
                    IntersectionVerification::MultiSignature { halfspaces },
                    self.tree.leaf_signatures[&leaf.0].clone(),
                    0,
                )
            }
        }
    }
}
