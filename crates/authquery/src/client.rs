//! Client-side verification of query results.
//!
//! The verification proceeds in two steps (paper Sec. 3.3):
//!
//! 1. **Authenticity** — the client re-hashes the returned records, rebuilds
//!    the relevant part of the FMH-tree from the Merkle range proof, rebuilds
//!    the IMH path (one-signature) or the subdomain digest (multi-signature),
//!    and checks the owner's signature over the resulting digest. Success
//!    proves every record and hash it used came from the owner's original
//!    tree.
//! 2. **Query semantics** — the client mimics the server: it checks the
//!    query input lies in the proven subdomain, recomputes every returned
//!    record's score, and checks the boundary entries prove that nothing
//!    satisfying the query was omitted (completeness) and nothing included
//!    violates the query condition (soundness).

use crate::cost::ClientCost;
use crate::error::VerifyError;
use crate::query::Query;
use crate::vo::{
    epoch_binding_digest, intersection_node_hash, multi_signature_digest, subdomain_node_hash,
    BoundaryEntry, IntersectionVerification, VerificationObject,
};
use vaq_crypto::sha256::Digest;
use vaq_crypto::Verifier;
use vaq_funcdb::{inequality_set_digest, FuncId, FunctionTemplate, Record};
use vaq_mht::verify_range;

/// Outcome of a successful verification.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifiedResult {
    /// Client-side cost counters (Fig. 7 metric).
    pub cost: ClientCost,
    /// Scores of the verified result records at the query's weight vector,
    /// in result order (handy for callers that want to display rankings
    /// without recomputing).
    pub scores: Vec<f64>,
}

/// Small tolerance applied to boundary comparisons so legitimate results are
/// not rejected due to floating-point noise.
const SCORE_EPS: f64 = 1e-9;

/// Reusable scratch buffers for repeated verifications.
///
/// Rebuilding the FMH leaf window allocates a digest vector per call; a
/// client verifying a stream of responses (the service client, the sharded
/// merge path) can hold one `VerifyScratch` and amortize that allocation
/// across calls via [`verify_at_epoch_with_scratch`].
#[derive(Clone, Debug, Default)]
pub struct VerifyScratch {
    /// Leaf digests of the proven window: left boundary, records, right
    /// boundary. Cleared (not shrunk) between calls.
    leaves: Vec<Digest>,
}

/// Verifies a query result against its verification object.
///
/// * `query` — the query the client originally issued,
/// * `records` — the result records returned by the server,
/// * `vo` — the verification object returned by the server,
/// * `template` — the owner-published utility-function template,
/// * `verifier` — the owner's public key.
pub fn verify(
    query: &Query,
    records: &[Record],
    vo: &VerificationObject,
    template: &FunctionTemplate,
    verifier: &dyn Verifier,
) -> Result<VerifiedResult, VerifyError> {
    verify_at_epoch(query, records, vo, template, verifier, 0)
}

/// Verifies a query result against its verification object at a specific
/// publication epoch.
///
/// Identical to [`verify`] except that the owner's signature is checked over
/// the [`epoch_binding_digest`] of the structure digest: a response whose
/// signatures were produced for any *other* epoch — e.g. an honestly signed
/// response replayed from a superseded publication — fails with
/// [`VerifyError::SignatureMismatch`]. The expected epoch comes from the
/// owner's attested publication (shard map or published metadata), never
/// from the response itself.
pub fn verify_at_epoch(
    query: &Query,
    records: &[Record],
    vo: &VerificationObject,
    template: &FunctionTemplate,
    verifier: &dyn Verifier,
    epoch: u64,
) -> Result<VerifiedResult, VerifyError> {
    let mut scratch = VerifyScratch::default();
    verify_at_epoch_with_scratch(query, records, vo, template, verifier, epoch, &mut scratch)
}

/// Like [`verify_at_epoch`], reusing the caller's [`VerifyScratch`] so
/// repeated verifications do not reallocate the leaf-digest buffer.
#[allow(clippy::too_many_arguments)]
pub fn verify_at_epoch_with_scratch(
    query: &Query,
    records: &[Record],
    vo: &VerificationObject,
    template: &FunctionTemplate,
    verifier: &dyn Verifier,
    epoch: u64,
    scratch: &mut VerifyScratch,
) -> Result<VerifiedResult, VerifyError> {
    let mut cost = ClientCost::default();
    let x = query.weights();
    if x.len() != template.dims() {
        return Err(VerifyError::BadRecord(
            "query weight vector does not match the template arity".into(),
        ));
    }

    // ---- Step 1a: rebuild the FMH part from the result + boundaries -------
    let leaves = &mut scratch.leaves;
    leaves.clear();
    leaves.reserve(records.len() + 2);
    leaves.push(vo.left_boundary.leaf_digest());
    cost.hash_ops += 1;
    for r in records {
        leaves.push(r.digest());
        cost.hash_ops += 1;
    }
    leaves.push(vo.right_boundary.leaf_digest());
    cost.hash_ops += 1;

    let first_leaf = vo.first_leaf as usize;
    let outcome = verify_range(first_leaf, leaves, &vo.range_proof)
        .map_err(|e| VerifyError::MalformedProof(e.to_string()))?;
    cost.hash_ops += outcome.hash_ops;

    let leaf_count = vo.range_proof.leaf_count as usize;
    let last_leaf = first_leaf + leaves.len() - 1;
    let subdomain_hash = subdomain_node_hash(&outcome.root, vo.range_proof.leaf_count);
    cost.hash_ops += 1;

    // Sentinel / position consistency: the min sentinel sits at leaf 0 and
    // the max sentinel at leaf `leaf_count - 1`, and nowhere else.
    match &vo.left_boundary {
        BoundaryEntry::MinSentinel if first_leaf != 0 => {
            return Err(VerifyError::MalformedVo(
                "min sentinel presented away from the start of the list".into(),
            ))
        }
        BoundaryEntry::Record(_) if first_leaf == 0 => {
            return Err(VerifyError::MalformedVo(
                "left boundary must be the min sentinel at the start of the list".into(),
            ))
        }
        BoundaryEntry::MaxSentinel => {
            return Err(VerifyError::MalformedVo(
                "left boundary cannot be the max sentinel".into(),
            ))
        }
        _ => {}
    }
    match &vo.right_boundary {
        BoundaryEntry::MaxSentinel if last_leaf != leaf_count - 1 => {
            return Err(VerifyError::MalformedVo(
                "max sentinel presented away from the end of the list".into(),
            ))
        }
        BoundaryEntry::Record(_) if last_leaf == leaf_count - 1 => {
            return Err(VerifyError::MalformedVo(
                "right boundary must be the max sentinel at the end of the list".into(),
            ))
        }
        BoundaryEntry::MinSentinel => {
            return Err(VerifyError::MalformedVo(
                "right boundary cannot be the min sentinel".into(),
            ))
        }
        _ => {}
    }

    // ---- Step 1b: subdomain verification + signature -----------------------
    let signed_digest = match &vo.intersection_verification {
        IntersectionVerification::OneSignature { path } => {
            let mut current = subdomain_hash;
            for step in path.iter().rev() {
                if step.coeffs.len() != x.len() {
                    return Err(VerifyError::MalformedVo(
                        "intersection predicate has wrong dimensionality".into(),
                    ));
                }
                let g: f64 = step
                    .coeffs
                    .iter()
                    .zip(x.iter())
                    .map(|(c, v)| c * v)
                    .sum::<f64>()
                    + step.constant;
                let expected_above = g >= 0.0;
                if expected_above != step.went_above {
                    return Err(VerifyError::WrongSubdomain);
                }
                let pred = step.predicate_digest();
                cost.hash_ops += 1;
                current = if step.went_above {
                    intersection_node_hash(&pred, &current, &step.sibling_hash)
                } else {
                    intersection_node_hash(&pred, &step.sibling_hash, &current)
                };
                cost.hash_ops += 1;
            }
            current
        }
        IntersectionVerification::MultiSignature { halfspaces } => {
            for hs in halfspaces {
                if hs.dims() != x.len() {
                    return Err(VerifyError::MalformedVo(
                        "inequality has wrong dimensionality".into(),
                    ));
                }
                if !hs.satisfied(x) {
                    return Err(VerifyError::WrongSubdomain);
                }
            }
            let ineq = inequality_set_digest(halfspaces);
            cost.hash_ops += 1 + halfspaces.len();
            let digest = multi_signature_digest(&ineq, &subdomain_hash);
            cost.hash_ops += 1;
            digest
        }
    };

    cost.signature_verifications += 1;
    let bound_digest = epoch_binding_digest(&signed_digest, epoch);
    cost.hash_ops += 1;
    if !verifier.verify_digest(&bound_digest, &vo.signature) {
        return Err(VerifyError::SignatureMismatch);
    }

    // ---- Step 2: query semantics -------------------------------------------
    // Scores of the returned records and the boundary entries under X.
    let score_of = |record: &Record| -> Result<f64, VerifyError> {
        if record.arity() != template.dims() {
            return Err(VerifyError::BadRecord(format!(
                "record {} has arity {}, template needs {}",
                record.id,
                record.arity(),
                template.dims()
            )));
        }
        Ok(template.to_function(FuncId(0), record).eval(x))
    };

    let scores: Vec<f64> = records
        .iter()
        .map(&score_of)
        .collect::<Result<Vec<_>, _>>()?;

    // The authenticated list is sorted ascending, so the result must be too.
    for w in scores.windows(2) {
        if w[0] > w[1] + SCORE_EPS {
            return Err(VerifyError::InconsistentResultOrder);
        }
    }

    let left_score = match &vo.left_boundary {
        BoundaryEntry::Record(r) => Some(score_of(r)?),
        _ => None,
    };
    let right_score = match &vo.right_boundary {
        BoundaryEntry::Record(r) => Some(score_of(r)?),
        _ => None,
    };

    // Number of real records in the subdomain's list (excludes sentinels).
    let n_real = leaf_count.saturating_sub(2);

    match query {
        Query::Range { lower, upper, .. } => {
            // Soundness: every returned record satisfies the range.
            for (i, s) in scores.iter().enumerate() {
                if *s < lower - SCORE_EPS || *s > upper + SCORE_EPS {
                    return Err(VerifyError::UnsoundRecord { position: i });
                }
            }
            // Completeness: the entries flanking the window fall outside it.
            if let Some(ls) = left_score {
                if ls >= *lower - SCORE_EPS {
                    return Err(VerifyError::Incomplete(
                        "left boundary record also satisfies the range".into(),
                    ));
                }
            }
            if let Some(rs) = right_score {
                if rs <= *upper + SCORE_EPS {
                    return Err(VerifyError::Incomplete(
                        "right boundary record also satisfies the range".into(),
                    ));
                }
            }
        }
        Query::TopK { k, .. } => {
            let expected = (*k).min(n_real);
            if records.len() != expected {
                return Err(VerifyError::WrongResultLength {
                    expected,
                    got: records.len(),
                });
            }
            if expected > 0 {
                // The window must end at the top of the authenticated list.
                if !matches!(vo.right_boundary, BoundaryEntry::MaxSentinel) {
                    return Err(VerifyError::Incomplete(
                        "top-k result does not end at the maximum of the list".into(),
                    ));
                }
                // The record just below the window must not beat anything in it.
                if let Some(ls) = left_score {
                    let min_included = scores.iter().cloned().fold(f64::INFINITY, f64::min);
                    if ls > min_included + SCORE_EPS {
                        return Err(VerifyError::Incomplete(
                            "a record outside the top-k result scores higher than a returned one"
                                .into(),
                        ));
                    }
                }
            }
        }
        Query::Knn { k, target, .. } => {
            let expected = (*k).min(n_real);
            if records.len() != expected {
                return Err(VerifyError::WrongResultLength {
                    expected,
                    got: records.len(),
                });
            }
            if expected > 0 {
                let worst_included = scores
                    .iter()
                    .map(|s| (s - target).abs())
                    .fold(0.0f64, f64::max);
                if let Some(ls) = left_score {
                    if (ls - target).abs() + SCORE_EPS < worst_included {
                        return Err(VerifyError::Incomplete(
                            "an excluded record is closer to the target than a returned one".into(),
                        ));
                    }
                }
                if let Some(rs) = right_score {
                    if (rs - target).abs() + SCORE_EPS < worst_included {
                        return Err(VerifyError::Incomplete(
                            "an excluded record is closer to the target than a returned one".into(),
                        ));
                    }
                }
            }
        }
    }

    Ok(VerifiedResult { cost, scores })
}
