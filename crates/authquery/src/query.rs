//! Analytic query types and result-window selection.

/// The three representative analytic query types of the paper (Sec. 2.1).
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// `q = (X, k)`: the k records with the highest scores under `X`.
    TopK {
        /// Query weight vector `X`.
        weights: Vec<f64>,
        /// Number of results requested.
        k: usize,
    },
    /// `q = (X, l, u)`: records whose score lies within `[l, u]`.
    Range {
        /// Query weight vector `X`.
        weights: Vec<f64>,
        /// Lower bound (inclusive).
        lower: f64,
        /// Upper bound (inclusive).
        upper: f64,
    },
    /// `q = (X, k, y)`: the k records whose scores are nearest to `y`.
    Knn {
        /// Query weight vector `X`.
        weights: Vec<f64>,
        /// Number of neighbours requested.
        k: usize,
        /// Target score value `y`.
        target: f64,
    },
}

/// Coarse classification of a [`Query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Top-k query.
    TopK,
    /// Range query.
    Range,
    /// K-nearest-neighbour query.
    Knn,
}

impl Query {
    /// Builds a top-k query.
    pub fn top_k(weights: Vec<f64>, k: usize) -> Self {
        Query::TopK { weights, k }
    }

    /// Builds a range query. Panics if `lower > upper`.
    pub fn range(weights: Vec<f64>, lower: f64, upper: f64) -> Self {
        assert!(lower <= upper, "range query with lower > upper");
        Query::Range {
            weights,
            lower,
            upper,
        }
    }

    /// Builds a KNN query.
    pub fn knn(weights: Vec<f64>, k: usize, target: f64) -> Self {
        Query::Knn { weights, k, target }
    }

    /// The query's weight vector `X`.
    pub fn weights(&self) -> &[f64] {
        match self {
            Query::TopK { weights, .. }
            | Query::Range { weights, .. }
            | Query::Knn { weights, .. } => weights,
        }
    }

    /// The query kind.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::TopK { .. } => QueryKind::TopK,
            Query::Range { .. } => QueryKind::Range,
            Query::Knn { .. } => QueryKind::Knn,
        }
    }

    /// Selects the contiguous window of an *ascending* score list that
    /// answers this query.
    ///
    /// `scores[i]` is the score of the i-th record in the subdomain's sorted
    /// order. Returns `Some((start, end))` — inclusive 0-based positions —
    /// or `None` when the result is empty. This selection logic is shared by
    /// the server (to answer) and the client (to re-check what the answer
    /// *should* have been).
    pub fn select_window(&self, scores: &[f64]) -> Option<(usize, usize)> {
        let n = scores.len();
        if n == 0 {
            return None;
        }
        match self {
            Query::TopK { k, .. } => {
                let k = (*k).min(n);
                if k == 0 {
                    None
                } else {
                    Some((n - k, n - 1))
                }
            }
            Query::Range { lower, upper, .. } => {
                // First index with score >= lower.
                let start = scores.partition_point(|s| *s < *lower);
                // First index with score > upper.
                let end = scores.partition_point(|s| *s <= *upper);
                if start >= end {
                    None
                } else {
                    Some((start, end - 1))
                }
            }
            Query::Knn { k, target, .. } => {
                let k = (*k).min(n);
                if k == 0 {
                    return None;
                }
                // Insertion point of the target, then grow the window towards
                // whichever side is closer until it holds k records.
                let mut left = scores.partition_point(|s| *s < *target);
                let mut right = left; // window is [left, right)
                while right - left < k {
                    let take_left = if left == 0 {
                        false
                    } else if right == n {
                        true
                    } else {
                        // Compare distances of the next candidates.
                        (target - scores[left - 1]).abs() <= (scores[right] - target).abs()
                    };
                    if take_left {
                        left -= 1;
                    } else {
                        right += 1;
                    }
                }
                Some((left, right - 1))
            }
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Query::TopK { weights, k } => write!(f, "top-{k} @ {weights:?}"),
            Query::Range {
                weights,
                lower,
                upper,
            } => {
                write!(f, "range [{lower}, {upper}] @ {weights:?}")
            }
            Query::Knn { weights, k, target } => write!(f, "{k}-NN of {target} @ {weights:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f64; 6] = [0.1, 0.2, 0.4, 0.5, 0.7, 0.9];

    #[test]
    fn top_k_selects_suffix() {
        let q = Query::top_k(vec![0.5], 2);
        assert_eq!(q.select_window(&SCORES), Some((4, 5)));
        let q = Query::top_k(vec![0.5], 100);
        assert_eq!(q.select_window(&SCORES), Some((0, 5)));
        let q = Query::top_k(vec![0.5], 0);
        assert_eq!(q.select_window(&SCORES), None);
    }

    #[test]
    fn range_selects_inclusive_window() {
        let q = Query::range(vec![0.5], 0.2, 0.5);
        assert_eq!(q.select_window(&SCORES), Some((1, 3)));
        let q = Query::range(vec![0.5], 0.15, 0.15);
        assert_eq!(q.select_window(&SCORES), None);
        let q = Query::range(vec![0.5], -1.0, 2.0);
        assert_eq!(q.select_window(&SCORES), Some((0, 5)));
        // Boundaries exactly on scores are included.
        let q = Query::range(vec![0.5], 0.4, 0.7);
        assert_eq!(q.select_window(&SCORES), Some((2, 4)));
    }

    #[test]
    fn knn_grows_around_target() {
        let q = Query::knn(vec![0.5], 3, 0.45);
        // Closest to 0.45: 0.4 (0.05), 0.5 (0.05), 0.2 (0.25) or 0.7 (0.25)
        let (s, e) = q.select_window(&SCORES).unwrap();
        assert_eq!(e - s + 1, 3);
        assert!(s <= 2 && e >= 3, "window must contain 0.4 and 0.5");
        // k larger than n clips to the whole list.
        let q = Query::knn(vec![0.5], 10, 0.45);
        assert_eq!(q.select_window(&SCORES), Some((0, 5)));
    }

    #[test]
    fn knn_at_extremes() {
        let q = Query::knn(vec![0.5], 2, -5.0);
        assert_eq!(q.select_window(&SCORES), Some((0, 1)));
        let q = Query::knn(vec![0.5], 2, 5.0);
        assert_eq!(q.select_window(&SCORES), Some((4, 5)));
    }

    #[test]
    fn empty_score_list() {
        for q in [
            Query::top_k(vec![0.5], 3),
            Query::range(vec![0.5], 0.0, 1.0),
            Query::knn(vec![0.5], 3, 0.5),
        ] {
            assert_eq!(q.select_window(&[]), None);
        }
    }

    #[test]
    fn accessors() {
        let q = Query::range(vec![0.1, 0.2], 0.0, 1.0);
        assert_eq!(q.weights(), &[0.1, 0.2]);
        assert_eq!(q.kind(), QueryKind::Range);
        assert!(q.to_string().contains("range"));
    }

    #[test]
    #[should_panic(expected = "lower > upper")]
    fn invalid_range_panics() {
        let _ = Query::range(vec![0.5], 1.0, 0.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_selected_window_answers_query(
            mut scores in proptest::collection::vec(0.0f64..100.0, 1..40),
            kind in 0usize..3,
            k in 1usize..10,
            a in 0.0f64..100.0,
            b in 0.0f64..100.0,
        ) {
            scores.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let q = match kind {
                0 => Query::top_k(vec![0.0], k),
                1 => Query::range(vec![0.0], lo, hi),
                _ => Query::knn(vec![0.0], k, a),
            };
            match q.select_window(&scores) {
                None => {
                    match &q {
                        Query::Range { lower, upper, .. } => {
                            proptest::prop_assert!(scores.iter().all(|s| s < lower || s > upper));
                        }
                        _ => proptest::prop_assert!(false, "top-k/knn with k>=1 over a non-empty list cannot be empty"),
                    }
                }
                Some((s, e)) => {
                    proptest::prop_assert!(s <= e && e < scores.len());
                    match &q {
                        Query::TopK { k, .. } => {
                            proptest::prop_assert_eq!(e, scores.len() - 1);
                            proptest::prop_assert_eq!(e - s + 1, (*k).min(scores.len()));
                        }
                        Query::Range { lower, upper, .. } => {
                            for score in scores.iter().take(e + 1).skip(s) {
                                proptest::prop_assert!(score >= lower && score <= upper);
                            }
                            if s > 0 { proptest::prop_assert!(scores[s - 1] < *lower); }
                            if e + 1 < scores.len() { proptest::prop_assert!(scores[e + 1] > *upper); }
                        }
                        Query::Knn { k, target, .. } => {
                            proptest::prop_assert_eq!(e - s + 1, (*k).min(scores.len()));
                            // No excluded record is strictly closer than an included one.
                            let worst_included = (s..=e)
                                .map(|i| (scores[i] - target).abs())
                                .fold(0.0f64, f64::max);
                            if s > 0 {
                                proptest::prop_assert!((scores[s - 1] - target).abs() >= worst_included - 1e-9);
                            }
                            if e + 1 < scores.len() {
                                proptest::prop_assert!((scores[e + 1] - target).abs() >= worst_included - 1e-9);
                            }
                        }
                    }
                }
            }
        }
    }
}
