//! Verification objects.

use vaq_crypto::sha256::{sha256, sha256_multi, sha256_pair, Digest, Sha256};
use vaq_crypto::Signature;
use vaq_funcdb::{HalfSpace, Record};
use vaq_mht::RangeProof;

/// Digest of the `f_min` sentinel leaf prepended to every sorted list.
pub fn min_sentinel_digest() -> Digest {
    sha256(b"vaq-authquery:fmh:min-sentinel")
}

/// Digest of the `f_max` sentinel leaf appended to every sorted list.
pub fn max_sentinel_digest() -> Digest {
    sha256(b"vaq-authquery:fmh:max-sentinel")
}

/// One of the two boundary entries flanking the query result in the sorted
/// function list.
#[derive(Clone, Debug, PartialEq)]
pub enum BoundaryEntry {
    /// The `f_min` token: the result starts at the very beginning of the
    /// list.
    MinSentinel,
    /// The `f_max` token: the result ends at the very end of the list.
    MaxSentinel,
    /// A real database record immediately adjacent to the result window; the
    /// client checks it does **not** satisfy the query condition, which is
    /// what proves completeness.
    Record(Record),
}

impl BoundaryEntry {
    /// The Merkle leaf digest of this boundary entry.
    pub fn leaf_digest(&self) -> Digest {
        match self {
            BoundaryEntry::MinSentinel => min_sentinel_digest(),
            BoundaryEntry::MaxSentinel => max_sentinel_digest(),
            BoundaryEntry::Record(r) => r.digest(),
        }
    }

    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            BoundaryEntry::MinSentinel | BoundaryEntry::MaxSentinel => 1,
            BoundaryEntry::Record(r) => 1 + r.canonical_bytes().len(),
        }
    }
}

/// One step of the IMH-tree path included in a one-signature verification
/// object, in root-to-leaf order.
#[derive(Clone, Debug, PartialEq)]
pub struct IvStep {
    /// The ids of the two functions whose intersection this node records.
    pub pair: (u32, u32),
    /// Coefficients of the difference function `f_i − f_j`.
    pub coeffs: Vec<f64>,
    /// Constant of the difference function.
    pub constant: f64,
    /// Hash of the child that the search did **not** descend into.
    pub sibling_hash: Digest,
    /// True if the search descended into the *above* child.
    pub went_above: bool,
}

impl IvStep {
    /// Digest binding this intersection node's predicate, mixed into the
    /// node hash so a forged path cannot redirect the search.
    pub fn predicate_digest(&self) -> Digest {
        predicate_digest(self.pair, &self.coeffs, self.constant)
    }

    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        8 + self.coeffs.len() * 8 + 8 + 32 + 1
    }
}

/// The subdomain-verification part of a verification object.
#[derive(Clone, Debug, PartialEq)]
pub enum IntersectionVerification {
    /// One-signature scheme: the IMH path from the root down to the answered
    /// subdomain, with sibling hashes.
    OneSignature {
        /// Path steps in root-to-leaf order.
        path: Vec<IvStep>,
    },
    /// Multi-signature scheme: the set of inequality half-spaces that
    /// determines the answered subdomain (the signature covers their digest
    /// together with the subdomain's FMH root).
    MultiSignature {
        /// The subdomain's defining half-spaces, in path order.
        halfspaces: Vec<HalfSpace>,
    },
}

impl IntersectionVerification {
    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            IntersectionVerification::OneSignature { path } => {
                path.iter().map(IvStep::byte_size).sum()
            }
            IntersectionVerification::MultiSignature { halfspaces } => {
                halfspaces.iter().map(|h| h.canonical_bytes().len()).sum()
            }
        }
    }
}

/// The verification object `VO(q)` accompanying a query result.
#[derive(Clone, Debug, PartialEq)]
pub struct VerificationObject {
    /// The FMH-tree leaf index of the **left boundary** entry; the result
    /// records occupy the following consecutive leaves, and the right
    /// boundary the leaf after those.
    pub first_leaf: u32,
    /// Entry immediately to the left of the result window.
    pub left_boundary: BoundaryEntry,
    /// Entry immediately to the right of the result window.
    pub right_boundary: BoundaryEntry,
    /// Merkle range proof covering `[left boundary, …, right boundary]`.
    pub range_proof: RangeProof,
    /// Subdomain verification data (IMH path or inequality set).
    pub intersection_verification: IntersectionVerification,
    /// The owner's signature: over the IMH root (one-signature) or over
    /// `H(inequalities ‖ subdomain hash)` (multi-signature).
    pub signature: Signature,
}

impl VerificationObject {
    /// Approximate size of the verification object in bytes — the
    /// communication-cost metric of Fig. 8.
    pub fn byte_size(&self) -> usize {
        4 + self.left_boundary.byte_size()
            + self.right_boundary.byte_size()
            + self.range_proof.byte_size()
            + self.intersection_verification.byte_size()
            + self.signature.byte_len()
    }

    /// Number of signatures carried (always 1 for the IFMH schemes; the
    /// signature-mesh baseline carries `|q| + 1`).
    pub fn signature_count(&self) -> usize {
        1
    }
}

/// Digest of an intersection node's predicate (the pair of function ids and
/// the difference function). Shared by the owner (tree construction) and the
/// client (path recomputation).
pub fn predicate_digest(pair: (u32, u32), coeffs: &[f64], constant: f64) -> Digest {
    let mut h = Sha256::new();
    h.update(&pair.0.to_be_bytes());
    h.update(&pair.1.to_be_bytes());
    for c in coeffs {
        h.update(&c.to_be_bytes());
    }
    h.update(&constant.to_be_bytes());
    h.finalize()
}

/// Computes the hash stored at a subdomain node: the FMH root bound to the
/// number of leaves of that FMH-tree.
///
/// Binding the leaf count prevents an adversary from presenting a truncated
/// list with a re-balanced tree shape as if it were the full list.
pub fn subdomain_node_hash(fmh_root: &Digest, leaf_count: u32) -> Digest {
    sha256_multi(&[fmh_root, &leaf_count.to_be_bytes()])
}

/// Computes the hash stored at an intersection node:
/// `H(predicate ‖ above ‖ below)`.
pub fn intersection_node_hash(predicate: &Digest, above: &Digest, below: &Digest) -> Digest {
    sha256_multi(&[predicate, above, below])
}

/// Computes the digest signed by the multi-signature scheme for one
/// subdomain: `H(inequality-digest ‖ subdomain-node-hash)`.
pub fn multi_signature_digest(inequality_digest: &Digest, subdomain_hash: &Digest) -> Digest {
    sha256_pair(inequality_digest, subdomain_hash)
}

/// Binds a to-be-signed digest to a publication epoch:
/// `H("VAQ-EPOCH" ‖ epoch ‖ digest)`.
///
/// The owner signs the epoch-bound digest instead of the raw structure
/// digest, so a signature produced for epoch `e` can never authenticate the
/// same (or any other) structure at a different epoch. This is what lets a
/// client that learned the current epoch from the attested publication
/// reject a **replayed** response that was honestly signed under a
/// superseded publication — the replay verifies only at its own epoch.
pub fn epoch_binding_digest(digest: &Digest, epoch: u64) -> Digest {
    sha256_multi(&[b"VAQ-EPOCH", &epoch.to_be_bytes(), digest])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_digests_are_distinct_and_stable() {
        assert_ne!(min_sentinel_digest(), max_sentinel_digest());
        assert_eq!(min_sentinel_digest(), min_sentinel_digest());
    }

    #[test]
    fn epoch_binding_separates_epochs_and_digests() {
        let d1 = sha256(b"structure-1");
        let d2 = sha256(b"structure-2");
        // Deterministic per (digest, epoch)...
        assert_eq!(epoch_binding_digest(&d1, 3), epoch_binding_digest(&d1, 3));
        // ...but distinct across epochs (including the boundary values) and
        // across digests, and never equal to the raw digest.
        assert_ne!(epoch_binding_digest(&d1, 0), epoch_binding_digest(&d1, 1));
        assert_ne!(
            epoch_binding_digest(&d1, u64::MAX),
            epoch_binding_digest(&d1, u64::MAX - 1)
        );
        assert_ne!(epoch_binding_digest(&d1, 7), epoch_binding_digest(&d2, 7));
        assert_ne!(epoch_binding_digest(&d1, 0), d1);
    }

    #[test]
    fn boundary_leaf_digests() {
        let r = Record::new(9, vec![0.5, 0.5]);
        assert_eq!(
            BoundaryEntry::MinSentinel.leaf_digest(),
            min_sentinel_digest()
        );
        assert_eq!(
            BoundaryEntry::MaxSentinel.leaf_digest(),
            max_sentinel_digest()
        );
        assert_eq!(BoundaryEntry::Record(r.clone()).leaf_digest(), r.digest());
        assert!(BoundaryEntry::Record(r).byte_size() > BoundaryEntry::MinSentinel.byte_size());
    }

    #[test]
    fn iv_step_predicate_digest_binds_all_fields() {
        let base = IvStep {
            pair: (1, 2),
            coeffs: vec![0.5, -0.5],
            constant: 0.1,
            sibling_hash: [0u8; 32],
            went_above: true,
        };
        let mut other = base.clone();
        other.constant = 0.2;
        assert_ne!(base.predicate_digest(), other.predicate_digest());
        let mut other = base.clone();
        other.pair = (2, 1);
        assert_ne!(base.predicate_digest(), other.predicate_digest());
        // The sibling hash and direction are *not* part of the predicate —
        // they are bound through the hash chain instead.
        let mut other = base.clone();
        other.went_above = false;
        assert_eq!(base.predicate_digest(), other.predicate_digest());
    }

    #[test]
    fn node_hash_helpers_are_order_sensitive() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        let p = sha256(b"p");
        assert_ne!(
            intersection_node_hash(&p, &a, &b),
            intersection_node_hash(&p, &b, &a)
        );
        assert_ne!(subdomain_node_hash(&a, 3), subdomain_node_hash(&a, 4));
        assert_ne!(
            multi_signature_digest(&a, &b),
            multi_signature_digest(&b, &a)
        );
    }
}
