//! The IFMH-tree: the paper's authenticated index.
//!
//! Construction follows Sec. 3.1 of the paper:
//!
//! 1. build an I-tree over the dataset's functions (one subdomain per region
//!    with a fixed sort order),
//! 2. build an FMH-tree (Merkle tree with `f_min` / `f_max` sentinels) over
//!    every subdomain's sorted record list,
//! 3. propagate hash values bottom-up through the I-tree — a subdomain
//!    node's hash is (a binding of) its FMH root, an intersection node's
//!    hash combines its children's hashes — yielding the IMH-tree,
//! 4. sign: either only the IMH root (*one-signature*) or every subdomain's
//!    FMH root together with its defining inequalities (*multi-signature*).

use crate::cost::OwnerStats;
use crate::proof_cache::ProofCache;
use crate::signing::SigningMode;
use crate::vo::{
    epoch_binding_digest, intersection_node_hash, max_sentinel_digest, min_sentinel_digest,
    multi_signature_digest, predicate_digest, subdomain_node_hash,
};
use std::collections::HashMap;
use vaq_crypto::sha256::Digest;
use vaq_crypto::{Signature, Signer};
use vaq_funcdb::{Dataset, LpSplitOracle, SplitOracle};
use vaq_itree::{BuildStats, ITree, ITreeBuilder, Node, NodeId};
use vaq_mht::MerkleTree;

/// The Intersection and Function Merkle Hash tree.
///
/// `Clone` exists for replica deployments: signing is deterministic, so a
/// primary and its standbys can share one build and hand out clones instead
/// of paying the LP-oracle pass and the per-subdomain signatures again.
#[derive(Clone, Debug)]
pub struct IfmhTree {
    pub(crate) itree: ITree,
    /// FMH-tree per subdomain node, keyed by the I-tree node id.
    pub(crate) fmh: HashMap<u32, MerkleTree>,
    /// IMH hash per I-tree node (indexed by node id).
    pub(crate) node_hashes: Vec<Digest>,
    pub(crate) mode: SigningMode,
    /// Root signature (one-signature mode).
    pub(crate) root_signature: Option<Signature>,
    /// Per-subdomain signatures (multi-signature mode), keyed by node id.
    pub(crate) leaf_signatures: HashMap<u32, Signature>,
    /// The publication epoch every signature in this tree is bound to.
    epoch: u64,
    /// Per-subdomain interior proofs, materialized once at build time and
    /// served read-only for the whole epoch.
    proof_cache: ProofCache,
    stats: OwnerStats,
    /// I-tree construction statistics.
    pub build_stats: BuildStats,
}

impl IfmhTree {
    /// Builds the IFMH-tree with the exact (LP-based) split oracle at the
    /// initial publication epoch 0.
    pub fn build(dataset: &Dataset, mode: SigningMode, signer: &dyn Signer) -> Self {
        Self::build_at_epoch(dataset, mode, signer, 0)
    }

    /// Builds the IFMH-tree for a republication: every signature is bound to
    /// `epoch` (see [`epoch_binding_digest`]), so a client expecting epoch
    /// `e` rejects responses honestly signed under any other epoch.
    pub fn build_at_epoch(
        dataset: &Dataset,
        mode: SigningMode,
        signer: &dyn Signer,
        epoch: u64,
    ) -> Self {
        Self::build_with_oracle_at_epoch(dataset, mode, signer, LpSplitOracle::new(), epoch)
    }

    /// Builds the IFMH-tree with a caller-supplied split oracle (used by the
    /// feasibility ablation) at epoch 0.
    pub fn build_with_oracle<O: SplitOracle>(
        dataset: &Dataset,
        mode: SigningMode,
        signer: &dyn Signer,
        oracle: O,
    ) -> Self {
        Self::build_with_oracle_at_epoch(dataset, mode, signer, oracle, 0)
    }

    /// Builds the IFMH-tree with a caller-supplied split oracle, binding
    /// every signature to `epoch`.
    pub fn build_with_oracle_at_epoch<O: SplitOracle>(
        dataset: &Dataset,
        mode: SigningMode,
        signer: &dyn Signer,
        oracle: O,
        epoch: u64,
    ) -> Self {
        // Step 1: the I-tree.
        let (itree, build_stats) =
            ITreeBuilder::new(oracle).build_with_stats(&dataset.functions, dataset.domain.clone());

        let mut hash_ops = 0usize;

        // Pre-compute every record's digest once; each is one hash operation.
        let record_digests: Vec<Digest> = dataset.records.iter().map(|r| r.digest()).collect();
        hash_ops += record_digests.len();
        // The two sentinel digests.
        let min_d = min_sentinel_digest();
        let max_d = max_sentinel_digest();
        hash_ops += 2;

        // Step 2: an FMH-tree per subdomain.
        let mut fmh: HashMap<u32, MerkleTree> = HashMap::new();
        let mut fmh_nodes = 0usize;
        let mut fmh_bytes = 0usize;
        for &leaf in itree.leaf_ids() {
            let sorted = itree.sorted_list(leaf);
            let mut leaves = Vec::with_capacity(sorted.len() + 2);
            leaves.push(min_d);
            for id in sorted {
                leaves.push(record_digests[id.index()]);
            }
            leaves.push(max_d);
            let tree = MerkleTree::build(leaves);
            hash_ops += tree.build_hash_ops;
            fmh_nodes += tree.node_count();
            fmh_bytes += tree.byte_size();
            fmh.insert(leaf.0, tree);
        }

        // Step 3: propagate hashes through the I-tree (iterative post-order).
        let mut node_hashes = vec![[0u8; 32]; itree.node_count()];
        let mut computed = vec![false; itree.node_count()];
        let mut stack: Vec<NodeId> = vec![itree.root()];
        while let Some(&top) = stack.last() {
            match itree.node(top) {
                Node::Subdomain { .. } => {
                    let tree = &fmh[&top.0];
                    node_hashes[top.index()] =
                        subdomain_node_hash(&tree.root(), tree.leaf_count() as u32);
                    hash_ops += 1;
                    computed[top.index()] = true;
                    stack.pop();
                }
                Node::Intersection {
                    pair,
                    coeffs,
                    constant,
                    above,
                    below,
                } => {
                    let a_done = computed[above.index()];
                    let b_done = computed[below.index()];
                    if a_done && b_done {
                        let pred = predicate_digest((pair.0 .0, pair.1 .0), coeffs, *constant);
                        node_hashes[top.index()] = intersection_node_hash(
                            &pred,
                            &node_hashes[above.index()],
                            &node_hashes[below.index()],
                        );
                        hash_ops += 2;
                        computed[top.index()] = true;
                        stack.pop();
                    } else {
                        if !a_done {
                            stack.push(*above);
                        }
                        if !b_done {
                            stack.push(*below);
                        }
                    }
                }
            }
        }

        // Step 4: sign.
        let mut root_signature = None;
        let mut leaf_signatures = HashMap::new();
        let signatures;
        // Every signed digest is bound to the publication epoch first, so a
        // signature from this publication cannot authenticate any other.
        match mode {
            SigningMode::OneSignature => {
                let bound = epoch_binding_digest(&node_hashes[itree.root().index()], epoch);
                hash_ops += 1;
                root_signature = Some(signer.sign_digest(&bound));
                signatures = 1;
            }
            SigningMode::MultiSignature => {
                for &leaf in itree.leaf_ids() {
                    let constraints = itree.constraints(leaf);
                    let ineq = constraints.inequality_digest();
                    hash_ops += 1 + constraints.halfspaces.len();
                    let digest = multi_signature_digest(&ineq, &node_hashes[leaf.index()]);
                    let bound = epoch_binding_digest(&digest, epoch);
                    hash_ops += 2;
                    leaf_signatures.insert(leaf.0, signer.sign_digest(&bound));
                }
                signatures = leaf_signatures.len();
            }
        }

        let sig_size = signer.verifier().signature_size();
        let stats = OwnerStats {
            records: dataset.len(),
            subdomains: itree.subdomain_count(),
            imh_nodes: itree.node_count(),
            fmh_nodes,
            hash_ops,
            signatures,
            structure_bytes: itree.byte_size()
                + fmh_bytes
                + node_hashes.len() * 32
                + signatures * sig_size,
        };

        // Step 5: materialize the interior-proof cache. Everything it holds
        // is immutable for this epoch, so `vo_build` can assemble proofs by
        // cloning instead of re-walking the I-tree per query.
        let proof_cache = ProofCache::build(
            &itree,
            &node_hashes,
            mode,
            &root_signature,
            &leaf_signatures,
            epoch,
        );

        IfmhTree {
            itree,
            fmh,
            node_hashes,
            mode,
            root_signature,
            leaf_signatures,
            epoch,
            proof_cache,
            stats,
            build_stats,
        }
    }

    /// The signing mode this tree was built with.
    pub fn mode(&self) -> SigningMode {
        self.mode
    }

    /// The publication epoch every signature in this tree is bound to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Owner-side construction statistics (Fig. 5).
    pub fn stats(&self) -> &OwnerStats {
        &self.stats
    }

    /// The underlying I-tree.
    pub fn itree(&self) -> &ITree {
        &self.itree
    }

    /// The IMH root hash.
    pub fn root_hash(&self) -> Digest {
        self.node_hashes[self.itree.root().index()]
    }

    /// The hash stored at an I-tree node.
    pub fn node_hash(&self, id: NodeId) -> Digest {
        self.node_hashes[id.index()]
    }

    /// The FMH-tree attached to a subdomain node, if `id` is a leaf.
    pub fn fmh_tree(&self, id: NodeId) -> Option<&MerkleTree> {
        self.fmh.get(&id.0)
    }

    /// The epoch-scoped interior-proof cache materialized at build time.
    pub fn proof_cache(&self) -> &ProofCache {
        &self.proof_cache
    }

    /// Number of subdomains.
    pub fn subdomain_count(&self) -> usize {
        self.itree.subdomain_count()
    }

    /// Number of signatures the structure carries.
    pub fn signature_count(&self) -> usize {
        self.stats.signatures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_crypto::SignatureScheme;
    use vaq_funcdb::{Domain, FunctionTemplate, Record};

    fn dataset(n: usize) -> Dataset {
        // Functions with distinct constants/slopes via two attributes.
        let template = FunctionTemplate::new(vec!["a", "b"]);
        let records = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Record::new(i as u64, vec![t, 1.0 - t])
            })
            .collect();
        Dataset::new(records, template, Domain::unit(2))
    }

    #[test]
    fn one_signature_build_has_single_signature() {
        let ds = dataset(5);
        let scheme = SignatureScheme::test_rsa(1);
        let tree = IfmhTree::build(&ds, SigningMode::OneSignature, &scheme);
        assert_eq!(tree.signature_count(), 1);
        assert!(tree.root_signature.is_some());
        assert!(tree.leaf_signatures.is_empty());
        assert_eq!(tree.mode(), SigningMode::OneSignature);
        assert_eq!(tree.epoch(), 0);
        // The signature verifies against the epoch-bound root hash.
        let verifier = scheme.verifier();
        let bound = crate::vo::epoch_binding_digest(&tree.root_hash(), 0);
        assert!(verifier.verify_digest(&bound, tree.root_signature.as_ref().unwrap()));
        // ...and against nothing else: neither the raw root hash nor another
        // epoch's binding.
        assert!(!verifier.verify_digest(&tree.root_hash(), tree.root_signature.as_ref().unwrap()));
        let other = crate::vo::epoch_binding_digest(&tree.root_hash(), 1);
        assert!(!verifier.verify_digest(&other, tree.root_signature.as_ref().unwrap()));
    }

    #[test]
    fn republished_trees_bind_their_epoch() {
        let ds = dataset(5);
        let scheme = SignatureScheme::test_rsa(12);
        let e1 = IfmhTree::build_at_epoch(&ds, SigningMode::OneSignature, &scheme, 1);
        let e2 = IfmhTree::build_at_epoch(&ds, SigningMode::OneSignature, &scheme, 2);
        assert_eq!(e1.epoch(), 1);
        assert_eq!(e2.epoch(), 2);
        // Same dataset, same key: the structure hashes agree but the
        // signatures differ because each binds its own epoch.
        assert_eq!(e1.root_hash(), e2.root_hash());
        assert_ne!(e1.root_signature, e2.root_signature);
    }

    #[test]
    fn multi_signature_build_signs_every_subdomain() {
        let ds = dataset(5);
        let scheme = SignatureScheme::test_rsa(2);
        let tree = IfmhTree::build(&ds, SigningMode::MultiSignature, &scheme);
        assert_eq!(tree.signature_count(), tree.subdomain_count());
        assert_eq!(tree.leaf_signatures.len(), tree.subdomain_count());
        assert!(tree.root_signature.is_none());
    }

    #[test]
    fn every_leaf_has_an_fmh_tree_with_sentinels() {
        let ds = dataset(6);
        let scheme = SignatureScheme::test_rsa(3);
        let tree = IfmhTree::build(&ds, SigningMode::OneSignature, &scheme);
        for &leaf in tree.itree().leaf_ids() {
            let fmh = tree.fmh_tree(leaf).expect("leaf must have an FMH tree");
            assert_eq!(fmh.leaf_count(), ds.len() + 2);
            assert_eq!(fmh.leaf(0), min_sentinel_digest());
            assert_eq!(fmh.leaf(ds.len() + 1), max_sentinel_digest());
        }
    }

    #[test]
    fn node_hashes_are_consistent_bottom_up() {
        let ds = dataset(4);
        let scheme = SignatureScheme::test_rsa(4);
        let tree = IfmhTree::build(&ds, SigningMode::OneSignature, &scheme);
        for (id, node) in tree.itree().iter() {
            match node {
                Node::Subdomain { .. } => {
                    let fmh = tree.fmh_tree(id).unwrap();
                    assert_eq!(
                        tree.node_hash(id),
                        subdomain_node_hash(&fmh.root(), fmh.leaf_count() as u32)
                    );
                }
                Node::Intersection {
                    pair,
                    coeffs,
                    constant,
                    above,
                    below,
                } => {
                    let pred = predicate_digest((pair.0 .0, pair.1 .0), coeffs, *constant);
                    assert_eq!(
                        tree.node_hash(id),
                        intersection_node_hash(
                            &pred,
                            &tree.node_hash(*above),
                            &tree.node_hash(*below)
                        )
                    );
                }
            }
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let ds = dataset(6);
        let scheme = SignatureScheme::test_rsa(5);
        let tree = IfmhTree::build(&ds, SigningMode::MultiSignature, &scheme);
        let stats = tree.stats();
        assert_eq!(stats.records, 6);
        assert_eq!(stats.subdomains, tree.subdomain_count());
        assert!(stats.imh_nodes >= stats.subdomains);
        assert!(stats.fmh_nodes > 0);
        assert!(stats.hash_ops > 0);
        assert!(stats.structure_bytes > 0);
        assert_eq!(stats.signatures, tree.subdomain_count());
    }

    #[test]
    fn different_datasets_produce_different_roots() {
        let scheme = SignatureScheme::test_rsa(6);
        let t1 = IfmhTree::build(&dataset(5), SigningMode::OneSignature, &scheme);
        let mut ds2 = dataset(5);
        ds2.records[2].attrs[0] += 0.01;
        let ds2 = Dataset::new(ds2.records, ds2.template, ds2.domain);
        let t2 = IfmhTree::build(&ds2, SigningMode::OneSignature, &scheme);
        assert_ne!(t1.root_hash(), t2.root_hash());
    }
}
