//! Offline stand-in for the subset of the `serde` API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! tiny value-tree serializer: [`Serialize`] converts a value into a
//! [`Value`], the companion `serde_json` stand-in renders it as JSON, and the
//! `serde_derive` stand-in provides `#[derive(Serialize)]` for named-field
//! structs. There is no deserialization and no `Serializer` trait — the only
//! consumer in this workspace is JSON report output.

pub use serde_derive::Serialize;

/// A serialized value tree (the stand-in's entire data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialized value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-4i32).to_value(), Value::Int(-4));
        assert_eq!(2.5f64.to_value(), Value::Float(2.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn vectors_become_arrays() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
