//! Dependency-free `#[derive(Serialize)]` backing the workspace's offline
//! `serde` stand-in.
//!
//! Supports exactly what the workspace uses: non-generic structs with named
//! fields (doc comments and other attributes on fields are skipped). Anything
//! else produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(generated) => generated,
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut index = 0usize;

    // Skip outer attributes (`#[...]`) and visibility before `struct`.
    loop {
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => index += 2,
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                index += 1;
                // `pub(crate)` and friends carry a parenthesised scope.
                if let Some(TokenTree::Group(g)) = tokens.get(index) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        index += 1;
                    }
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "struct" => {
                index += 1;
                break;
            }
            Some(other) => {
                return Err(format!(
                    "derive(Serialize) stand-in only supports structs, found `{other}`"
                ))
            }
            None => return Err("derive(Serialize) stand-in: unexpected end of input".into()),
        }
    }

    let name = match tokens.get(index) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };
    index += 1;

    let body = match tokens.get(index) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive(Serialize) stand-in does not support generic struct `{name}`"
            ))
        }
        other => {
            return Err(format!(
                "derive(Serialize) stand-in requires named fields on `{name}`, found {other:?}"
            ))
        }
    };

    let fields = parse_field_names(body)?;
    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from({field:?}), ::serde::Serialize::to_value(&self.{field})),"
        ));
    }

    let generated = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    generated
        .parse()
        .map_err(|e| format!("derive(Serialize) stand-in generated invalid code: {e:?}"))
}

/// Extracts field names from the brace body of a named-field struct.
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut index = 0usize;
    while index < tokens.len() {
        // Skip field attributes (doc comments arrive as `#[doc = "..."]`).
        while let Some(TokenTree::Punct(p)) = tokens.get(index) {
            if p.as_char() == '#' {
                index += 2;
            } else {
                break;
            }
        }
        if index >= tokens.len() {
            break;
        }
        if let Some(TokenTree::Ident(ident)) = tokens.get(index) {
            if ident.to_string() == "pub" {
                index += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(index) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        index += 1;
                    }
                }
            }
        }
        let name = match tokens.get(index) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        index += 1;
        match tokens.get(index) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => index += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        while let Some(token) = tokens.get(index) {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth <= 0 => {
                    index += 1;
                    break;
                }
                _ => {}
            }
            index += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}
