//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of the surface it needs:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is a SplitMix64 — statistically solid
//! for simulation and Miller–Rabin witnesses, deliberately **not** a CSPRNG
//! (the seed crypto code only ever uses seeded test keys).

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole range (the `Standard`
/// distribution of the real crate, flattened into a trait).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value of type `T` can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sample below `bound` (`bound > 0`) without noticeable modulo bias.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + below_u64(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (end - start) as u64 + 1;
                start + below_u64(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(below_u64(rng, width) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let width = (end as i64).wrapping_sub(start as i64) as u64 + 1;
                (start as i64).wrapping_add(below_u64(rng, width) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                (start + (end - start) * u).clamp(start, end)
            }
        }
    )*};
}
// f64 only: a second float impl would defeat float-literal fallback at call
// sites like `gen_range(0.0..1.0)`, and the workspace never samples f32.
impl_sample_range_float!(f64);

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let b = rng.gen_range(10u64..);
            assert!(b >= 10);
        }
    }

    #[test]
    fn full_u8_inclusive_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen_range(0u8..=255) as usize] = true;
        }
        assert!(seen[0] && seen[255]);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
