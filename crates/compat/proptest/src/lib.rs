//! Offline stand-in for the subset of the `proptest` API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! deterministic property-testing harness with the same user-facing surface:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! range/tuple/`collection::vec`/`bool::ANY` strategies, and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (every binding is `Debug`-formatted) so it can be replayed by hand.
//! * **Deterministic.** The RNG seed is derived from the test name, so a
//!   failure always reproduces; there is no `PROPTEST_CASES` environment
//!   handling.

use std::fmt;
use std::ops::{Range, RangeFrom, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "inputs rejected by prop_assume!"),
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_from_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_from_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy: `vec(element, 2..10)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG for one property from its name.
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Mixes per-case entropy so every case starts from a fresh substream.
pub fn case_rng(base: &mut StdRng) -> StdRng {
    StdRng::seed_from_u64(base.next_u64())
}

/// Defines property tests.
///
/// Supported forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut base_rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case_index: u32 = 0;
            while accepted < config.cases {
                let mut rng = $crate::case_rng(&mut base_rng);
                let mut inputs = ::std::string::String::new();
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(
                        let value = $crate::Strategy::generate(&($strategy), &mut rng);
                        inputs.push_str(stringify!($pat));
                        inputs.push_str(" = ");
                        inputs.push_str(&::std::format!("{:?}; ", value));
                        let $pat = value;
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} falsified at case {} with inputs [{}]: {}",
                            stringify!($name),
                            case_index,
                            inputs,
                            message,
                        );
                    }
                }
                case_index += 1;
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {:?} != {:?}: {}",
                left, right, ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: both sides are {:?}: {}",
                left, ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Path alias so `prop::collection::vec` and `prop::bool::ANY` resolve.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..17,
            f in -1.0f64..1.0,
            v in prop::collection::vec((0usize..5, prop::bool::ANY), 2..6),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for (n, _) in &v {
                prop_assert!(*n < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn assume_rejections_do_not_fail(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 99);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute here: the generated fn is called by hand.
            proptest! {
                fn always_fails(x in 0u64..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
