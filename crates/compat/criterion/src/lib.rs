//! Offline stand-in for the subset of the `criterion` API this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal wall-clock benchmark harness with the same user-facing surface:
//! [`Criterion::benchmark_group`], `bench_with_input` / `bench_function`,
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It reports mean / min / max per benchmark to
//! stdout; there is no statistical analysis, warm-up tuning or HTML output.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmarked value away.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times the closure `samples` times (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        routine(&mut bencher, input);
        self.report(&id.name, &bencher.durations);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        routine(&mut bencher);
        let name = name.into();
        self.report(&name, &bencher.durations);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}

    fn report(&self, bench_name: &str, durations: &[Duration]) {
        if durations.is_empty() {
            println!("{}/{bench_name}: no samples recorded", self.name);
            return;
        }
        let total: Duration = durations.iter().sum();
        let mean = total / durations.len() as u32;
        let min = durations.iter().min().copied().unwrap_or_default();
        let max = durations.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{bench_name}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.name,
            durations.len(),
        );
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_every_sample() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(5);
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &1, |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // One warm-up call plus five timed samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_function_works_without_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo2");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_function("plain", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }
}
