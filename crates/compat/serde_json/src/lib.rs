//! Offline stand-in for the subset of the `serde_json` API this workspace
//! uses: pretty-printed serialization of the stand-in `serde::Value` tree.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the stand-in never actually fails, but the signature
/// matches the real crate so call sites keep their error handling).
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, level, |out, item, lvl| {
            write_value(out, item, indent, lvl)
        }),
        Value::Object(entries) => write_seq_delim(
            out,
            entries.iter(),
            indent,
            level,
            '{',
            '}',
            |out, (k, v), lvl| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, lvl);
            },
        ),
    }
}

fn write_seq<'a, T: 'a>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = &'a T>,
    indent: Option<usize>,
    level: usize,
    write_item: impl Fn(&mut String, &T, usize),
) {
    write_seq_delim(out, items, indent, level, '[', ']', write_item)
}

fn write_seq_delim<'a, T: 'a>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = &'a T>,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    write_item: impl Fn(&mut String, &T, usize),
) {
    out.push(open);
    let count = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < count {
            out.push(',');
        }
    }
    if count > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

/// Formats a float the way serde_json does: integral values keep a `.0`.
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no Inf/NaN; the real crate errors, reports never hit this.
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        a: usize,
        b: f64,
    }

    impl Serialize for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("a".to_string(), self.a.to_value()),
                ("b".to_string(), self.b.to_value()),
            ])
        }
    }

    #[test]
    fn pretty_prints_like_serde_json() {
        let rows = vec![Row { a: 1, b: 2.5 }, Row { a: 2, b: 3.5 }];
        let s = to_string_pretty(rows.as_slice()).unwrap();
        assert!(s.contains("\"a\": 1"), "{s}");
        assert!(s.contains("\"b\": 3.5"), "{s}");
        assert!(s.starts_with("[\n"), "{s}");
    }

    #[test]
    fn compact_output_has_no_spaces() {
        let row = Row { a: 7, b: 1.0 };
        assert_eq!(to_string(&row).unwrap(), "{\"a\":7,\"b\":1.0}");
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string(&"a\"b\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Vec::<u8>::new()).unwrap(), "[]");
    }
}
