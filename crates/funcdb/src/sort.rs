//! Sorting functions by their score at a point.
//!
//! Inside one subdomain the relative order of the functions is invariant
//! (theorem of function sortability, paper Sec. 2.3.1), so sorting at any
//! witness point of the subdomain yields *the* sorted function list for that
//! subdomain.

use crate::function::{FuncId, LinearFunction};

/// Sorts function ids ascending by `f(x)`, breaking exact ties by id so the
/// order is total and deterministic (ties can only occur on intersection
/// boundaries or for duplicate affine maps).
pub fn sort_functions_at(functions: &[LinearFunction], x: &[f64]) -> Vec<FuncId> {
    let mut scored: Vec<(f64, FuncId)> = functions.iter().map(|f| (f.eval(x), f.id)).collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.into_iter().map(|(_, id)| id).collect()
}

/// Returns the rank (0-based, ascending) of every function at `x`:
/// `ranks[i]` is the position of `functions[i]` in the sorted order.
pub fn ranks_at(functions: &[LinearFunction], x: &[f64]) -> Vec<usize> {
    let order = sort_functions_at(functions, x);
    let mut ranks = vec![0usize; functions.len()];
    for (pos, id) in order.iter().enumerate() {
        ranks[id.index()] = pos;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lf(id: u32, coeffs: Vec<f64>, c: f64) -> LinearFunction {
        LinearFunction::new(FuncId(id), coeffs, c)
    }

    #[test]
    fn sorts_ascending_by_value() {
        let fs = vec![
            lf(0, vec![1.0], 0.0),  // x
            lf(1, vec![-1.0], 1.0), // 1 - x
            lf(2, vec![0.0], 0.4),  // 0.4
        ];
        // At x = 0.1: values are 0.1, 0.9, 0.4 -> order 0, 2, 1
        assert_eq!(
            sort_functions_at(&fs, &[0.1]),
            vec![FuncId(0), FuncId(2), FuncId(1)]
        );
        // At x = 0.9: values are 0.9, 0.1, 0.4 -> order 1, 2, 0
        assert_eq!(
            sort_functions_at(&fs, &[0.9]),
            vec![FuncId(1), FuncId(2), FuncId(0)]
        );
    }

    #[test]
    fn ties_break_by_id() {
        let fs = vec![lf(1, vec![0.0], 0.5), lf(0, vec![0.0], 0.5)];
        // Note the slice order is id 1, id 0; ties must sort by id.
        assert_eq!(sort_functions_at(&fs, &[0.3]), vec![FuncId(0), FuncId(1)]);
    }

    #[test]
    fn ranks_are_inverse_of_order() {
        let fs = vec![
            lf(0, vec![1.0, 0.0], 0.0),
            lf(1, vec![0.0, 1.0], 0.0),
            lf(2, vec![1.0, 1.0], 0.0),
        ];
        let x = [0.2, 0.7];
        let order = sort_functions_at(&fs, &x);
        let ranks = ranks_at(&fs, &x);
        for (pos, id) in order.iter().enumerate() {
            assert_eq!(ranks[id.index()], pos);
        }
    }

    #[test]
    fn empty_input() {
        assert!(sort_functions_at(&[], &[0.5]).is_empty());
        assert!(ranks_at(&[], &[0.5]).is_empty());
    }
}
