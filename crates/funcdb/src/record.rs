//! Database records.

use vaq_crypto::sha256::{sha256, Digest};

/// A single record of the outsourced table.
///
/// Records carry a unique identifier and a vector of numeric attribute
/// values (e.g. GPA, number of awards, number of papers in the paper's
/// running example). The utility-function template maps each record to a
/// linear function of the query weights.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Unique identifier assigned by the data owner.
    pub id: u64,
    /// Numeric attribute values, in template order.
    pub attrs: Vec<f64>,
    /// Optional human-readable label (applicant name, patient id, ...).
    pub label: Option<String>,
}

impl Record {
    /// Creates a record without a label.
    pub fn new(id: u64, attrs: Vec<f64>) -> Self {
        Record {
            id,
            attrs,
            label: None,
        }
    }

    /// Creates a record with a label.
    pub fn with_label(id: u64, attrs: Vec<f64>, label: impl Into<String>) -> Self {
        Record {
            id,
            attrs,
            label: Some(label.into()),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Canonical byte encoding of the record: `id` big-endian followed by
    /// every attribute as IEEE-754 big-endian bytes, followed by the label
    /// bytes (if any).
    ///
    /// Both the data owner (when building the authenticated structure) and
    /// the client (when re-hashing returned records during verification)
    /// must produce exactly the same bytes, so this encoding is the contract
    /// between them.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.attrs.len() * 8 + 16);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&(self.attrs.len() as u32).to_be_bytes());
        for a in &self.attrs {
            out.extend_from_slice(&a.to_be_bytes());
        }
        if let Some(label) = &self.label {
            out.extend_from_slice(label.as_bytes());
        }
        out
    }

    /// `H(r)` — the record digest used as a Merkle leaf.
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bytes_are_deterministic() {
        let r = Record::new(7, vec![3.9, 2.0, 5.0]);
        assert_eq!(r.canonical_bytes(), r.canonical_bytes());
        assert_eq!(r.digest(), r.digest());
    }

    #[test]
    fn digest_changes_with_any_field() {
        let base = Record::new(7, vec![3.9, 2.0, 5.0]);
        let diff_id = Record::new(8, vec![3.9, 2.0, 5.0]);
        let diff_attr = Record::new(7, vec![3.9, 2.0, 5.1]);
        let diff_label = Record::with_label(7, vec![3.9, 2.0, 5.0], "alice");
        assert_ne!(base.digest(), diff_id.digest());
        assert_ne!(base.digest(), diff_attr.digest());
        assert_ne!(base.digest(), diff_label.digest());
    }

    #[test]
    fn arity_reports_attribute_count() {
        assert_eq!(Record::new(1, vec![1.0, 2.0]).arity(), 2);
        assert_eq!(Record::new(1, vec![]).arity(), 0);
    }

    #[test]
    fn attribute_order_matters() {
        let a = Record::new(1, vec![1.0, 2.0]);
        let b = Record::new(1, vec![2.0, 1.0]);
        assert_ne!(a.digest(), b.digest());
    }
}
