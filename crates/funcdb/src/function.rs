//! Linear functions derived from records.

use vaq_crypto::sha256::{sha256, Digest};

/// Index of a function in the dataset's function list.
///
/// The special values [`FuncId::MIN_SENTINEL`] and [`FuncId::MAX_SENTINEL`]
/// denote the `f_min` / `f_max` boundary tokens that the paper appends to
/// every sorted function list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The `f_min` sentinel, smaller than every real function everywhere.
    pub const MIN_SENTINEL: FuncId = FuncId(u32::MAX - 1);
    /// The `f_max` sentinel, larger than every real function everywhere.
    pub const MAX_SENTINEL: FuncId = FuncId(u32::MAX);

    /// True if this id denotes one of the two sentinels.
    pub fn is_sentinel(&self) -> bool {
        *self == Self::MIN_SENTINEL || *self == Self::MAX_SENTINEL
    }

    /// Index into the dataset's function vector. Panics on sentinels.
    pub fn index(&self) -> usize {
        assert!(!self.is_sentinel(), "sentinel FuncId has no index");
        self.0 as usize
    }
}

/// A linear scoring function `f(X) = coeffs · X + constant`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearFunction {
    /// Which function this is (position in the dataset).
    pub id: FuncId,
    /// One coefficient per weight variable.
    pub coeffs: Vec<f64>,
    /// Additive constant (zero for template-derived functions, but kept so
    /// synthetic test functions can use arbitrary affine forms).
    pub constant: f64,
}

impl LinearFunction {
    /// Creates a linear function.
    pub fn new(id: FuncId, coeffs: Vec<f64>, constant: f64) -> Self {
        LinearFunction {
            id,
            coeffs,
            constant,
        }
    }

    /// Number of variables.
    pub fn dims(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the function at the weight vector `x`.
    ///
    /// Panics if the dimensionality does not match.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "dimension mismatch in eval");
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.constant
    }

    /// Returns the difference function `self − other` as coefficient/constant
    /// vectors (`g(X) = self(X) − other(X)`); the zero set of `g` is the
    /// intersection hyperplane `I_{i,j}` of the paper.
    pub fn difference(&self, other: &LinearFunction) -> (Vec<f64>, f64) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "dimension mismatch in difference"
        );
        let coeffs = self
            .coeffs
            .iter()
            .zip(other.coeffs.iter())
            .map(|(a, b)| a - b)
            .collect();
        (coeffs, self.constant - other.constant)
    }

    /// True if the two functions are identical as affine maps (parallel and
    /// equal); such pairs never intersect transversally.
    pub fn same_map(&self, other: &LinearFunction) -> bool {
        let (coeffs, c) = self.difference(other);
        coeffs.iter().all(|v| v.abs() < crate::EPS) && c.abs() < crate::EPS
    }

    /// Canonical byte encoding (id, coefficients, constant) used when the
    /// authenticated structures hash a *function* rather than the underlying
    /// record.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.coeffs.len() * 8 + 8);
        out.extend_from_slice(&self.id.0.to_be_bytes());
        for c in &self.coeffs {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out.extend_from_slice(&self.constant.to_be_bytes());
        out
    }

    /// SHA-256 digest of [`canonical_bytes`](Self::canonical_bytes).
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u32, coeffs: Vec<f64>, c: f64) -> LinearFunction {
        LinearFunction::new(FuncId(id), coeffs, c)
    }

    #[test]
    fn eval_univariate() {
        let g = f(0, vec![2.0], 1.0);
        assert_eq!(g.eval(&[0.0]), 1.0);
        assert_eq!(g.eval(&[3.0]), 7.0);
    }

    #[test]
    fn eval_multivariate() {
        let g = f(0, vec![1.0, -2.0, 0.5], 4.0);
        assert!((g.eval(&[2.0, 1.0, 4.0]) - (2.0 - 2.0 + 2.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn eval_dimension_mismatch_panics() {
        let g = f(0, vec![1.0, 2.0], 0.0);
        let _ = g.eval(&[1.0]);
    }

    #[test]
    fn difference_is_affine_subtraction() {
        let a = f(0, vec![3.0, 1.0], 2.0);
        let b = f(1, vec![1.0, 4.0], -1.0);
        let (coeffs, c) = a.difference(&b);
        assert_eq!(coeffs, vec![2.0, -3.0]);
        assert_eq!(c, 3.0);
        // g(x) must equal a(x) - b(x) at arbitrary points.
        for x in [[0.5, 0.25], [10.0, -3.0]] {
            let g = coeffs[0] * x[0] + coeffs[1] * x[1] + c;
            assert!((g - (a.eval(&x) - b.eval(&x))).abs() < 1e-12);
        }
    }

    #[test]
    fn same_map_detects_duplicates() {
        let a = f(0, vec![1.0, 2.0], 3.0);
        let b = f(1, vec![1.0, 2.0], 3.0);
        let c = f(2, vec![1.0, 2.0], 3.5);
        assert!(a.same_map(&b));
        assert!(!a.same_map(&c));
    }

    #[test]
    fn sentinels_behave() {
        assert!(FuncId::MIN_SENTINEL.is_sentinel());
        assert!(FuncId::MAX_SENTINEL.is_sentinel());
        assert!(!FuncId(0).is_sentinel());
        assert_eq!(FuncId(5).index(), 5);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_index_panics() {
        let _ = FuncId::MAX_SENTINEL.index();
    }

    #[test]
    fn digest_distinguishes_functions() {
        let a = f(0, vec![1.0, 2.0], 0.0);
        let b = f(1, vec![1.0, 2.0], 0.0);
        let c = f(0, vec![1.0, 2.000001], 0.0);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }
}
