//! Function-database substrate.
//!
//! In the paper's system model a data owner outsources a relational table
//! together with a *utility-function template*. The server interprets every
//! record `r_i` as a linear function `f_i(X) = a_i · X (+ b_i)` of the
//! query-supplied weight vector `X`; analytic queries (top-k, range, KNN)
//! rank the database by these function values.
//!
//! This crate provides everything below the authenticated index:
//!
//! * [`record`] / [`template`] / [`dataset`] — records, the linear utility
//!   template and the conversion from a table to a set of functions.
//! * [`function`] — [`function::LinearFunction`]: evaluation, differences,
//!   canonical byte encoding used for hashing.
//! * [`domain`] — axis-aligned boxes that bound the weight space.
//! * [`halfspace`] / [`subdomain`] — linear inequalities `f_i − f_j ⋛ 0` and
//!   the polytopes (subdomains) they carve out of the domain.
//! * [`simplex`] — a dense two-phase simplex LP solver.
//! * [`feasibility`] — oracles that decide whether a hyperplane splits a
//!   region (exact, via LP, or approximate, via sampling), the primitive the
//!   I-tree construction is built on.
//! * [`sort`] — sorting functions by their value at a point, i.e. the
//!   "sorted function list" attached to every subdomain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod domain;
pub mod feasibility;
pub mod function;
pub mod halfspace;
pub mod record;
pub mod simplex;
pub mod sort;
pub mod subdomain;
pub mod template;

pub use dataset::Dataset;
pub use domain::Domain;
pub use feasibility::{LpSplitOracle, SamplingSplitOracle, SplitDecision, SplitOracle};
pub use function::{FuncId, LinearFunction};
pub use halfspace::HalfSpace;
pub use record::Record;
pub use simplex::{LpOutcome, LpProblem};
pub use sort::sort_functions_at;
pub use subdomain::{inequality_set_digest, SubdomainConstraints};
pub use template::FunctionTemplate;

/// Numerical tolerance used throughout geometric predicates.
pub const EPS: f64 = 1e-9;
