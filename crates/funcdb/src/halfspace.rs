//! Linear half-space constraints.

use crate::function::LinearFunction;
use vaq_crypto::sha256::{sha256, Digest};

/// A closed or open half-space `g(X) = coeffs · X + constant ⋛ 0`.
///
/// In the paper a subdomain is "determined by a set of inequality
/// functions" of exactly this shape: for every intersection `I_{i,j}` on the
/// path from the I-tree root to a subdomain node, the subdomain lies either
/// in `f_i − f_j ≥ 0` (above) or `f_i − f_j < 0` (below).
#[derive(Clone, Debug, PartialEq)]
pub struct HalfSpace {
    /// Coefficients of the difference function `g`.
    pub coeffs: Vec<f64>,
    /// Constant term of `g`.
    pub constant: f64,
    /// `true` for the closed side `g ≥ 0` ("above"), `false` for the open
    /// side `g < 0` ("below").
    pub non_negative: bool,
    /// The pair of function ids whose intersection induced this constraint
    /// (kept for canonical encoding and debugging); `None` for synthetic
    /// constraints.
    pub pair: Option<(u32, u32)>,
}

impl HalfSpace {
    /// Builds the "above" half-space `f_i − f_j ≥ 0`.
    pub fn above(fi: &LinearFunction, fj: &LinearFunction) -> Self {
        let (coeffs, constant) = fi.difference(fj);
        HalfSpace {
            coeffs,
            constant,
            non_negative: true,
            pair: Some((fi.id.0, fj.id.0)),
        }
    }

    /// Builds the "below" half-space `f_i − f_j < 0`.
    pub fn below(fi: &LinearFunction, fj: &LinearFunction) -> Self {
        let (coeffs, constant) = fi.difference(fj);
        HalfSpace {
            coeffs,
            constant,
            non_negative: false,
            pair: Some((fi.id.0, fj.id.0)),
        }
    }

    /// Builds a raw half-space from explicit coefficients.
    pub fn raw(coeffs: Vec<f64>, constant: f64, non_negative: bool) -> Self {
        HalfSpace {
            coeffs,
            constant,
            non_negative,
            pair: None,
        }
    }

    /// Number of variables.
    pub fn dims(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the underlying linear form `g(x)`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coeffs.len(), "dimension mismatch");
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.constant
    }

    /// True if the point satisfies the constraint (with a small tolerance on
    /// the boundary so the closed/open distinction does not produce gaps
    /// under floating-point noise).
    pub fn satisfied(&self, x: &[f64]) -> bool {
        let g = self.eval(x);
        if self.non_negative {
            g >= -crate::EPS
        } else {
            g < crate::EPS
        }
    }

    /// The complementary half-space (the other side of the same hyperplane).
    pub fn complement(&self) -> Self {
        HalfSpace {
            coeffs: self.coeffs.clone(),
            constant: self.constant,
            non_negative: !self.non_negative,
            pair: self.pair,
        }
    }

    /// Canonical byte encoding for hashing (multi-signature scheme hashes the
    /// set of inequality functions that determine a subdomain).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.coeffs.len() * 8 + 32);
        match self.pair {
            Some((i, j)) => {
                out.push(1);
                out.extend_from_slice(&i.to_be_bytes());
                out.extend_from_slice(&j.to_be_bytes());
            }
            None => out.push(0),
        }
        for c in &self.coeffs {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out.extend_from_slice(&self.constant.to_be_bytes());
        out.push(self.non_negative as u8);
        out
    }

    /// SHA-256 digest of the canonical bytes.
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FuncId;

    fn lf(id: u32, coeffs: Vec<f64>, c: f64) -> LinearFunction {
        LinearFunction::new(FuncId(id), coeffs, c)
    }

    #[test]
    fn above_below_partition_space() {
        let f1 = lf(0, vec![1.0, 0.0], 0.0);
        let f2 = lf(1, vec![0.0, 1.0], 0.0);
        let above = HalfSpace::above(&f1, &f2); // x - y >= 0
        let below = HalfSpace::below(&f1, &f2); // x - y < 0
        assert!(above.satisfied(&[2.0, 1.0]));
        assert!(!above.satisfied(&[1.0, 2.0]));
        assert!(below.satisfied(&[1.0, 2.0]));
        assert!(!below.satisfied(&[2.0, 1.0]));
    }

    #[test]
    fn eval_matches_difference() {
        let f1 = lf(0, vec![2.0, 3.0], 1.0);
        let f2 = lf(1, vec![1.0, -1.0], 0.5);
        let hs = HalfSpace::above(&f1, &f2);
        for x in [[0.1, 0.9], [0.7, 0.2]] {
            assert!((hs.eval(&x) - (f1.eval(&x) - f2.eval(&x))).abs() < 1e-12);
        }
    }

    #[test]
    fn complement_flips_side() {
        let hs = HalfSpace::raw(vec![1.0], -0.5, true); // x >= 0.5
        let comp = hs.complement();
        assert!(hs.satisfied(&[0.7]));
        assert!(!comp.satisfied(&[0.7]));
        assert!(comp.satisfied(&[0.2]));
        assert_eq!(comp.complement(), hs);
    }

    #[test]
    fn boundary_tolerance() {
        let hs = HalfSpace::raw(vec![1.0], -0.5, true);
        // Exactly on the hyperplane counts as satisfied for the closed side.
        assert!(hs.satisfied(&[0.5]));
    }

    #[test]
    fn canonical_bytes_distinguish_sides_and_pairs() {
        let f1 = lf(3, vec![1.0], 0.0);
        let f2 = lf(7, vec![2.0], 0.0);
        let a = HalfSpace::above(&f1, &f2);
        let b = HalfSpace::below(&f1, &f2);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_ne!(a.digest(), b.digest());
        let raw = HalfSpace::raw(vec![-1.0], 0.0, true);
        assert_ne!(a.canonical_bytes(), raw.canonical_bytes());
    }
}
