//! Subdomains: intersections of half-spaces within the domain box.

use crate::domain::Domain;
use crate::halfspace::HalfSpace;
use crate::simplex::{LpOutcome, LpProblem};
use vaq_crypto::sha256::{sha256, Digest, Sha256};

/// The constraint system describing one subdomain.
///
/// A subdomain is the part of the owner-declared [`Domain`] that satisfies a
/// conjunction of half-space constraints (`f_i − f_j ≥ 0` / `< 0` collected
/// along an I-tree path). In the paper the set of inequality functions that
/// determines a subdomain is hashed and signed in the multi-signature
/// scheme; [`Self::digest`] computes exactly that hash.
#[derive(Clone, Debug, PartialEq)]
pub struct SubdomainConstraints {
    /// The bounding box (the root domain declared by the owner).
    pub domain: Domain,
    /// Half-space constraints, in the order they were added on the path from
    /// the root.
    pub halfspaces: Vec<HalfSpace>,
}

impl SubdomainConstraints {
    /// The unconstrained subdomain — the whole domain.
    pub fn whole(domain: Domain) -> Self {
        SubdomainConstraints {
            domain,
            halfspaces: Vec::new(),
        }
    }

    /// Number of weight dimensions.
    pub fn dims(&self) -> usize {
        self.domain.dims()
    }

    /// Returns a copy extended by one more half-space.
    pub fn with(&self, hs: HalfSpace) -> Self {
        let mut halfspaces = Vec::with_capacity(self.halfspaces.len() + 1);
        halfspaces.extend_from_slice(&self.halfspaces);
        halfspaces.push(hs);
        SubdomainConstraints {
            domain: self.domain.clone(),
            halfspaces,
        }
    }

    /// True if the point lies in the subdomain (box and every half-space).
    pub fn contains(&self, x: &[f64]) -> bool {
        self.domain.contains(x) && self.halfspaces.iter().all(|h| h.satisfied(x))
    }

    /// Builds the LP `maximize objective·x` over this subdomain.
    ///
    /// Open (`< 0`) constraints are relaxed to their closure — correct for
    /// feasibility/extent questions since the regions are full-dimensional.
    pub fn lp(&self, objective: Vec<f64>) -> LpProblem {
        let mut lp = LpProblem::new(
            objective,
            self.domain.lower.clone(),
            self.domain.upper.clone(),
        );
        for hs in &self.halfspaces {
            if hs.non_negative {
                // coeffs·x + constant >= 0  <=>  coeffs·x >= -constant
                lp.add_ge(hs.coeffs.clone(), -hs.constant);
            } else {
                // coeffs·x + constant < 0   ~>  coeffs·x <= -constant
                lp.add_le(hs.coeffs.clone(), -hs.constant);
            }
        }
        lp
    }

    /// True if the subdomain is non-empty (has at least one feasible point,
    /// up to closure of the open constraints).
    pub fn is_feasible(&self) -> bool {
        if self.dims() == 1 {
            return self.interval_1d().is_some();
        }
        let zero_obj = vec![0.0; self.dims()];
        self.lp(zero_obj).solve().is_feasible()
    }

    /// Fast path for univariate subdomains: the feasible set is an interval.
    ///
    /// Returns `Some((lo, hi))` with `lo <= hi`, or `None` if empty. Open
    /// constraints are treated by closure, mirroring [`Self::lp`].
    fn interval_1d(&self) -> Option<(f64, f64)> {
        debug_assert_eq!(self.dims(), 1);
        let mut lo = self.domain.lower[0];
        let mut hi = self.domain.upper[0];
        for hs in &self.halfspaces {
            let a = hs.coeffs[0];
            let b = hs.constant;
            // Constraint: a*x + b >= 0 (non_negative) or a*x + b <= 0 (closure of < 0).
            if a.abs() < crate::EPS {
                let ok = if hs.non_negative {
                    b >= -crate::EPS
                } else {
                    b <= crate::EPS
                };
                if !ok {
                    return None;
                }
                continue;
            }
            let boundary = -b / a;
            let lower_side = (a > 0.0) == hs.non_negative;
            if lower_side {
                lo = lo.max(boundary);
            } else {
                hi = hi.min(boundary);
            }
        }
        if lo <= hi + crate::EPS {
            Some((lo, hi.max(lo)))
        } else {
            None
        }
    }

    /// Finds a witness point inside the subdomain, preferring a point away
    /// from the constraint boundaries (an approximate Chebyshev-style
    /// interior point obtained by averaging the maximizer and minimizer of
    /// each coordinate).
    pub fn witness_point(&self) -> Option<Vec<f64>> {
        let d = self.dims();
        if d == 1 {
            return self.interval_1d().map(|(lo, hi)| vec![(lo + hi) / 2.0]);
        }
        let mut acc = vec![0.0; d];
        let mut count = 0.0;
        for i in 0..d {
            for sign in [1.0, -1.0] {
                let mut obj = vec![0.0; d];
                obj[i] = sign;
                match self.lp(obj).solve() {
                    LpOutcome::Optimal { point, .. } => {
                        for (a, p) in acc.iter_mut().zip(point.iter()) {
                            *a += p;
                        }
                        count += 1.0;
                    }
                    LpOutcome::Unbounded => return None,
                    LpOutcome::Infeasible => return None,
                }
            }
        }
        if count == 0.0 {
            return None;
        }
        Some(acc.into_iter().map(|v| v / count).collect())
    }

    /// The range `[min, max]` of the linear form `coeffs·x + constant` over
    /// the subdomain, or `None` if the subdomain is empty.
    pub fn linear_range(&self, coeffs: &[f64], constant: f64) -> Option<(f64, f64)> {
        if self.dims() == 1 {
            let (lo, hi) = self.interval_1d()?;
            let a = coeffs[0];
            let (v1, v2) = (a * lo + constant, a * hi + constant);
            return Some((v1.min(v2), v1.max(v2)));
        }
        let max = match self.lp(coeffs.to_vec()).solve() {
            LpOutcome::Optimal { value, .. } => value + constant,
            _ => return None,
        };
        let neg: Vec<f64> = coeffs.iter().map(|v| -v).collect();
        let min = match self.lp(neg).solve() {
            LpOutcome::Optimal { value, .. } => -value + constant,
            _ => return None,
        };
        Some((min, max))
    }

    /// Canonical byte encoding of the constraint system (domain + ordered
    /// half-spaces). This is `B_i` in the paper's signature-mesh digests and
    /// the "set of inequality functions" hashed by the multi-signature
    /// scheme.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = self.domain.canonical_bytes();
        out.extend_from_slice(&(self.halfspaces.len() as u32).to_be_bytes());
        for hs in &self.halfspaces {
            out.extend_from_slice(&hs.canonical_bytes());
        }
        out
    }

    /// SHA-256 digest of the canonical bytes.
    pub fn digest(&self) -> Digest {
        sha256(&self.canonical_bytes())
    }

    /// Digest of the half-space set only (order-sensitive), mixed into an
    /// accumulator hash. Used by the multi-signature scheme, which signs
    /// `H(H(inequalities) | subdomain_root_hash)`.
    pub fn inequality_digest(&self) -> Digest {
        inequality_set_digest(&self.halfspaces)
    }
}

/// Digest of an ordered set of half-spaces.
///
/// Exposed as a free function because both the data owner (who holds the
/// full [`SubdomainConstraints`]) and the verifying client (who only
/// receives the half-spaces inside a verification object) must compute the
/// exact same value.
pub fn inequality_set_digest(halfspaces: &[HalfSpace]) -> Digest {
    let mut h = Sha256::new();
    h.update(&(halfspaces.len() as u32).to_be_bytes());
    for hs in halfspaces {
        h.update(&hs.digest());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FuncId, LinearFunction};

    fn lf(id: u32, coeffs: Vec<f64>, c: f64) -> LinearFunction {
        LinearFunction::new(FuncId(id), coeffs, c)
    }

    #[test]
    fn whole_domain_is_feasible_and_contains_center() {
        let s = SubdomainConstraints::whole(Domain::unit(2));
        assert!(s.is_feasible());
        assert!(s.contains(&[0.5, 0.5]));
        let w = s.witness_point().unwrap();
        assert!(s.contains(&w));
    }

    #[test]
    fn halfspace_restricts_membership() {
        let f1 = lf(0, vec![1.0, 0.0], 0.0);
        let f2 = lf(1, vec![0.0, 1.0], 0.0);
        // x >= y within the unit square.
        let s = SubdomainConstraints::whole(Domain::unit(2)).with(HalfSpace::above(&f1, &f2));
        assert!(s.contains(&[0.8, 0.2]));
        assert!(!s.contains(&[0.2, 0.8]));
        assert!(s.is_feasible());
        let w = s.witness_point().unwrap();
        assert!(s.contains(&w), "witness {w:?} not in subdomain");
    }

    #[test]
    fn contradictory_constraints_are_infeasible() {
        let hs_pos = HalfSpace::raw(vec![1.0, 0.0], -0.9, true); // x >= 0.9
        let hs_neg = HalfSpace::raw(vec![1.0, 0.0], -0.1, false); // x < 0.1
        let s = SubdomainConstraints::whole(Domain::unit(2))
            .with(hs_pos)
            .with(hs_neg);
        assert!(!s.is_feasible());
        assert!(s.witness_point().is_none());
    }

    #[test]
    fn linear_range_over_unit_square() {
        let s = SubdomainConstraints::whole(Domain::unit(2));
        let (min, max) = s.linear_range(&[1.0, 1.0], 0.0).unwrap();
        assert!((min - 0.0).abs() < 1e-7);
        assert!((max - 2.0).abs() < 1e-7);
        let (min, max) = s.linear_range(&[2.0, -1.0], 0.5).unwrap();
        assert!((min - (-0.5)).abs() < 1e-7);
        assert!((max - 2.5).abs() < 1e-7);
    }

    #[test]
    fn linear_range_respects_halfspaces() {
        // Restrict to x + y <= 1 (i.e. -(x+y) + 1 >= 0... easier raw form).
        let hs = HalfSpace::raw(vec![-1.0, -1.0], 1.0, true); // 1 - x - y >= 0
        let s = SubdomainConstraints::whole(Domain::unit(2)).with(hs);
        let (_, max) = s.linear_range(&[1.0, 1.0], 0.0).unwrap();
        assert!((max - 1.0).abs() < 1e-7);
    }

    #[test]
    fn with_does_not_mutate_original() {
        let base = SubdomainConstraints::whole(Domain::unit(1));
        let extended = base.with(HalfSpace::raw(vec![1.0], -0.5, true));
        assert_eq!(base.halfspaces.len(), 0);
        assert_eq!(extended.halfspaces.len(), 1);
    }

    #[test]
    fn digests_depend_on_constraints_and_order() {
        let a = HalfSpace::raw(vec![1.0], -0.2, true);
        let b = HalfSpace::raw(vec![1.0], -0.7, false);
        let s1 = SubdomainConstraints::whole(Domain::unit(1))
            .with(a.clone())
            .with(b.clone());
        let s2 = SubdomainConstraints::whole(Domain::unit(1)).with(b).with(a);
        assert_ne!(s1.digest(), s2.digest());
        assert_ne!(s1.inequality_digest(), s2.inequality_digest());
        assert_eq!(s1.digest(), s1.clone().digest());
    }

    #[test]
    fn empty_intersection_of_box_detected() {
        // Domain [0,1], constraint x >= 2 is infeasible inside the box.
        let s = SubdomainConstraints::whole(Domain::unit(1)).with(HalfSpace::raw(
            vec![1.0],
            -2.0,
            true,
        ));
        assert!(!s.is_feasible());
    }
}
