//! A dense two-phase simplex solver for small linear programs.
//!
//! The I-tree construction (and therefore the IFMH-tree and the signature
//! mesh) repeatedly asks: *does the hyperplane `f_i − f_j = 0` pass through
//! this polytope?* and *give me a witness point of this polytope*. Both are
//! linear programs over a handful of variables (the weight dimension `d`,
//! typically 1–4) with up to a few hundred constraints (the path of
//! inequalities accumulated down the tree plus the domain box).
//!
//! [`LpProblem`] models `maximize c·x` subject to `A x ≤ b` and box bounds
//! `lower ≤ x ≤ upper`. Internally variables are shifted to be non-negative
//! and upper bounds become ordinary rows, giving the textbook standard form
//! solved with a two-phase tableau simplex using Bland's rule (no cycling).

/// Outcome of solving a linear program.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// The optimum was found: objective value and an optimal point.
    Optimal {
        /// Optimal objective value.
        value: f64,
        /// A point achieving the optimum (in original, unshifted coordinates).
        point: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Convenience accessor: the optimal value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Convenience accessor: the optimal point, if any.
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// True if the program was feasible.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }
}

/// A linear program `maximize c·x  s.t.  A x ≤ b,  lower ≤ x ≤ upper`.
#[derive(Clone, Debug)]
pub struct LpProblem {
    /// Objective coefficients.
    pub objective: Vec<f64>,
    /// Constraint matrix rows.
    pub rows: Vec<Vec<f64>>,
    /// Right-hand sides, one per row.
    pub rhs: Vec<f64>,
    /// Per-variable lower bounds.
    pub lower: Vec<f64>,
    /// Per-variable upper bounds.
    pub upper: Vec<f64>,
}

const TOL: f64 = 1e-9;
const MAX_ITERS: usize = 100_000;

impl LpProblem {
    /// Creates a problem with the given box bounds and no rows yet.
    pub fn new(objective: Vec<f64>, lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(objective.len(), lower.len());
        assert_eq!(lower.len(), upper.len());
        LpProblem {
            objective,
            rows: Vec::new(),
            rhs: Vec::new(),
            lower,
            upper,
        }
    }

    /// Adds the constraint `row · x ≤ rhs`.
    pub fn add_le(&mut self, row: Vec<f64>, rhs: f64) {
        assert_eq!(row.len(), self.objective.len());
        self.rows.push(row);
        self.rhs.push(rhs);
    }

    /// Adds the constraint `row · x ≥ rhs` (stored as `−row · x ≤ −rhs`).
    pub fn add_ge(&mut self, row: Vec<f64>, rhs: f64) {
        let neg: Vec<f64> = row.iter().map(|v| -v).collect();
        self.add_le(neg, -rhs);
    }

    /// Solves the program.
    pub fn solve(&self) -> LpOutcome {
        let n = self.objective.len();

        // Shift variables so y = x - lower >= 0; upper bounds become rows.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.rows.len() + n);
        let mut rhs: Vec<f64> = Vec::with_capacity(self.rows.len() + n);
        for (row, &b) in self.rows.iter().zip(self.rhs.iter()) {
            // row·x <= b  =>  row·y <= b - row·lower
            let shift: f64 = row.iter().zip(self.lower.iter()).map(|(a, l)| a * l).sum();
            rows.push(row.clone());
            rhs.push(b - shift);
        }
        for i in 0..n {
            // y_i <= upper_i - lower_i
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            rows.push(row);
            let span = self.upper[i] - self.lower[i];
            if span < 0.0 {
                return LpOutcome::Infeasible;
            }
            rhs.push(span);
        }

        match simplex_standard(&self.objective, &rows, &rhs) {
            StandardOutcome::Infeasible => LpOutcome::Infeasible,
            StandardOutcome::Unbounded => LpOutcome::Unbounded,
            StandardOutcome::Optimal { value, point } => {
                // Undo the shift.
                let x: Vec<f64> = point
                    .iter()
                    .zip(self.lower.iter())
                    .map(|(y, l)| y + l)
                    .collect();
                let obj_shift: f64 = self
                    .objective
                    .iter()
                    .zip(self.lower.iter())
                    .map(|(c, l)| c * l)
                    .sum();
                LpOutcome::Optimal {
                    value: value + obj_shift,
                    point: x,
                }
            }
        }
    }
}

enum StandardOutcome {
    Optimal { value: f64, point: Vec<f64> },
    Infeasible,
    Unbounded,
}

/// Solves `maximize c·y  s.t.  A y ≤ b, y ≥ 0` (b may be negative) with a
/// two-phase tableau simplex.
fn simplex_standard(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> StandardOutcome {
    let n = c.len();
    let m = a.len();

    // Tableau columns: [ y (n) | slacks (m) | artificials (k) | rhs ].
    // Rows with negative rhs are negated (turning the slack coefficient to
    // -1) and given an artificial variable.
    let artificial_rows: Vec<usize> = (0..m).filter(|&i| b[i] < 0.0).collect();
    let k = artificial_rows.len();
    let total_cols = n + m + k + 1;
    let rhs_col = total_cols - 1;

    let mut t = vec![vec![0.0; total_cols]; m];
    let mut basis = vec![0usize; m];

    let mut art_index = 0usize;
    for i in 0..m {
        let negate = b[i] < 0.0;
        let sign = if negate { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = sign * a[i][j];
        }
        t[i][n + i] = sign; // slack
        t[i][rhs_col] = sign * b[i];
        if negate {
            t[i][n + m + art_index] = 1.0;
            basis[i] = n + m + art_index;
            art_index += 1;
        } else {
            basis[i] = n + i;
        }
    }

    // ---- Phase 1: minimize sum of artificials (maximize their negation) ---
    if k > 0 {
        let mut phase1_obj = vec![0.0; total_cols];
        for j in 0..k {
            phase1_obj[n + m + j] = -1.0;
        }
        let mut z = build_objective_row(&phase1_obj, &t, &basis, rhs_col);
        if !run_simplex(&mut t, &mut z, &mut basis, rhs_col, usize::MAX) {
            // Phase 1 of a bounded-below objective can't be unbounded.
            return StandardOutcome::Infeasible;
        }
        // If artificial variables still carry value, the LP is infeasible.
        if z[rhs_col] < -1e-7 {
            return StandardOutcome::Infeasible;
        }
        // Pivot any basic artificial out of the basis if possible.
        for i in 0..m {
            if basis[i] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > 1e-7) {
                    pivot(&mut t, &mut z, &mut basis, i, j, rhs_col);
                }
            }
        }
    }

    // ---- Phase 2: original objective, artificial columns frozen ----------
    let mut phase2_obj = vec![0.0; total_cols];
    phase2_obj[..n].copy_from_slice(c);
    let mut z = build_objective_row(&phase2_obj, &t, &basis, rhs_col);
    // Artificial columns must never re-enter: cap eligible columns at n + m.
    if !run_simplex(&mut t, &mut z, &mut basis, rhs_col, n + m) {
        return StandardOutcome::Unbounded;
    }

    // Read off the solution.
    let mut point = vec![0.0; n];
    for (i, &bvar) in basis.iter().enumerate() {
        if bvar < n {
            point[bvar] = t[i][rhs_col];
        }
    }
    StandardOutcome::Optimal {
        value: z[rhs_col],
        point,
    }
}

/// Builds the reduced-cost row for an objective, given the current basis.
fn build_objective_row(obj: &[f64], t: &[Vec<f64>], basis: &[usize], rhs_col: usize) -> Vec<f64> {
    // z_j - c_j form: start with -c_j and add back the basic contributions.
    let total_cols = rhs_col + 1;
    let mut z = vec![0.0; total_cols];
    for (j, &cj) in obj.iter().enumerate() {
        z[j] = -cj;
    }
    for (i, &bvar) in basis.iter().enumerate() {
        let cb = obj[bvar];
        if cb != 0.0 {
            for j in 0..total_cols {
                z[j] += cb * t[i][j];
            }
        }
    }
    z
}

/// Runs simplex iterations until optimality. Returns `false` on
/// unboundedness. `col_limit` restricts which columns may enter the basis
/// (used to freeze artificial columns in phase 2); pass `usize::MAX` to allow
/// all.
fn run_simplex(
    t: &mut [Vec<f64>],
    z: &mut [f64],
    basis: &mut [usize],
    rhs_col: usize,
    col_limit: usize,
) -> bool {
    let eligible = rhs_col.min(col_limit);
    for _ in 0..MAX_ITERS {
        // Bland's rule: smallest index with negative reduced cost.
        let entering = (0..eligible).find(|&j| z[j] < -TOL);
        let entering = match entering {
            Some(j) => j,
            None => return true, // optimal
        };

        // Ratio test, Bland tie-break on the leaving basic variable index.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[entering] > TOL {
                let ratio = row[rhs_col] / row[entering];
                if ratio < best_ratio - TOL
                    || ((ratio - best_ratio).abs() <= TOL
                        && leaving.is_none_or(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let leaving = match leaving {
            Some(i) => i,
            None => return false, // unbounded
        };
        pivot(t, z, basis, leaving, entering, rhs_col);
    }
    // Iteration cap reached — treat as optimal-enough; with Bland's rule this
    // should be unreachable for problems of this size.
    true
}

/// Performs a pivot on (row, col).
fn pivot(
    t: &mut [Vec<f64>],
    z: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    rhs_col: usize,
) {
    let total_cols = rhs_col + 1;
    let pivot_val = t[row][col];
    debug_assert!(pivot_val.abs() > 1e-12, "pivot on (near-)zero element");
    for cell in t[row].iter_mut().take(total_cols) {
        *cell /= pivot_val;
    }
    // Snapshot the normalised pivot row so eliminating the other rows does
    // not alias the mutable borrow of the tableau.
    let pivot_row: Vec<f64> = t[row][..total_cols].to_vec();
    for (i, current) in t.iter_mut().enumerate() {
        if i != row && current[col].abs() > 0.0 {
            let factor = current[col];
            for (cell, pivot_cell) in current.iter_mut().zip(pivot_row.iter()) {
                *cell -= factor * pivot_cell;
            }
        }
    }
    if z[col].abs() > 0.0 {
        let factor = z[col];
        for (cell, pivot_cell) in z.iter_mut().zip(t[row].iter()).take(total_cols) {
            *cell -= factor * pivot_cell;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_var_lp() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 10
        let mut lp = LpProblem::new(vec![3.0, 2.0], vec![0.0, 0.0], vec![10.0, 10.0]);
        lp.add_le(vec![1.0, 1.0], 4.0);
        lp.add_le(vec![1.0, 3.0], 6.0);
        match lp.solve() {
            LpOutcome::Optimal { value, point } => {
                assert_close(value, 12.0);
                assert_close(point[0], 4.0);
                assert_close(point[1], 0.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn lp_with_negative_rhs_needs_phase1() {
        // maximize x s.t. x >= 2 (i.e. -x <= -2), x <= 5
        let mut lp = LpProblem::new(vec![1.0], vec![0.0], vec![10.0]);
        lp.add_ge(vec![1.0], 2.0);
        lp.add_le(vec![1.0], 5.0);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 5.0);
        assert!(out.point().unwrap()[0] >= 2.0 - 1e-9);
    }

    #[test]
    fn infeasible_lp_detected() {
        // x >= 5 and x <= 2 within [0, 10]
        let mut lp = LpProblem::new(vec![1.0], vec![0.0], vec![10.0]);
        lp.add_ge(vec![1.0], 5.0);
        lp.add_le(vec![1.0], 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn box_bounds_only() {
        // maximize x + y over [0,1]^2 with no extra rows.
        let lp = LpProblem::new(vec![1.0, 1.0], vec![0.0, 0.0], vec![1.0, 1.0]);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 2.0);
    }

    #[test]
    fn minimization_via_negated_objective() {
        // minimize x - y over [0,1]^2 with x + y >= 1
        // => maximize -x + y; optimum at (0,1): value 1.
        let mut lp = LpProblem::new(vec![-1.0, 1.0], vec![0.0, 0.0], vec![1.0, 1.0]);
        lp.add_ge(vec![1.0, 1.0], 1.0);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 1.0);
    }

    #[test]
    fn negative_lower_bounds_are_shifted_correctly() {
        // maximize x over [-5, 5] with x <= 3  => 3
        let mut lp = LpProblem::new(vec![1.0], vec![-5.0], vec![5.0]);
        lp.add_le(vec![1.0], 3.0);
        assert_close(lp.solve().value().unwrap(), 3.0);
        // minimize x (maximize -x) over the same region => x = -5, value 5.
        let mut lp = LpProblem::new(vec![-1.0], vec![-5.0], vec![5.0]);
        lp.add_le(vec![1.0], 3.0);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 5.0);
        assert_close(out.point().unwrap()[0], -5.0);
    }

    #[test]
    fn three_variable_lp() {
        // Classic example: maximize 5x + 4y + 3z
        // s.t. 2x + 3y + z <= 5; 4x + y + 2z <= 11; 3x + 4y + 2z <= 8
        let mut lp = LpProblem::new(
            vec![5.0, 4.0, 3.0],
            vec![0.0, 0.0, 0.0],
            vec![100.0, 100.0, 100.0],
        );
        lp.add_le(vec![2.0, 3.0, 1.0], 5.0);
        lp.add_le(vec![4.0, 1.0, 2.0], 11.0);
        lp.add_le(vec![3.0, 4.0, 2.0], 8.0);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 13.0);
    }

    #[test]
    fn degenerate_point_domain() {
        // lower == upper: the only feasible point is that corner.
        let lp = LpProblem::new(vec![1.0, 1.0], vec![0.5, 0.5], vec![0.5, 0.5]);
        let out = lp.solve();
        assert_close(out.value().unwrap(), 1.0);
        assert_eq!(out.point().unwrap(), &[0.5, 0.5]);
    }

    #[test]
    fn inverted_bounds_are_infeasible() {
        let mut lp = LpProblem::new(vec![1.0], vec![1.0], vec![0.0]);
        lp.add_le(vec![1.0], 10.0);
        // lower > upper should be reported infeasible, not panic.
        let lp = LpProblem {
            lower: vec![1.0],
            upper: vec![0.0],
            ..lp
        };
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn optimal_point_satisfies_all_constraints() {
        let mut lp = LpProblem::new(vec![2.0, -1.0, 0.5], vec![0.0; 3], vec![1.0; 3]);
        lp.add_le(vec![1.0, 1.0, 1.0], 1.5);
        lp.add_ge(vec![1.0, 0.0, 1.0], 0.3);
        lp.add_le(vec![-1.0, 2.0, 0.0], 0.8);
        if let LpOutcome::Optimal { point, .. } = lp.solve() {
            assert!(point.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
            assert!(point[0] + point[1] + point[2] <= 1.5 + 1e-7);
            assert!(point[0] + point[2] >= 0.3 - 1e-7);
            assert!(-point[0] + 2.0 * point[1] <= 0.8 + 1e-7);
        } else {
            panic!("expected feasible");
        }
    }

    proptest::proptest! {
        /// Feasibility of random boxes with a supporting constraint through the
        /// centre: the centre itself must remain feasible and the reported
        /// optimum must be at least the value at the centre.
        #[test]
        fn prop_center_feasible(dim in 1usize..4, c0 in -2.0f64..2.0, c1 in -2.0f64..2.0) {
            let lower = vec![0.0; dim];
            let upper = vec![1.0; dim];
            let mut obj = vec![c0; dim];
            if dim > 1 { obj[1] = c1; }
            let mut lp = LpProblem::new(obj.clone(), lower, upper);
            // Constraint passing through the centre: sum(x) <= dim/2 + 0.25
            lp.add_le(vec![1.0; dim], dim as f64 / 2.0 + 0.25);
            let center = vec![0.5; dim];
            let center_val: f64 = obj.iter().zip(center.iter()).map(|(a, b)| a * b).sum();
            match lp.solve() {
                LpOutcome::Optimal { value, point } => {
                    proptest::prop_assert!(value >= center_val - 1e-7);
                    proptest::prop_assert!(point.iter().all(|&v| (-1e-7..=1.0 + 1e-7).contains(&v)));
                    let s: f64 = point.iter().sum();
                    proptest::prop_assert!(s <= dim as f64 / 2.0 + 0.25 + 1e-6);
                }
                other => {
                    proptest::prop_assert!(false, "expected optimal, got {:?}", other);
                }
            }
        }
    }
}
