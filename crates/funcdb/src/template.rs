//! Utility-function templates.

use crate::function::{FuncId, LinearFunction};
use crate::record::Record;

/// A linear utility-function template.
///
/// The paper's example: `Score(w1, w2, w3) = GPA·w1 + Award·w2 + Paper·w3`.
/// The template fixes which attributes participate and in what order; the
/// query supplies the weight vector `X = (w1, …, wd)` at query time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionTemplate {
    /// Human-readable names of the weighted attributes, e.g.
    /// `["gpa", "awards", "papers"]`.
    pub attr_names: Vec<String>,
}

impl FunctionTemplate {
    /// Creates a template over the named attributes.
    pub fn new<S: Into<String>>(attr_names: Vec<S>) -> Self {
        FunctionTemplate {
            attr_names: attr_names.into_iter().map(Into::into).collect(),
        }
    }

    /// Creates an anonymous template of the given dimensionality
    /// (`x0, x1, …`).
    pub fn anonymous(dims: usize) -> Self {
        FunctionTemplate {
            attr_names: (0..dims).map(|i| format!("x{i}")).collect(),
        }
    }

    /// Number of weight variables `d`.
    pub fn dims(&self) -> usize {
        self.attr_names.len()
    }

    /// Interprets a record as a linear function under this template.
    ///
    /// Panics if the record's arity does not match the template.
    pub fn to_function(&self, func_id: FuncId, record: &Record) -> LinearFunction {
        assert_eq!(
            record.arity(),
            self.dims(),
            "record {} arity {} does not match template arity {}",
            record.id,
            record.arity(),
            self.dims()
        );
        LinearFunction::new(func_id, record.attrs.clone(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_maps_record_to_function() {
        let t = FunctionTemplate::new(vec!["gpa", "awards", "papers"]);
        let r = Record::new(1, vec![3.9, 2.0, 5.0]);
        let f = t.to_function(FuncId(0), &r);
        // Score with weights (1, 1, 1) = 3.9 + 2 + 5
        assert!((f.eval(&[1.0, 1.0, 1.0]) - 10.9).abs() < 1e-12);
        // Score with weights (10, 0, 0) = 39
        assert!((f.eval(&[10.0, 0.0, 0.0]) - 39.0).abs() < 1e-12);
    }

    #[test]
    fn anonymous_template_dims() {
        let t = FunctionTemplate::anonymous(4);
        assert_eq!(t.dims(), 4);
        assert_eq!(t.attr_names[2], "x2");
    }

    #[test]
    #[should_panic(expected = "does not match template arity")]
    fn arity_mismatch_panics() {
        let t = FunctionTemplate::anonymous(3);
        let r = Record::new(1, vec![1.0]);
        let _ = t.to_function(FuncId(0), &r);
    }
}
