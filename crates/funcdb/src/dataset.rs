//! Datasets: a table, its template, and the derived functions.

use crate::domain::Domain;
use crate::function::{FuncId, LinearFunction};
use crate::record::Record;
use crate::template::FunctionTemplate;

/// The outsourced database as seen by the rest of the system: the original
/// records, the utility-function template, the derived linear functions and
/// the owner-declared weight domain.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Original records, indexed by [`FuncId`] position.
    pub records: Vec<Record>,
    /// The utility-function template shared with the server and clients.
    pub template: FunctionTemplate,
    /// `functions[i]` is the interpretation of `records[i]`.
    pub functions: Vec<LinearFunction>,
    /// The domain of the weight variables.
    pub domain: Domain,
}

impl Dataset {
    /// Builds a dataset from records, a template and a weight domain.
    ///
    /// Panics if any record's arity disagrees with the template.
    pub fn new(records: Vec<Record>, template: FunctionTemplate, domain: Domain) -> Self {
        assert_eq!(
            template.dims(),
            domain.dims(),
            "template and domain dimensionality disagree"
        );
        let functions = records
            .iter()
            .enumerate()
            .map(|(i, r)| template.to_function(FuncId(i as u32), r))
            .collect();
        Dataset {
            records,
            template,
            functions,
            domain,
        }
    }

    /// Number of records / functions `n`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of weight dimensions `d`.
    pub fn dims(&self) -> usize {
        self.template.dims()
    }

    /// Looks up a record by function id. Panics on sentinels.
    pub fn record(&self, id: FuncId) -> &Record {
        &self.records[id.index()]
    }

    /// Looks up a function by id. Panics on sentinels.
    pub fn function(&self, id: FuncId) -> &LinearFunction {
        &self.functions[id.index()]
    }

    /// Evaluates function `id` at `x`.
    pub fn score(&self, id: FuncId, x: &[f64]) -> f64 {
        self.function(id).eval(x)
    }

    /// All `(i, j)` pairs with `i < j` — the candidate intersections the
    /// I-tree construction iterates over.
    pub fn function_pairs(&self) -> impl Iterator<Item = (FuncId, FuncId)> + '_ {
        let n = self.len() as u32;
        (0..n).flat_map(move |i| (i + 1..n).map(move |j| (FuncId(i), FuncId(j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        let template = FunctionTemplate::new(vec!["a", "b"]);
        let records = vec![
            Record::new(100, vec![1.0, 0.0]),
            Record::new(101, vec![0.0, 1.0]),
            Record::new(102, vec![0.5, 0.5]),
        ];
        Dataset::new(records, template, Domain::unit(2))
    }

    #[test]
    fn functions_match_records() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dims(), 2);
        assert!((ds.score(FuncId(0), &[0.3, 0.9]) - 0.3).abs() < 1e-12);
        assert!((ds.score(FuncId(1), &[0.3, 0.9]) - 0.9).abs() < 1e-12);
        assert!((ds.score(FuncId(2), &[0.3, 0.9]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn record_and_function_lookup_agree() {
        let ds = small_dataset();
        for i in 0..ds.len() as u32 {
            assert_eq!(ds.record(FuncId(i)).attrs, ds.function(FuncId(i)).coeffs);
        }
    }

    #[test]
    fn function_pairs_enumerates_upper_triangle() {
        let ds = small_dataset();
        let pairs: Vec<_> = ds.function_pairs().collect();
        assert_eq!(
            pairs,
            vec![
                (FuncId(0), FuncId(1)),
                (FuncId(0), FuncId(2)),
                (FuncId(1), FuncId(2))
            ]
        );
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(vec![], FunctionTemplate::anonymous(2), Domain::unit(2));
        assert!(ds.is_empty());
        assert_eq!(ds.function_pairs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality disagree")]
    fn template_domain_mismatch_panics() {
        let _ = Dataset::new(vec![], FunctionTemplate::anonymous(2), Domain::unit(3));
    }
}
