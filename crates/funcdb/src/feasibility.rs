//! Split oracles: does a hyperplane pass through a region?
//!
//! The I-tree insert algorithm (paper, Sec. 3.1 step 1) needs to decide, for
//! every candidate intersection `I_{i,j}` and every tree node's region `X`,
//! whether the intersection *partitions* `X` — i.e. whether both
//! `X ∩ {f_i − f_j > 0}` and `X ∩ {f_i − f_j < 0}` are non-empty. This module
//! provides that decision behind the [`SplitOracle`] trait with two
//! implementations:
//!
//! * [`LpSplitOracle`] — exact (up to floating-point tolerance), using the
//!   simplex solver to compute the range of the difference function over the
//!   region.
//! * [`SamplingSplitOracle`] — Monte-Carlo approximation used by the
//!   ablation study; cheaper per query but can miss slivers, which the
//!   ablation bench quantifies.

use crate::subdomain::SubdomainConstraints;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// How a hyperplane relates to a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitDecision {
    /// The hyperplane passes through the region: both strict sides are
    /// non-empty.
    Splits,
    /// The whole region lies on the non-negative side (`g ≥ 0`).
    AllAbove,
    /// The whole region lies on the negative side (`g < 0`).
    AllBelow,
    /// The region is empty (should not normally be asked).
    EmptyRegion,
}

/// Decides whether a linear form's zero set splits a region.
pub trait SplitOracle {
    /// Classifies the hyperplane `coeffs·x + constant = 0` against `region`.
    fn classify(
        &self,
        region: &SubdomainConstraints,
        coeffs: &[f64],
        constant: f64,
    ) -> SplitDecision;

    /// Convenience: true if the hyperplane splits the region.
    fn splits(&self, region: &SubdomainConstraints, coeffs: &[f64], constant: f64) -> bool {
        self.classify(region, coeffs, constant) == SplitDecision::Splits
    }
}

/// Exact oracle based on the simplex LP solver.
///
/// The hyperplane splits the region iff the maximum of `g` over the region is
/// strictly positive **and** the minimum is strictly negative (beyond the
/// tolerance). A region entirely on one side is classified accordingly.
#[derive(Clone, Debug, Default)]
pub struct LpSplitOracle {
    /// Tolerance below which an extremum is considered to touch the plane.
    pub tolerance: f64,
}

impl LpSplitOracle {
    /// Creates the oracle with the default tolerance.
    pub fn new() -> Self {
        LpSplitOracle { tolerance: 1e-7 }
    }
}

impl SplitOracle for LpSplitOracle {
    fn classify(
        &self,
        region: &SubdomainConstraints,
        coeffs: &[f64],
        constant: f64,
    ) -> SplitDecision {
        match region.linear_range(coeffs, constant) {
            None => SplitDecision::EmptyRegion,
            Some((min, max)) => {
                let above = max > self.tolerance;
                let below = min < -self.tolerance;
                match (above, below) {
                    (true, true) => SplitDecision::Splits,
                    (true, false) => SplitDecision::AllAbove,
                    (false, true) => SplitDecision::AllBelow,
                    // The form is (numerically) identically zero on the
                    // region: treat as lying on the closed "above" side.
                    (false, false) => SplitDecision::AllAbove,
                }
            }
        }
    }
}

/// Monte-Carlo oracle: samples points of the region's bounding box, keeps
/// those inside the region, and looks at the sign of `g` at the survivors.
///
/// Used by the feasibility ablation; may misclassify thin regions.
#[derive(Debug)]
pub struct SamplingSplitOracle {
    samples: usize,
    rng: RefCell<StdRng>,
}

impl SamplingSplitOracle {
    /// Creates an oracle drawing `samples` points per query.
    pub fn new(samples: usize, seed: u64) -> Self {
        SamplingSplitOracle {
            samples,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl SplitOracle for SamplingSplitOracle {
    fn classify(
        &self,
        region: &SubdomainConstraints,
        coeffs: &[f64],
        constant: f64,
    ) -> SplitDecision {
        let mut rng = self.rng.borrow_mut();
        let mut seen_above = false;
        let mut seen_below = false;
        let mut seen_any = false;
        for _ in 0..self.samples {
            let p = region.domain.sample(&mut *rng);
            if !region.contains(&p) {
                continue;
            }
            seen_any = true;
            let g: f64 = coeffs.iter().zip(p.iter()).map(|(c, v)| c * v).sum::<f64>() + constant;
            if g > 0.0 {
                seen_above = true;
            } else {
                seen_below = true;
            }
            if seen_above && seen_below {
                return SplitDecision::Splits;
            }
        }
        match (seen_any, seen_above, seen_below) {
            (false, _, _) => SplitDecision::EmptyRegion,
            (_, true, false) => SplitDecision::AllAbove,
            (_, false, true) => SplitDecision::AllBelow,
            _ => SplitDecision::AllAbove,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::halfspace::HalfSpace;

    fn unit_region(dims: usize) -> SubdomainConstraints {
        SubdomainConstraints::whole(Domain::unit(dims))
    }

    #[test]
    fn lp_oracle_detects_split_through_square() {
        let oracle = LpSplitOracle::new();
        // x - y = 0 cuts the unit square diagonally.
        assert_eq!(
            oracle.classify(&unit_region(2), &[1.0, -1.0], 0.0),
            SplitDecision::Splits
        );
    }

    #[test]
    fn lp_oracle_detects_all_above_and_below() {
        let oracle = LpSplitOracle::new();
        // x + y + 1 > 0 everywhere on [0,1]^2.
        assert_eq!(
            oracle.classify(&unit_region(2), &[1.0, 1.0], 1.0),
            SplitDecision::AllAbove
        );
        // x + y - 5 < 0 everywhere on [0,1]^2.
        assert_eq!(
            oracle.classify(&unit_region(2), &[1.0, 1.0], -5.0),
            SplitDecision::AllBelow
        );
    }

    #[test]
    fn lp_oracle_respects_existing_constraints() {
        let oracle = LpSplitOracle::new();
        // Restrict to x >= 0.8; then x - 0.5 = 0 no longer splits.
        let region = unit_region(1).with(HalfSpace::raw(vec![1.0], -0.8, true));
        assert_eq!(
            oracle.classify(&region, &[1.0], -0.5),
            SplitDecision::AllAbove
        );
        // But x - 0.9 = 0 still splits [0.8, 1].
        assert_eq!(
            oracle.classify(&region, &[1.0], -0.9),
            SplitDecision::Splits
        );
    }

    #[test]
    fn lp_oracle_empty_region() {
        let oracle = LpSplitOracle::new();
        let region = unit_region(1)
            .with(HalfSpace::raw(vec![1.0], -0.9, true))
            .with(HalfSpace::raw(vec![1.0], -0.1, false));
        assert_eq!(
            oracle.classify(&region, &[1.0], -0.5),
            SplitDecision::EmptyRegion
        );
    }

    #[test]
    fn lp_oracle_hyperplane_touching_corner_does_not_split() {
        let oracle = LpSplitOracle::new();
        // x + y = 0 only touches the square at the origin corner.
        assert_eq!(
            oracle.classify(&unit_region(2), &[1.0, 1.0], 0.0),
            SplitDecision::AllAbove
        );
    }

    #[test]
    fn sampling_oracle_agrees_on_clear_cases() {
        let lp = LpSplitOracle::new();
        let mc = SamplingSplitOracle::new(512, 42);
        let cases: Vec<(Vec<f64>, f64)> = vec![
            (vec![1.0, -1.0], 0.0),
            (vec![1.0, 1.0], 1.0),
            (vec![1.0, 1.0], -5.0),
            (vec![1.0, 0.0], -0.5),
        ];
        for (coeffs, c) in cases {
            let a = lp.classify(&unit_region(2), &coeffs, c);
            let b = mc.classify(&unit_region(2), &coeffs, c);
            assert_eq!(a, b, "disagreement on {coeffs:?} + {c}");
        }
    }

    #[test]
    fn sampling_oracle_may_miss_slivers_but_never_panics() {
        // A hyperplane shaving an extremely thin corner: the LP oracle says
        // Splits, sampling may legitimately answer AllBelow.
        let lp = LpSplitOracle::new();
        let mc = SamplingSplitOracle::new(64, 7);
        let coeffs = vec![1.0, 1.0];
        let c = -1.999_999;
        assert_eq!(
            lp.classify(&unit_region(2), &coeffs, c),
            SplitDecision::Splits
        );
        let d = mc.classify(&unit_region(2), &coeffs, c);
        assert!(matches!(d, SplitDecision::AllBelow | SplitDecision::Splits));
    }
}
