//! Axis-aligned box domains for the weight space.

use rand::Rng;

/// The bounded, axis-aligned domain the data owner declares for the weight
/// variables, e.g. `w1, w2, w3 ∈ [0, 1]`.
///
/// The paper's I-tree root represents "the entire domain specified by the
/// data owner"; this type is that domain.
#[derive(Clone, Debug, PartialEq)]
pub struct Domain {
    /// Per-dimension lower bounds (inclusive).
    pub lower: Vec<f64>,
    /// Per-dimension upper bounds (inclusive).
    pub upper: Vec<f64>,
}

impl Domain {
    /// Creates a domain from explicit bounds.
    ///
    /// Panics if the two vectors differ in length or if any lower bound
    /// exceeds the corresponding upper bound.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound vectors must match");
        for (l, u) in lower.iter().zip(upper.iter()) {
            assert!(l <= u, "lower bound {l} exceeds upper bound {u}");
        }
        Domain { lower, upper }
    }

    /// The unit hyper-cube `[0, 1]^d`, the paper's default weight domain.
    pub fn unit(dims: usize) -> Self {
        Domain {
            lower: vec![0.0; dims],
            upper: vec![1.0; dims],
        }
    }

    /// A symmetric cube `[-half, half]^d`.
    pub fn symmetric(dims: usize, half: f64) -> Self {
        Domain {
            lower: vec![-half; dims],
            upper: vec![half; dims],
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// True if the point lies inside (or on the boundary of) the box.
    pub fn contains(&self, x: &[f64]) -> bool {
        if x.len() != self.dims() {
            return false;
        }
        x.iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .all(|(v, (l, u))| *v >= l - crate::EPS && *v <= u + crate::EPS)
    }

    /// The geometric centre of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| (l + u) / 2.0)
            .collect()
    }

    /// Uniformly samples a point inside the box.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| if l == u { *l } else { rng.gen_range(*l..*u) })
            .collect()
    }

    /// Canonical byte encoding (for inclusion in subdomain hashes).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.dims() * 16 + 4);
        out.extend_from_slice(&(self.dims() as u32).to_be_bytes());
        for (l, u) in self.lower.iter().zip(self.upper.iter()) {
            out.extend_from_slice(&l.to_be_bytes());
            out.extend_from_slice(&u.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_domain_contains_interior_and_boundary() {
        let d = Domain::unit(3);
        assert!(d.contains(&[0.5, 0.5, 0.5]));
        assert!(d.contains(&[0.0, 1.0, 0.0]));
        assert!(!d.contains(&[1.5, 0.5, 0.5]));
        assert!(!d.contains(&[0.5, 0.5])); // wrong arity
    }

    #[test]
    fn center_is_midpoint() {
        let d = Domain::new(vec![0.0, -2.0], vec![1.0, 4.0]);
        assert_eq!(d.center(), vec![0.5, 1.0]);
    }

    #[test]
    fn sample_stays_inside() {
        let d = Domain::new(vec![-1.0, 2.0], vec![1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = d.sample(&mut rng);
            assert!(d.contains(&p));
        }
    }

    #[test]
    fn degenerate_dimension_sampling() {
        let d = Domain::new(vec![0.5], vec![0.5]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(d.sample(&mut rng), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn invalid_bounds_panic() {
        let _ = Domain::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn canonical_bytes_distinguish_domains() {
        let a = Domain::unit(2);
        let b = Domain::symmetric(2, 1.0);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.canonical_bytes(), Domain::unit(2).canonical_bytes());
    }
}
