//! Stress and consistency tests for the simplex LP solver and the split
//! oracles, cross-checked against dense grid sampling (a slow but obviously
//! correct reference).

use proptest::prelude::*;
use vaq_funcdb::{
    Domain, HalfSpace, LpOutcome, LpProblem, LpSplitOracle, SplitDecision, SplitOracle,
    SubdomainConstraints,
};

/// Evaluates feasibility of a constraint system by brute-force grid search.
fn grid_feasible(constraints: &SubdomainConstraints, steps: usize) -> Option<Vec<f64>> {
    let d = constraints.dims();
    assert_eq!(d, 2, "grid reference only implemented for 2-D");
    let (lx, ux) = (constraints.domain.lower[0], constraints.domain.upper[0]);
    let (ly, uy) = (constraints.domain.lower[1], constraints.domain.upper[1]);
    for i in 0..=steps {
        for j in 0..=steps {
            let p = vec![
                lx + (ux - lx) * i as f64 / steps as f64,
                ly + (uy - ly) * j as f64 / steps as f64,
            ];
            if constraints.contains(&p) {
                return Some(p);
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If the grid finds a feasible point, the LP must agree (the converse
    /// can fail for thin regions the grid misses, so it is not asserted).
    #[test]
    fn lp_feasibility_never_misses_grid_feasible_regions(
        raw in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, -0.8f64..0.8, prop::bool::ANY), 0..5),
    ) {
        let mut constraints = SubdomainConstraints::whole(Domain::unit(2));
        for (a, b, c, side) in &raw {
            constraints = constraints.with(HalfSpace::raw(vec![*a, *b], *c, *side));
        }
        if let Some(p) = grid_feasible(&constraints, 25) {
            prop_assert!(
                constraints.is_feasible(),
                "grid found {:?} feasible but the LP reported infeasible", p
            );
            // And the witness point the LP machinery produces must satisfy
            // the (closed) constraints.
            if let Some(w) = constraints.witness_point() {
                prop_assert!(constraints.domain.contains(&w));
            }
        }
    }

    /// The LP split oracle agrees with a dense-grid classification whenever
    /// the grid sees both sides clearly.
    #[test]
    fn split_oracle_agrees_with_grid_on_clear_cases(
        a in -1.0f64..1.0,
        b in -1.0f64..1.0,
        c in -0.9f64..0.9,
    ) {
        let region = SubdomainConstraints::whole(Domain::unit(2));
        let oracle = LpSplitOracle::new();
        let decision = oracle.classify(&region, &[a, b], c);

        // Grid classification.
        let steps = 40;
        let mut above = 0usize;
        let mut below = 0usize;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = i as f64 / steps as f64;
                let y = j as f64 / steps as f64;
                let g = a * x + b * y + c;
                if g > 1e-6 {
                    above += 1;
                } else if g < -1e-6 {
                    below += 1;
                }
            }
        }
        if above > 0 && below > 0 {
            prop_assert_eq!(decision, SplitDecision::Splits);
        } else if above > 0 && below == 0 {
            prop_assert_ne!(decision, SplitDecision::AllBelow);
        } else if below > 0 && above == 0 {
            prop_assert_ne!(decision, SplitDecision::AllAbove);
        }
    }

    /// Optimal LP values are certified: the reported point is feasible and
    /// attains the reported value.
    #[test]
    fn lp_optimum_is_attained_by_the_reported_point(
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        rows in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0, 0.1f64..2.0), 0..4),
    ) {
        let mut lp = LpProblem::new(vec![c0, c1], vec![0.0, 0.0], vec![1.0, 1.0]);
        for (a, b, rhs) in &rows {
            lp.add_le(vec![*a, *b], *rhs);
        }
        match lp.solve() {
            LpOutcome::Optimal { value, point } => {
                let attained = c0 * point[0] + c1 * point[1];
                prop_assert!((attained - value).abs() < 1e-6);
                prop_assert!(point.iter().all(|v| (-1e-7..=1.0 + 1e-7).contains(v)));
                for (a, b, rhs) in &rows {
                    prop_assert!(a * point[0] + b * point[1] <= rhs + 1e-6);
                }
            }
            LpOutcome::Infeasible => {
                // All rows have rhs > 0 and the origin satisfies them, so the
                // problem can never be infeasible.
                prop_assert!(false, "origin-feasible LP reported infeasible");
            }
            LpOutcome::Unbounded => {
                // Impossible over a bounded box.
                prop_assert!(false, "LP over a box reported unbounded");
            }
        }
    }
}
