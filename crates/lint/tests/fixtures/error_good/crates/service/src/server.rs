fn error_reply(metrics: &Metrics, code: ErrorCode, message: String) -> ErrorReply {
    metrics.record_error(code);
    ErrorReply { code, message }
}

fn reject_bad_frame(metrics: &Metrics) -> ErrorReply {
    error_reply(metrics, ErrorCode::Malformed, bad_frame_text())
}

fn shed_slow_reader(metrics: &Metrics) -> ErrorReply {
    error_reply(metrics, ErrorCode::Overloaded, shed_text())
}
