#[test]
fn codes_roundtrip() {
    for code in [ErrorCode::Malformed, ErrorCode::Overloaded] {
        let bytes = code.to_wire_bytes();
        assert!(ErrorCode::from_wire_bytes(&bytes).is_ok());
    }
}
