pub enum ErrorCode {
    Malformed,
    Overloaded,
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0,
            ErrorCode::Overloaded => 1,
        }
    }
}

impl WireEncode for ErrorCode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
    }
}

impl WireDecode for ErrorCode {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ErrorCode::Malformed),
            1 => Ok(ErrorCode::Overloaded),
            _ => Err(WireError::BadTag),
        }
    }
}
