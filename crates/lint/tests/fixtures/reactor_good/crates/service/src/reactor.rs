use std::time::Duration;

fn next_completion(completions_rx: &Receiver<Completion>) -> Option<Completion> {
    completions_rx.recv_timeout(Duration::from_micros(500)).ok()
}

fn drain_registrations(registrations: &Receiver<TcpStream>) {
    while let Ok(stream) = registrations.try_recv() {
        adopt(stream);
    }
}

fn low_rank_is_fine(shared: &Shared) -> bool {
    let receiver = shared.receiver.lock();
    receiver.is_open()
}

fn shutdown_pace() {
    // lint:allow(reactor-discipline, deliberate pacing: the sweep loop has exited and this nap only bounds busy-waiting while final frames flush)
    std::thread::sleep(Duration::from_millis(1));
}

fn pump(stream: &mut TcpStream, buf: &mut Vec<u8>) -> usize {
    stream.set_nonblocking(true).ok();
    stream.read(buf.as_mut_slice()).unwrap_or(0)
}
