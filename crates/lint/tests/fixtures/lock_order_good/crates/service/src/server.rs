fn ordered(shared: &Shared, key: Vec<u8>, frame: Frame) {
    let snapshot = shared.serving.lock();
    let mut cache = shared.cache.lock();
    cache.insert(key, frame);
    drop((snapshot, cache));
}

fn sequential(shared: &Shared) {
    shared.cache.lock().clear();
    let snapshot = shared.serving.lock();
    drop(snapshot);
}

fn waits(slot: &FlightSlot) {
    let mut result = slot.result.lock();
    while result.is_none() {
        result = slot.done.wait(result);
    }
}

fn startup(shared: &Shared) {
    let table = shared.slots.lock();
    // lint:allow(lock-order, single-threaded startup path; no worker can contend yet)
    let snapshot = shared.serving.lock();
    drop((table, snapshot));
}
