#[test]
fn ping_roundtrips() {
    let bytes = Request::Ping.to_wire_bytes();
    assert!(matches!(Request::from_wire_bytes(&bytes), Ok(Request::Ping)));
}
