pub enum Request {
    Ping,
    Extra,
}

impl WireEncode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.put_u8(0),
            Request::Extra => w.put_u8(1),
        }
    }
}

impl WireDecode for Request {
    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(Request::Ping),
            _ => Err(WireError::BadTag),
        }
    }
}
