impl Conn {
    fn enqueue_unchecked(&mut self, frame: Vec<u8>) {
        self.write_queue.push_back(frame);
    }

    fn buffer_request(&mut self, request: PendingRequest) {
        self.pending_tagged.push_back(request);
    }
}
