impl Conn {
    fn enqueue(&mut self, frame: Vec<u8>, write_queue_budget_bytes: usize) -> bool {
        if self.queued_bytes + frame.len() > write_queue_budget_bytes {
            return false;
        }
        self.queued_bytes += frame.len();
        self.write_queue.push_back(frame);
        true
    }

    fn buffer_request(&mut self, request: PendingRequest) {
        if self.pending_tagged.len() >= MAX_CONN_BACKLOG {
            return;
        }
        self.pending_tagged.push_back(request);
    }

    fn note(&mut self, trace: Trace) {
        self.finished.push(trace);
    }
}
