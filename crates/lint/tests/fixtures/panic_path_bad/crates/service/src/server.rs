fn handle(request: Request) -> Vec<u8> {
    let decoded = request.decode().unwrap();
    let frame = decoded.frame().expect("frame bytes");
    let first = frame[0];
    if first == 0 {
        panic!("empty frame");
    }
    todo!()
}
