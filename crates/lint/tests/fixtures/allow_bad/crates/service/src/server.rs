fn handle(frame: Vec<u8>) -> u8 {
    // lint:allow(panic-path)
    let first = frame.first().unwrap();
    // lint:allow(totally-bogus, because I said so)
    *first
}
