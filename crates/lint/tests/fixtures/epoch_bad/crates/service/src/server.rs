fn republish(epoch: u64, offered_epoch: u64) -> Result<u64, Error> {
    if offered_epoch <= epoch {
        return Err(Error::Stale);
    }
    let bumped = epoch + 1;
    Ok(bumped)
}

fn cache_unprefixed(shared: &Shared, canonical: Vec<u8>, frame: Frame) {
    shared.cache.insert(canonical, frame);
}
