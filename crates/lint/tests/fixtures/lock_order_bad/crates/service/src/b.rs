fn backward(state: &State) {
    let first = state.beta.lock();
    let second = state.alpha.lock();
    drop((first, second));
}
