fn forward(state: &State) {
    let first = state.alpha.lock();
    let second = state.beta.lock();
    drop((first, second));
}
