fn shutdown_shaped(shared: &Shared) {
    let table = shared.slots.lock();
    let snapshot = shared.serving.lock();
    drop((table, snapshot));
}

fn unranked(shared: &Shared) {
    let gauge = shared.mystery.lock();
    drop(gauge);
}

fn wrong_wait(shared: &Shared) {
    let snapshot = shared.serving.lock();
    let _woken = shared.done.wait(snapshot);
}

fn bad_declaration() {
    let lock = OrderedMutex::new(rank::BOGUS, "bogus", ());
    drop(lock);
}
