use vaq_wire::epoch;

fn republish(current: u64, offered: u64) -> Result<u64, Error> {
    if !epoch::advances(current, offered) {
        return Err(Error::Stale);
    }
    Ok(epoch::next(current))
}

fn matches_pin(epoch: u64, pinned: u64) -> bool {
    pinned == epoch
}

fn legacy(epoch: u64) -> u64 {
    // lint:allow(epoch-discipline, fixture exercising an explicitly justified raw computation)
    epoch - 1
}

fn cache_probe(shared: &Shared, key: &[u8]) -> Option<Vec<u8>> {
    shared.cache.get(key)
}
