fn pick(addrs: &[Addr], cursor: usize) -> &Addr {
    &addrs[cursor % addrs.len()]
}
