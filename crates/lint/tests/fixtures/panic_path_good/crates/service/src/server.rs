fn handle(request: Request) -> Result<Vec<u8>, ServiceError> {
    let frame = request.frame().ok_or(ServiceError::Malformed)?;
    // lint:allow(panic-path, emptiness checked by the caller's framing layer)
    let first = frame[0];
    Ok(vec![first])
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        super::handle(Request::default()).unwrap();
    }
}
