use std::time::Duration;

fn pace() {
    std::thread::sleep(Duration::from_millis(1));
}

fn next_completion(completions_rx: &Receiver<Completion>) -> Option<Completion> {
    completions_rx.recv().ok()
}

fn cache_peek(shared: &Shared) -> usize {
    let cache = shared.cache.lock();
    cache.len()
}

fn wait_done(result: &OrderedMutex<bool>, done: &Condvar) {
    let guard = result.lock();
    done.wait(guard);
}

fn go_blocking(stream: &mut TcpStream) {
    stream.set_nonblocking(false).ok();
    let _ = stream.write_all(b"hello");
}
