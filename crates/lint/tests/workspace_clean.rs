//! The real workspace must lint clean. This folds `vaq-lint` into tier-1:
//! a lock-order regression, a new panic path, an uncovered wire variant, or
//! raw epoch arithmetic fails `cargo test` even if nobody runs the binary.

use std::path::Path;

#[test]
fn workspace_sources_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let findings = vaq_lint::run_all(&root).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "vaq-lint found {} issue(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
