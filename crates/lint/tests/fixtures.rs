//! Lint self-tests over the checked-in fixture trees: every bad fixture
//! must be flagged by the right pass at the right line, every good fixture
//! (including justified `lint:allow` exemptions) must scan clean, and the
//! CLI must map findings to exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;

use vaq_lint::{run_all, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings(name: &str) -> Vec<Finding> {
    run_all(&fixture(name)).expect("fixture tree scans")
}

/// True when a finding of `pass` exists at `file_suffix:line` whose message
/// contains `needle`.
fn has(findings: &[Finding], pass: &str, file_suffix: &str, line: u32, needle: &str) -> bool {
    findings.iter().any(|f| {
        f.pass == pass
            && f.line == line
            && f.file
                .to_string_lossy()
                .replace('\\', "/")
                .ends_with(file_suffix)
            && f.message.contains(needle)
    })
}

fn dump(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lock_order_bad_fixture_is_fully_flagged() {
    let f = findings("lock_order_bad");
    let listing = dump(&f);
    assert!(
        has(&f, "lock-order", "src/server.rs", 3, "lock-order violation"),
        "missing the shutdown-shaped violation:\n{listing}"
    );
    assert!(
        has(&f, "lock-order", "src/server.rs", 3, "'serving' (rank 20)"),
        "violation must name both locks and ranks:\n{listing}"
    );
    assert!(
        has(
            &f,
            "lock-order",
            "src/server.rs",
            8,
            "'mystery' has no rank"
        ),
        "missing the unranked-lock finding:\n{listing}"
    );
    assert!(
        has(&f, "lock-order", "src/server.rs", 14, "condvar 'done'"),
        "missing the wait-rank mismatch:\n{listing}"
    );
    assert!(
        has(&f, "lock-order", "src/server.rs", 18, "rank::BOGUS"),
        "missing the declaration-site check:\n{listing}"
    );
    assert!(
        has(&f, "lock-order", "src/a.rs", 2, "'alpha' has no rank"),
        "missing the unranked 'alpha' site:\n{listing}"
    );
    assert!(
        f.iter()
            .any(|x| x.pass == "lock-order" && x.message.contains("lock-order cycle")),
        "missing the AB/BA cycle finding:\n{listing}"
    );
    // 1 violation + 1 unranked 'mystery' + 1 wait mismatch + 1 bad
    // declaration + 4 unranked alpha/beta sites + 1 cycle.
    assert_eq!(f.len(), 9, "unexpected finding set:\n{listing}");
}

#[test]
fn lock_order_good_fixture_is_clean() {
    let f = findings("lock_order_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn panic_path_bad_fixture_flags_every_panicking_shape() {
    let f = findings("panic_path_bad");
    let listing = dump(&f);
    assert!(
        has(&f, "panic-path", "src/server.rs", 2, ".unwrap()"),
        "{listing}"
    );
    assert!(
        has(&f, "panic-path", "src/server.rs", 3, ".expect("),
        "{listing}"
    );
    assert!(
        has(&f, "panic-path", "src/server.rs", 4, "indexing"),
        "{listing}"
    );
    assert!(
        has(&f, "panic-path", "src/server.rs", 6, "`panic!`"),
        "{listing}"
    );
    assert!(
        has(&f, "panic-path", "src/server.rs", 8, "`todo!`"),
        "{listing}"
    );
    assert_eq!(f.len(), 5, "unexpected finding set:\n{listing}");
}

#[test]
fn panic_path_good_fixture_is_clean() {
    // Test code, an allowed hot-path index, and indexing off the hot-path
    // file set are all fine.
    let f = findings("panic_path_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn malformed_allows_are_findings_and_suppress_nothing() {
    let f = findings("allow_bad");
    let listing = dump(&f);
    assert!(
        has(&f, "lint-allow", "src/server.rs", 2, "missing a reason"),
        "{listing}"
    );
    assert!(
        has(&f, "panic-path", "src/server.rs", 3, ".unwrap()"),
        "a reason-less allow must not suppress:\n{listing}"
    );
    assert!(
        has(&f, "lint-allow", "src/server.rs", 4, "unknown pass"),
        "{listing}"
    );
    assert_eq!(f.len(), 3, "unexpected finding set:\n{listing}");
}

#[test]
fn wire_bad_fixture_flags_the_uncovered_variant() {
    let f = findings("wire_bad");
    let listing = dump(&f);
    assert!(
        has(
            &f,
            "wire-exhaustiveness",
            "src/envelope.rs",
            3,
            "`Request::Extra`"
        ),
        "{listing}"
    );
    assert!(
        has(
            &f,
            "wire-exhaustiveness",
            "src/envelope.rs",
            3,
            "a decode arm"
        ),
        "{listing}"
    );
    assert!(
        has(
            &f,
            "wire-exhaustiveness",
            "src/envelope.rs",
            3,
            "round-trip"
        ),
        "{listing}"
    );
    assert_eq!(f.len(), 1, "unexpected finding set:\n{listing}");
}

#[test]
fn wire_good_fixture_counts_inherent_impl_tag_tables_as_encode_evidence() {
    let f = findings("wire_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn epoch_bad_fixture_flags_raw_ordering_and_unprefixed_cache_keys() {
    let f = findings("epoch_bad");
    let listing = dump(&f);
    assert!(
        has(
            &f,
            "epoch-discipline",
            "src/server.rs",
            2,
            "`offered_epoch`"
        ),
        "{listing}"
    );
    assert!(
        has(&f, "epoch-discipline", "src/server.rs", 2, "`epoch`"),
        "{listing}"
    );
    assert!(
        has(&f, "epoch-discipline", "src/server.rs", 5, "`+`"),
        "{listing}"
    );
    assert!(
        has(
            &f,
            "epoch-discipline",
            "src/server.rs",
            10,
            "epoch-prefixed `key`"
        ),
        "{listing}"
    );
    assert_eq!(f.len(), 4, "unexpected finding set:\n{listing}");
}

#[test]
fn epoch_good_fixture_is_clean() {
    // Blessed helpers, equality checks, a justified allow, and properly
    // keyed cache accesses.
    let f = findings("epoch_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn reactor_bad_fixture_flags_every_blocking_shape() {
    let f = findings("reactor_bad");
    let listing = dump(&f);
    assert!(
        has(&f, "reactor-discipline", "src/reactor.rs", 4, "`sleep(…)`"),
        "missing the sleep finding:\n{listing}"
    );
    assert!(
        has(&f, "reactor-discipline", "src/reactor.rs", 8, "`.recv()`"),
        "missing the blocking-recv finding:\n{listing}"
    );
    assert!(
        has(
            &f,
            "reactor-discipline",
            "src/reactor.rs",
            12,
            "lock 'cache' (rank 40)"
        ),
        "missing the over-ceiling cache lock:\n{listing}"
    );
    assert!(
        has(
            &f,
            "reactor-discipline",
            "src/reactor.rs",
            17,
            "lock 'result' (rank 60)"
        ),
        "missing the over-ceiling result lock:\n{listing}"
    );
    assert!(
        has(&f, "reactor-discipline", "src/reactor.rs", 18, "`.wait(…)`"),
        "missing the condvar-wait finding:\n{listing}"
    );
    assert!(
        has(
            &f,
            "reactor-discipline",
            "src/reactor.rs",
            22,
            "`.set_nonblocking(false)`"
        ),
        "missing the blocking-socket finding:\n{listing}"
    );
    assert!(
        has(
            &f,
            "reactor-discipline",
            "src/reactor.rs",
            23,
            "`.write_all(…)`"
        ),
        "missing the blocking-I/O finding:\n{listing}"
    );
    // Exactly the seven reactor-discipline findings: the fixture's lock
    // nesting and wait pairing are lock-order clean by construction.
    assert_eq!(f.len(), 7, "unexpected finding set:\n{listing}");
}

#[test]
fn reactor_good_fixture_is_clean() {
    // recv_timeout / try_recv pacing, a ceiling-respecting lock, a justified
    // pacing sleep, and non-blocking socket pumps are all fine.
    let f = findings("reactor_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn queue_bad_fixture_flags_unbudgeted_pushes() {
    let f = findings("queue_bad");
    let listing = dump(&f);
    assert!(
        has(
            &f,
            "bounded-queue",
            "src/conn.rs",
            3,
            "never tests its budget `write_queue_budget_bytes`"
        ),
        "missing the write-queue finding:\n{listing}"
    );
    assert!(
        has(
            &f,
            "bounded-queue",
            "src/conn.rs",
            7,
            "never tests its budget `MAX_CONN_BACKLOG`"
        ),
        "missing the pending-queue finding:\n{listing}"
    );
    assert_eq!(f.len(), 2, "unexpected finding set:\n{listing}");
}

#[test]
fn queue_good_fixture_is_clean() {
    // Budget-tested pushes, plus a push onto a queue the manifest does not
    // name, scan clean.
    let f = findings("queue_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

#[test]
fn error_bad_fixture_flags_the_uncounted_code() {
    let f = findings("error_bad");
    let listing = dump(&f);
    assert!(
        has(
            &f,
            "error-accounting",
            "src/envelope.rs",
            3,
            "`ErrorCode::Overloaded`"
        ),
        "missing the uncounted-code finding:\n{listing}"
    );
    assert_eq!(f.len(), 1, "unexpected finding set:\n{listing}");
}

#[test]
fn error_good_fixture_counts_every_code() {
    let f = findings("error_good");
    assert!(f.is_empty(), "expected clean, got:\n{}", dump(&f));
}

// --- CLI surface -----------------------------------------------------------

fn cli_status(args: &[&str]) -> Option<i32> {
    Command::new(env!("CARGO_BIN_EXE_vaq-lint"))
        .args(args)
        .output()
        .expect("vaq-lint binary runs")
        .status
        .code()
}

#[test]
fn cli_exits_nonzero_on_every_bad_fixture() {
    for bad in [
        "lock_order_bad",
        "panic_path_bad",
        "allow_bad",
        "wire_bad",
        "epoch_bad",
        "reactor_bad",
        "queue_bad",
        "error_bad",
    ] {
        let root = fixture(bad);
        let code = cli_status(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(code, Some(1), "fixture {bad} must exit 1");
    }
}

#[test]
fn cli_exits_zero_on_every_good_fixture() {
    for good in [
        "lock_order_good",
        "panic_path_good",
        "wire_good",
        "epoch_good",
        "reactor_good",
        "queue_good",
        "error_good",
    ] {
        let root = fixture(good);
        let code = cli_status(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(code, Some(0), "fixture {good} must exit 0");
    }
}

#[test]
fn cli_usage_errors_exit_two() {
    assert_eq!(cli_status(&["--frobnicate"]), Some(2));
    assert_eq!(cli_status(&["--root"]), Some(2));
    // A root with no scannable sources is a scan error, not "clean".
    let empty = fixture("lock_order_good").join("crates/lint");
    assert_eq!(
        cli_status(&["--root", empty.to_str().expect("utf-8 path")]),
        Some(2)
    );
}
