//! The wire-exhaustiveness pass: every `Request` / `Response` / `ErrorCode`
//! variant declared in `crates/wire/src/envelope.rs` must appear in the
//! enum's encode implementation, its decode implementation, **and** at
//! least one round-trip property test under `crates/wire/tests/`.
//!
//! Evidence is a fully-qualified `Enum::Variant` (or `Self::Variant`)
//! token sequence. The encode region is the `impl WireEncode for E` block
//! *plus* every inherent `impl E` block — tag tables like
//! `ErrorCode::tag` live in inherent impls and are what the encode body
//! dispatches through.

use crate::scan::{SourceFile, Token};
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "wire-exhaustiveness";

/// The wire enums whose variants must stay exhaustively covered.
const TARGET_ENUMS: [&str; 3] = ["Request", "Response", "ErrorCode"];

/// Runs the pass over `envelope.rs` plus the wire integration tests.
pub fn run(envelope: &SourceFile, tests: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for enum_name in TARGET_ENUMS {
        let variants = enum_variants(envelope, enum_name);
        if variants.is_empty() {
            continue;
        }
        let (encode_regions, decode_regions) = impl_regions(envelope, enum_name);
        for (variant, line) in variants {
            let mut missing = Vec::new();
            if !regions_mention(envelope, &encode_regions, enum_name, &variant) {
                missing.push("an encode arm");
            }
            if !regions_mention(envelope, &decode_regions, enum_name, &variant) {
                missing.push("a decode arm");
            }
            let round_tripped = tests
                .iter()
                .any(|t| mentions(&t.tokens, 0, t.tokens.len(), enum_name, &variant, false));
            if !round_tripped {
                missing.push("round-trip coverage in crates/wire/tests");
            }
            if !missing.is_empty() {
                findings.push(Finding {
                    pass: PASS,
                    file: envelope.path.clone(),
                    line,
                    message: format!(
                        "wire variant `{enum_name}::{variant}` is missing {}",
                        missing.join(", ")
                    ),
                });
            }
        }
    }
    findings
}

/// The variants of `enum <name> { … }`: identifiers at the enum's own brace
/// depth, outside parens/brackets, directly after `{`, `,` or an
/// attribute's `]`. Also used by the error-accounting pass to enumerate
/// `ErrorCode`.
pub(crate) fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if tokens[i].text != "enum"
            || tokens.get(i + 1).map(|t| t.text.as_str()) != Some(name)
            || file.is_masked(tokens[i].line)
        {
            continue;
        }
        let mut j = i + 2;
        while j < tokens.len() && tokens[j].text != "{" {
            j += 1;
        }
        let mut brace = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut prev = "";
        let mut variants = Vec::new();
        while j < tokens.len() {
            let text = tokens[j].text.as_str();
            match text {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        return variants;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                _ => {
                    let at_variant_position =
                        brace == 1 && paren == 0 && bracket == 0 && matches!(prev, "{" | "," | "]");
                    if at_variant_position
                        && tokens[j].is_ident()
                        && text.chars().next().is_some_and(|c| c.is_uppercase())
                    {
                        variants.push((text.to_string(), tokens[j].line));
                    }
                }
            }
            prev = text;
            j += 1;
        }
        return variants;
    }
    Vec::new()
}

/// Token ranges of the enum's impl blocks: `(encode ∪ inherent, decode)`.
#[allow(clippy::type_complexity)]
fn impl_regions(file: &SourceFile, name: &str) -> (Vec<(usize, usize)>, Vec<(usize, usize)>) {
    let tokens = &file.tokens;
    let mut encode = Vec::new();
    let mut decode = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "impl" || file.is_masked(tokens[i].line) {
            continue;
        }
        let t1 = tokens.get(i + 1).map(|t| t.text.as_str());
        let t2 = tokens.get(i + 2).map(|t| t.text.as_str());
        let t3 = tokens.get(i + 3).map(|t| t.text.as_str());
        if t1 == Some("WireEncode") && t2 == Some("for") && t3 == Some(name) {
            if let Some(range) = body_range(tokens, i + 4) {
                encode.push(range);
            }
        } else if t1 == Some("WireDecode") && t2 == Some("for") && t3 == Some(name) {
            if let Some(range) = body_range(tokens, i + 4) {
                decode.push(range);
            }
        } else if t1 == Some(name) && t2 == Some("{") {
            // Inherent impl: tag tables and helpers encode dispatches through.
            if let Some(range) = body_range(tokens, i + 2) {
                encode.push(range);
            }
        }
    }
    (encode, decode)
}

/// The `(start, end)` token range of the brace-delimited body starting at
/// or after `from`.
fn body_range(tokens: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    while j < tokens.len() && tokens[j].text != "{" {
        j += 1;
    }
    let start = j;
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, j + 1));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn regions_mention(
    file: &SourceFile,
    regions: &[(usize, usize)],
    enum_name: &str,
    variant: &str,
) -> bool {
    regions
        .iter()
        .any(|&(start, end)| mentions(&file.tokens, start, end, enum_name, variant, true))
}

/// Whether `Enum::Variant` (or, when `allow_self` is set, `Self::Variant`)
/// occurs in `tokens[start..end]`.
fn mentions(
    tokens: &[Token],
    start: usize,
    end: usize,
    enum_name: &str,
    variant: &str,
    allow_self: bool,
) -> bool {
    let end = end.min(tokens.len());
    for j in start..end.saturating_sub(2) {
        let head = tokens[j].text.as_str();
        if (head == enum_name || (allow_self && head == "Self"))
            && tokens[j + 1].text == "::"
            && tokens[j + 2].text == variant
        {
            return true;
        }
    }
    false
}
