//! The epoch-discipline pass: publication epochs are ordered through the
//! blessed monotonic helpers `vaq_wire::epoch::{advances, rolls_back,
//! next}`, never through raw `u64` comparisons or arithmetic — those are
//! how off-by-one rollback windows are born. Equality checks stay free
//! (`pinned == serving` is a matching test, not an ordering).
//!
//! A second rule keeps the response-cache epoch-sound: in `server.rs`,
//! cache `get`/`insert` calls must take the epoch-prefixed `key` built by
//! `epoch_cache_key`, so entries from superseded epochs can never collide
//! with current ones.

use crate::scan::SourceFile;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "epoch-discipline";

/// Operators that order or shift an epoch; all of them must go through the
/// blessed helpers.
const ORDERING_OPS: [&str; 8] = ["<", ">", "<=", ">=", "+", "-", "+=", "-="];

/// Runs the pass over vaq-service and vaq-wire sources (minus the blessed
/// helper module `wire/src/epoch.rs` itself).
pub fn run(files: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let tokens = &file.tokens;
        let cache_key_checked = file.file_name() == "server.rs";
        for i in 0..tokens.len() {
            let line = tokens[i].line;
            if file.is_masked(line) {
                continue;
            }
            let text = tokens[i].text.as_str();
            if tokens[i].is_ident() && (text == "epoch" || text.ends_with("_epoch")) {
                let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
                let next = tokens.get(i + 1).map(|t| t.text.as_str());
                let raw_op = [prev, next]
                    .into_iter()
                    .flatten()
                    .find(|op| ORDERING_OPS.contains(op));
                if let Some(op) = raw_op {
                    findings.push(Finding {
                        pass: PASS,
                        file: file.path.clone(),
                        line,
                        message: format!(
                            "raw epoch ordering/arithmetic `{op}` on `{text}`; use the \
                             blessed helpers vaq_wire::epoch::{{advances, rolls_back, next}}"
                        ),
                    });
                }
            }
            if cache_key_checked {
                cache_key_check(file, i, &mut findings);
            }
        }
    }
    findings
}

/// Flags cache `get`/`insert` calls whose first argument is not the
/// epoch-prefixed `key`.
fn cache_key_check(file: &SourceFile, i: usize, findings: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    if tokens[i].text != "."
        || i + 2 >= tokens.len()
        || tokens[i + 2].text != "("
        || !matches!(tokens[i + 1].text.as_str(), "get" | "insert")
    {
        return;
    }
    // Walk the receiver chain backwards; the rule applies only to calls on
    // the response cache.
    let mut on_cache = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let text = tokens[j].text.as_str();
        if text == "cache" {
            on_cache = true;
        }
        if !(tokens[j].is_ident() || matches!(text, "." | "(" | ")" | "::" | "?")) {
            break;
        }
    }
    if !on_cache {
        return;
    }
    // First argument: skip reference/deref sigils, then require `key`.
    let mut k = i + 3;
    while tokens
        .get(k)
        .is_some_and(|t| matches!(t.text.as_str(), "&" | "*" | "mut"))
    {
        k += 1;
    }
    let first_arg_is_key = tokens.get(k).is_some_and(|t| t.text == "key");
    if !first_arg_is_key {
        findings.push(Finding {
            pass: PASS,
            file: file.path.clone(),
            line: tokens[i + 1].line,
            message: "response-cache access must key on the epoch-prefixed `key` built by \
                      `epoch_cache_key` (first argument is not `key`); un-prefixed keys let \
                      stale-epoch entries collide with current ones"
                .to_string(),
        });
    }
}
