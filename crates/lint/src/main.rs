//! CLI for the workspace lint: `vaq-lint [--root DIR]`.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or scan error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: vaq-lint [--root DIR]

Runs the workspace static-analysis passes (lock-order, panic-path,
wire-exhaustiveness, epoch-discipline, reactor-discipline, bounded-queue,
error-accounting) over the verified-analytics workspace rooted at DIR
(default: the current directory).

Exit codes: 0 clean, 1 findings, 2 usage/scan error.";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("vaq-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vaq-lint: unknown argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match vaq_lint::run_all(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("vaq-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!(
                "vaq-lint: {} finding{} (silence intentional ones with \
                 `// lint:allow(<pass>, <reason>)`)",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("vaq-lint: {e}");
            ExitCode::from(2)
        }
    }
}
