//! The lock-order pass: extracts every mutex/rwlock/condvar acquisition
//! site in vaq-service, ranks it against `lock_ranks.toml`, and fails on
//! any nesting that does not strictly increase in rank — plus a cycle check
//! over the observed nesting graph, so even unranked locks cannot hide an
//! AB/BA hang.
//!
//! The guard model is syntactic: a `let`-bound `.lock()` whose call ends
//! the statement (`let g = x.lock();`) is held until its block closes;
//! every other acquisition is a statement temporary, released at the end of
//! the statement (`;`) — or, for `if`/`while` condition temporaries, when
//! the condition's block opens.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::manifest::Manifest;
use crate::scan::SourceFile;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "lock-order";

/// One lock currently modelled as held at a point in the token walk.
struct Acquisition {
    name: String,
    rank: Option<u32>,
    depth: i32,
    held: bool,
}

/// A nesting edge: `outer` was held while `inner` was acquired.
type Edges = BTreeMap<String, BTreeSet<String>>;
type EdgeSites = BTreeMap<(String, String), (PathBuf, u32)>;

/// Runs the pass over the given files (vaq-service sources, minus the
/// `sync.rs` primitive itself).
pub fn run(files: &[&SourceFile], manifest: Option<&Manifest>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut edges = Edges::new();
    let mut sites = EdgeSites::new();
    let mut first_site: Option<(PathBuf, u32)> = None;
    for file in files {
        scan_file(
            file,
            manifest,
            &mut findings,
            &mut edges,
            &mut sites,
            &mut first_site,
        );
    }
    if manifest.is_none() {
        if let Some((file, line)) = first_site {
            findings.push(Finding {
                pass: PASS,
                file,
                line,
                message: "lock acquisitions found but crates/lint/lock_ranks.toml is missing; \
                          every lock must carry a rank"
                    .to_string(),
            });
        }
    }
    findings.extend(cycle_findings(&edges, &sites));
    findings
}

fn scan_file(
    file: &SourceFile,
    manifest: Option<&Manifest>,
    findings: &mut Vec<Finding>,
    edges: &mut Edges,
    sites: &mut EdgeSites,
    first_site: &mut Option<(PathBuf, u32)>,
) {
    let tokens = &file.tokens;
    let mut depth: i32 = 0;
    let mut active: Vec<Acquisition> = Vec::new();
    let mut stmt_first: Option<String> = None;
    let mut stmt_has_let = false;
    let mut i = 0;
    while i < tokens.len() {
        let text = tokens[i].text.as_str();
        match text {
            "{" => {
                // `if`/`while` condition temporaries are dropped before the
                // block body runs.
                if matches!(stmt_first.as_deref(), Some("if") | Some("while")) {
                    active.retain(|a| a.held || a.depth != depth);
                }
                depth += 1;
                stmt_first = None;
                stmt_has_let = false;
            }
            "}" => {
                active.retain(|a| a.depth < depth);
                depth -= 1;
                stmt_first = None;
                stmt_has_let = false;
            }
            ";" => {
                active.retain(|a| a.held || a.depth != depth);
                stmt_first = None;
                stmt_has_let = false;
            }
            _ => {
                if stmt_first.is_none() && tokens[i].is_ident() {
                    stmt_first = Some(text.to_string());
                }
                if text == "let" {
                    stmt_has_let = true;
                }
                if let Some(kind) = acquisition_at(tokens, i) {
                    let line = tokens[i + 1].line;
                    if !file.is_masked(line) {
                        match kind {
                            Site::Lock => on_lock(
                                file,
                                i,
                                line,
                                depth,
                                stmt_has_let,
                                manifest,
                                &mut active,
                                findings,
                                edges,
                                sites,
                                first_site,
                            ),
                            Site::Wait => {
                                on_wait(file, i, line, manifest, &active, findings);
                            }
                        }
                    }
                }
                declaration_check(file, tokens, i, manifest, findings);
            }
        }
        i += 1;
    }
}

/// The two site shapes the pass ranks.
enum Site {
    /// A zero-argument `.lock()` / `.read()` / `.write()`.
    Lock,
    /// A condvar `.wait(…)`.
    Wait,
}

fn acquisition_at(tokens: &[crate::scan::Token], i: usize) -> Option<Site> {
    if tokens[i].text != "." || i + 2 >= tokens.len() {
        return None;
    }
    let method = tokens[i + 1].text.as_str();
    if tokens[i + 2].text != "(" {
        return None;
    }
    match method {
        "lock" | "read" | "write" if tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")") => {
            Some(Site::Lock)
        }
        "wait" => Some(Site::Wait),
        _ => None,
    }
}

/// The identifier the method is called on: `shared.cache.lock()` → `cache`.
fn receiver(tokens: &[crate::scan::Token], dot: usize) -> String {
    if dot > 0 && tokens[dot - 1].is_ident() {
        tokens[dot - 1].text.clone()
    } else {
        "<expression>".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn on_lock(
    file: &SourceFile,
    i: usize,
    line: u32,
    depth: i32,
    stmt_has_let: bool,
    manifest: Option<&Manifest>,
    active: &mut Vec<Acquisition>,
    findings: &mut Vec<Finding>,
    edges: &mut Edges,
    sites: &mut EdgeSites,
    first_site: &mut Option<(PathBuf, u32)>,
) {
    let name = receiver(&file.tokens, i);
    if first_site.is_none() {
        *first_site = Some((file.path.clone(), line));
    }
    let rank = manifest.and_then(|m| m.get(&name).copied());
    if manifest.is_some() && rank.is_none() {
        findings.push(Finding {
            pass: PASS,
            file: file.path.clone(),
            line,
            message: format!(
                "lock '{name}' has no rank in crates/lint/lock_ranks.toml; \
                 every lock must be ranked"
            ),
        });
    }
    if let Some(new_rank) = rank {
        let innermost = active
            .iter()
            .filter_map(|a| a.rank.map(|r| (r, a.name.clone())))
            .max_by_key(|(r, _)| *r);
        if let Some((held_rank, held_name)) = innermost {
            if new_rank <= held_rank {
                findings.push(Finding {
                    pass: PASS,
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "lock-order violation: acquiring '{name}' (rank {new_rank}) while \
                         holding '{held_name}' (rank {held_rank}); ranks must strictly \
                         increase (see crates/lint/lock_ranks.toml)"
                    ),
                });
            }
        }
    }
    for outer in active.iter() {
        if outer.name != name {
            edges
                .entry(outer.name.clone())
                .or_default()
                .insert(name.clone());
            sites
                .entry((outer.name.clone(), name.clone()))
                .or_insert((file.path.clone(), line));
        }
    }
    // Held until block close only for `let guard = x.lock();` — the call
    // must both sit in a `let` statement and end it.
    let held = stmt_has_let && file.tokens.get(i + 4).map(|t| t.text.as_str()) == Some(";");
    active.push(Acquisition {
        name,
        rank,
        depth,
        held,
    });
}

fn on_wait(
    file: &SourceFile,
    i: usize,
    line: u32,
    manifest: Option<&Manifest>,
    active: &[Acquisition],
    findings: &mut Vec<Finding>,
) {
    let name = receiver(&file.tokens, i);
    if active.is_empty() {
        findings.push(Finding {
            pass: PASS,
            file: file.path.clone(),
            line,
            message: format!(
                "condvar '{name}' waited on with no lock held; a wait must hold \
                 exactly its paired mutex"
            ),
        });
        return;
    }
    let Some(manifest) = manifest else {
        return; // The missing-manifest finding already covers this file.
    };
    let Some(condvar_rank) = manifest.get(&name).copied() else {
        findings.push(Finding {
            pass: PASS,
            file: file.path.clone(),
            line,
            message: format!(
                "condvar '{name}' has no rank in crates/lint/lock_ranks.toml; rank it \
                 equal to the mutex it waits on"
            ),
        });
        return;
    };
    let innermost = active
        .iter()
        .filter_map(|a| a.rank.map(|r| (r, a.name.clone())))
        .max_by_key(|(r, _)| *r);
    if let Some((held_rank, held_name)) = innermost {
        if held_rank != condvar_rank {
            findings.push(Finding {
                pass: PASS,
                file: file.path.clone(),
                line,
                message: format!(
                    "condvar '{name}' (rank {condvar_rank}) waits while '{held_name}' \
                     (rank {held_rank}) is the innermost lock; a condvar's rank must \
                     equal its paired mutex's"
                ),
            });
        }
    }
}

/// Checks `OrderedMutex::new(rank::CONST, …)` declaration sites: the rank
/// constant must correspond to a manifest entry (matched case-insensitively:
/// `rank::CACHE` ↔ `cache`).
fn declaration_check(
    file: &SourceFile,
    tokens: &[crate::scan::Token],
    i: usize,
    manifest: Option<&Manifest>,
    findings: &mut Vec<Finding>,
) {
    let Some(manifest) = manifest else { return };
    if tokens[i].text != "OrderedMutex" || i + 6 >= tokens.len() {
        return;
    }
    let shape = [
        tokens[i + 1].text.as_str(),
        tokens[i + 2].text.as_str(),
        tokens[i + 3].text.as_str(),
        tokens[i + 4].text.as_str(),
        tokens[i + 5].text.as_str(),
    ];
    if shape != ["::", "new", "(", "rank", "::"] {
        return;
    }
    let line = tokens[i + 6].line;
    if file.is_masked(line) {
        return;
    }
    let constant = tokens[i + 6].text.as_str();
    if !manifest.contains_key(&constant.to_lowercase()) {
        findings.push(Finding {
            pass: PASS,
            file: file.path.clone(),
            line,
            message: format!(
                "rank constant `rank::{constant}` has no matching entry in \
                 crates/lint/lock_ranks.toml"
            ),
        });
    }
}

/// DFS cycle detection over the observed nesting graph; each distinct cycle
/// is reported once, anchored at one of its edges.
fn cycle_findings(edges: &Edges, sites: &EdgeSites) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut done: BTreeSet<&String> = BTreeSet::new();
    for start in edges.keys() {
        let mut stack: Vec<&String> = Vec::new();
        dfs(
            start,
            edges,
            sites,
            &mut stack,
            &mut done,
            &mut reported,
            &mut findings,
        );
    }
    findings
}

fn dfs<'a>(
    node: &'a String,
    edges: &'a Edges,
    sites: &EdgeSites,
    stack: &mut Vec<&'a String>,
    done: &mut BTreeSet<&'a String>,
    reported: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    if done.contains(node) {
        return;
    }
    if let Some(position) = stack.iter().position(|&n| n == node) {
        let cycle: Vec<String> = stack[position..].iter().map(|n| n.to_string()).collect();
        let mut key = cycle.clone();
        key.sort();
        if reported.insert(key) {
            let last = stack[stack.len() - 1];
            let (file, line) = sites
                .get(&(last.clone(), node.clone()))
                .cloned()
                .unwrap_or_default();
            let mut path = cycle;
            path.push(node.clone());
            findings.push(Finding {
                pass: PASS,
                file,
                line,
                message: format!(
                    "lock-order cycle: {}; concurrent threads taking these paths can \
                     deadlock",
                    path.join(" -> ")
                ),
            });
        }
        return;
    }
    stack.push(node);
    if let Some(next) = edges.get(node) {
        for n in next {
            dfs(n, edges, sites, stack, done, reported, findings);
        }
    }
    stack.pop();
    done.insert(node);
}
