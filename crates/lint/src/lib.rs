//! `vaq-lint`: workspace-native static analysis for the verified-analytics
//! service tier.
//!
//! Seven passes, each a cheap token-level scan (no rustc internals, no
//! crates.io dependencies), enforce properties the type system cannot:
//!
//! - **lock-order** — every mutex/condvar acquisition in vaq-service is
//!   ranked against `crates/lint/lock_ranks.toml`; nestings must strictly
//!   increase in rank and the observed nesting graph must be acyclic.
//! - **panic-path** — no `unwrap`/`expect`/`panic!`/`todo!` (or hot-path
//!   slice indexing) in non-test vaq-service / vaq-wire code, nor in the
//!   crypto/VO fast-path files (`montgomery.rs`, `sign_pool.rs`,
//!   `proof_cache.rs`); requests die as typed errors, never as worker
//!   panics.
//! - **wire-exhaustiveness** — every `Request`/`Response`/`ErrorCode`
//!   variant has an encode arm, a decode arm, and round-trip test coverage.
//! - **epoch-discipline** — epoch ordering goes through
//!   `vaq_wire::epoch::{advances, rolls_back, next}` and response-cache
//!   accesses key on the epoch-prefixed `key`.
//! - **reactor-discipline** — reactor-thread code (`reactor.rs`,
//!   `conn.rs`) never blocks: no `sleep`, no blocking `recv()`, no condvar
//!   waits, no locks ranked above the `reactor_safe_ceiling`, no blocking
//!   socket I/O.
//! - **bounded-queue** — every growth site of a queue named in
//!   `crates/lint/queue_budgets.toml` sits in a function that tests the
//!   queue's declared budget before inserting.
//! - **error-accounting** — every `ErrorCode` variant has a per-code
//!   counter increment site in vaq-service, so no typed error is invisible
//!   in the deep stats.
//!
//! Any finding can be silenced inline with
//! `// lint:allow(<pass>, <reason>)` on the same line or the line above —
//! the reason is mandatory, and malformed allows are findings themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod bounded_queue;
pub mod epoch_discipline;
pub mod error_accounting;
pub mod lock_order;
pub mod manifest;
pub mod panic_path;
pub mod reactor_discipline;
pub mod scan;
pub mod wire_exhaustive;

pub use manifest::Manifest;
use scan::SourceFile;

/// One reported lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The file the finding is anchored in.
    pub file: PathBuf,
    /// The 1-based line the finding is anchored at.
    pub line: u32,
    /// The pass that produced it (an entry of [`scan::PASSES`], or
    /// `lint-allow` for malformed allow annotations).
    pub pass: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.pass,
            self.message
        )
    }
}

/// A failure to run the lint at all (as opposed to findings).
#[derive(Debug)]
pub enum LintError {
    /// A source file could not be read.
    Io(PathBuf, std::io::Error),
    /// The root does not contain the expected workspace source trees.
    NoSources(PathBuf),
    /// A manifest (`lock_ranks.toml`, `queue_budgets.toml`) exists but
    /// could not be parsed.
    Manifest(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            LintError::NoSources(root) => write!(
                f,
                "no sources found under {} (expected crates/service/src and crates/wire/src)",
                root.display()
            ),
            LintError::Manifest(message) => write!(f, "bad manifest: {message}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Runs all seven passes over the workspace rooted at `root` and returns
/// the surviving (non-allowed) findings, sorted by file and line.
pub fn run_all(root: &Path) -> Result<Vec<Finding>, LintError> {
    let service_src = read_tree(&root.join("crates/service/src"))?;
    let wire_src = read_tree(&root.join("crates/wire/src"))?;
    let wire_tests = read_tree(&root.join("crates/wire/tests"))?;
    if service_src.is_empty() && wire_src.is_empty() {
        return Err(LintError::NoSources(root.to_path_buf()));
    }
    // Crypto / VO fast-path files run per request on the server; the
    // panic-path pass holds them to the reactor's no-panic bar. Only the
    // named hot files are scanned — the rest of those crates (key
    // generation, tree construction) runs owner-side at publish time.
    let hot_files: Vec<SourceFile> = read_tree(&root.join("crates/crypto/src"))?
        .into_iter()
        .chain(read_tree(&root.join("crates/authquery/src"))?)
        .filter(|f| panic_path::CRYPTO_HOT_FILES.contains(&f.file_name()))
        .collect();
    let manifest =
        manifest::load(&root.join("crates/lint/lock_ranks.toml")).map_err(LintError::Manifest)?;
    let budgets = manifest::load_queue_budgets(&root.join("crates/lint/queue_budgets.toml"))
        .map_err(LintError::Manifest)?;

    let mut findings = Vec::new();

    // Malformed allow annotations are findings in their own right and are
    // never suppressible.
    for file in service_src
        .iter()
        .chain(&wire_src)
        .chain(&wire_tests)
        .chain(&hot_files)
    {
        for (line, message) in &file.malformed_allows {
            findings.push(Finding {
                pass: "lint-allow",
                file: file.path.clone(),
                line: *line,
                message: message.clone(),
            });
        }
    }

    let mut raw = Vec::new();

    let lock_files: Vec<&SourceFile> = service_src
        .iter()
        .filter(|f| f.file_name() != "sync.rs")
        .collect();
    raw.extend(lock_order::run(&lock_files, manifest.as_ref()));

    let panic_files: Vec<&SourceFile> = service_src
        .iter()
        .chain(&wire_src)
        .chain(&hot_files)
        .collect();
    raw.extend(panic_path::run(&panic_files));

    let service_files: Vec<&SourceFile> = service_src.iter().collect();
    raw.extend(reactor_discipline::run(&service_files, manifest.as_ref()));
    raw.extend(bounded_queue::run(&service_files, budgets.as_ref()));

    if let Some(envelope) = wire_src.iter().find(|f| f.file_name() == "envelope.rs") {
        let tests: Vec<&SourceFile> = wire_tests.iter().collect();
        raw.extend(wire_exhaustive::run(envelope, &tests));
        raw.extend(error_accounting::run(envelope, &service_files));
    }

    let epoch_files: Vec<&SourceFile> = service_src
        .iter()
        .chain(&wire_src)
        .filter(|f| f.file_name() != "epoch.rs")
        .collect();
    raw.extend(epoch_discipline::run(&epoch_files));

    // Apply allow annotations: an allow suppresses a matching-pass finding
    // on its own line or the line directly below it.
    let mut allows: BTreeMap<&Path, Vec<&scan::Allow>> = BTreeMap::new();
    for file in service_src
        .iter()
        .chain(&wire_src)
        .chain(&wire_tests)
        .chain(&hot_files)
    {
        for allow in &file.allows {
            allows.entry(file.path.as_path()).or_default().push(allow);
        }
    }
    for finding in raw {
        let allowed = allows
            .get(finding.file.as_path())
            .is_some_and(|file_allows| {
                file_allows.iter().any(|a| {
                    a.pass == finding.pass && (a.line == finding.line || a.line + 1 == finding.line)
                })
            });
        if !allowed {
            findings.push(finding);
        }
    }

    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// All `.rs` files under `dir` (recursively), in sorted order; an absent
/// directory is an empty tree.
fn read_tree(dir: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut paths = Vec::new();
    collect_rs_files(dir, &mut paths)?;
    paths.sort();
    paths
        .iter()
        .map(|path| SourceFile::read(path).map_err(|e| LintError::Io(path.clone(), e)))
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(LintError::Io(dir.to_path_buf(), e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}
