//! Lexical front-end for the lint passes: comment/string stripping,
//! `lint:allow` annotation parsing, tokenisation and `#[cfg(test)]` masking.
//!
//! The scanner is deliberately **not** a Rust parser. It works on a token
//! stream plus brace depth, which is all the four workspace passes need,
//! and keeps the crate std-only with no rustc internals. Stripping is
//! length- and line-preserving (comments and literal bodies are blanked,
//! not removed), so every token keeps its real source line.

use std::path::{Path, PathBuf};

/// The pass names a `// lint:allow(<pass>, <reason>)` annotation may name.
pub const PASSES: [&str; 7] = [
    "lock-order",
    "panic-path",
    "wire-exhaustiveness",
    "epoch-discipline",
    "reactor-discipline",
    "bounded-queue",
    "error-accounting",
];

/// Two-character punctuation tokens, matched with maximal munch.
const TWO_CHAR: [&str; 14] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "..", "<<", ">>",
];

/// One lexical token: an identifier/number run or a (one- or two-character)
/// punctuation symbol, with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text.
    pub text: String,
    /// The 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is an identifier (or number) run rather than
    /// punctuation.
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// A parsed, well-formed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The pass the annotation silences.
    pub pass: String,
    /// The line the annotation sits on. It applies to findings on this line
    /// and the line directly below it.
    pub line: u32,
}

/// One scanned source file, ready for the passes to walk.
#[derive(Debug)]
pub struct SourceFile {
    /// The path the file was read from.
    pub path: PathBuf,
    /// The token stream of the stripped source.
    pub tokens: Vec<Token>,
    /// Well-formed allow annotations found in comments.
    pub allows: Vec<Allow>,
    /// Malformed allow annotations: `(line, what is wrong)`. These become
    /// findings of their own and never suppress anything.
    pub malformed_allows: Vec<(u32, String)>,
    /// Per-line flag: `true` when the line belongs to `#[cfg(test)]` /
    /// `#[test]` code (index 0 unused; lines are 1-based).
    masked: Vec<bool>,
}

impl SourceFile {
    /// Reads and scans `path`.
    pub fn read(path: &Path) -> std::io::Result<SourceFile> {
        let source = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_source(path, &source))
    }

    /// Scans an in-memory source (exposed for the self-tests).
    pub fn from_source(path: &Path, source: &str) -> SourceFile {
        let (stripped, comments) = strip(source);
        let (allows, malformed_allows) = parse_allows(&comments);
        let tokens = tokenize(&stripped);
        let line_count = source.lines().count() as u32;
        let masked = masked_lines(&tokens, line_count);
        SourceFile {
            path: path.to_path_buf(),
            tokens,
            allows,
            malformed_allows,
            masked,
        }
    }

    /// Whether `line` belongs to test-only (`#[cfg(test)]` / `#[test]`) code.
    pub fn is_masked(&self, line: u32) -> bool {
        self.masked.get(line as usize).copied().unwrap_or(false)
    }

    /// The file's name (final path component), used for per-file pass scoping.
    pub fn file_name(&self) -> &str {
        self.path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
    }
}

/// Blanks comments and string/char literals (preserving length and
/// newlines) and collects comment bodies with their start lines, so allow
/// annotations can be parsed from exactly the commented text.
fn strip(source: &str) -> (String, Vec<(u32, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            comments.push((start, text));
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else if chars[i] == '\n' {
                    text.push('\n');
                    out.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    text.push(chars[i]);
                    out.push(' ');
                    i += 1;
                }
            }
            comments.push((start, text));
            continue;
        }
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        // Raw (and raw byte) strings: `r"…"`, `r#"…"#`, `br##"…"##`, …
        if !prev_is_ident && (c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r'))) {
            let after_prefix = if c == 'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while chars.get(after_prefix + hashes) == Some(&'#') {
                hashes += 1;
            }
            if chars.get(after_prefix + hashes) == Some(&'"') {
                // Blank the prefix and opening quote.
                for _ in i..=(after_prefix + hashes) {
                    out.push(' ');
                }
                i = after_prefix + hashes + 1;
                // Blank the body until `"` followed by `hashes` hashes.
                while i < chars.len() {
                    if chars[i] == '"'
                        && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
                    {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    if chars[i] == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Byte string `b"…"` shares the plain-string scanner below.
        let string_start = if c == '"' {
            Some(i)
        } else if !prev_is_ident && c == 'b' && chars.get(i + 1) == Some(&'"') {
            out.push(' ');
            i += 1;
            Some(i)
        } else {
            None
        };
        if let Some(start) = string_start {
            debug_assert_eq!(chars[start], '"');
            out.push(' ');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    out.push(' ');
                    if chars[i + 1] == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                if chars[i] == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` in
        // `&'a str` is a lifetime and passes through as punctuation.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped literal: skip the escaped char, then blank to the
                // closing quote.
                out.push_str("   ");
                i += 3;
                while i < chars.len() && chars[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < chars.len() {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                out.push_str("   ");
                i += 3;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    (out, comments)
}

/// Parses `lint:allow(pass, reason)` annotations out of comment bodies.
///
/// An allow must name a known pass **and** carry a non-empty reason;
/// anything else is reported as malformed and suppresses nothing.
fn parse_allows(comments: &[(u32, String)]) -> (Vec<Allow>, Vec<(u32, String)>) {
    const MARKER: &str = "lint:allow";
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (start_line, text) in comments {
        let mut search = 0usize;
        while let Some(found) = text[search..].find(MARKER) {
            let at = search + found;
            let line = start_line + text[..at].matches('\n').count() as u32;
            let rest = &text[at + MARKER.len()..];
            search = at + MARKER.len();
            let Some(body) = rest
                .strip_prefix('(')
                .and_then(|r| r.find(')').map(|close| &r[..close]))
            else {
                malformed.push((
                    line,
                    "malformed lint:allow: expected `lint:allow(<pass>, <reason>)`".to_string(),
                ));
                continue;
            };
            let (pass, reason) = match body.split_once(',') {
                Some((pass, reason)) => (pass.trim(), reason.trim()),
                None => (body.trim(), ""),
            };
            if !PASSES.contains(&pass) {
                malformed.push((
                    line,
                    format!(
                        "lint:allow names unknown pass '{pass}' (expected one of: {})",
                        PASSES.join(", ")
                    ),
                ));
            } else if reason.is_empty() {
                malformed.push((
                    line,
                    format!("lint:allow({pass}) is missing a reason; every exemption must say why"),
                ));
            } else {
                allows.push(Allow {
                    pass: pass.to_string(),
                    line,
                });
            }
        }
    }
    (allows, malformed)
}

/// Tokenises stripped source into identifier runs and punctuation.
fn tokenize(stripped: &str) -> Vec<Token> {
    let chars: Vec<char> = stripped.chars().collect();
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if i + 1 < chars.len() {
            let pair: String = [c, chars[i + 1]].iter().collect();
            if TWO_CHAR.contains(&pair.as_str()) {
                tokens.push(Token { text: pair, line });
                i += 2;
                continue;
            }
        }
        tokens.push(Token {
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    tokens
}

/// Computes the set of lines covered by test-only items: any item (or
/// module) under a `#[test]`-ish attribute — an outer attribute containing
/// the identifier `test` and not `not` (so `#[cfg(not(test))]` stays live).
/// The mask runs from the attribute through the end of the following item
/// (its closing `}`, or `;` for item-less forms).
fn masked_lines(tokens: &[Token], line_count: u32) -> Vec<bool> {
    let mut masked = vec![false; line_count as usize + 2];
    let mut i = 0;
    while i < tokens.len() {
        // Outer attributes only: `#[…]`, not the crate-level `#![…]`.
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(tokens, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
            let (end, _) = scan_attribute(tokens, j + 1);
            j = end + 1;
        }
        // Mask through the item body: to the matching `}` of its first
        // top-level brace, or to a `;` before any brace opens.
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < tokens.len() {
            end_line = tokens[j].line;
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for line in start_line..=end_line {
            if let Some(flag) = masked.get_mut(line as usize) {
                *flag = true;
            }
        }
        i = j;
    }
    masked
}

/// Scans one attribute starting at the `[` token; returns the index of the
/// matching `]` and whether the attribute marks test-only code.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (j, has_test && !has_not);
                }
            }
            "test" => has_test = true,
            "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (tokens.len().saturating_sub(1), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(source: &str) -> SourceFile {
        SourceFile::from_source(Path::new("mem.rs"), source)
    }

    #[test]
    fn strings_comments_and_chars_are_blanked_but_lines_survive() {
        let file = scan(concat!(
            "let a = \"un\\\"wrap()\"; // .unwrap() in comment\n",
            "let b = r#\"panic!()\"#;\n",
            "let c = '\\n'; let lt: &'static str = b\"todo!()\";\n",
            "a.unwrap();\n",
        ));
        let unwraps: Vec<u32> = file
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.line)
            .collect();
        assert_eq!(unwraps, vec![4]);
        assert!(!file.tokens.iter().any(|t| t.text == "panic"));
        assert!(!file.tokens.iter().any(|t| t.text == "todo"));
        assert!(file.tokens.iter().any(|t| t.text == "static"));
    }

    #[test]
    fn allow_annotations_parse_with_pass_and_reason() {
        let file = scan(concat!(
            "// lint:allow(panic-path, constant index below a checked bound)\n",
            "x[0].unwrap();\n",
            "// lint:allow(panic-path)\n",
            "// lint:allow(bogus-pass, reason)\n",
        ));
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].pass, "panic-path");
        assert_eq!(file.allows[0].line, 1);
        assert_eq!(file.malformed_allows.len(), 2);
        assert_eq!(file.malformed_allows[0].0, 3);
        assert!(file.malformed_allows[0].1.contains("missing a reason"));
        assert!(file.malformed_allows[1].1.contains("unknown pass"));
    }

    #[test]
    fn cfg_test_items_are_masked_but_cfg_not_test_is_live() {
        let file = scan(concat!(
            "fn live() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn helper() { y.unwrap(); }\n",
            "}\n",
            "#[cfg(not(test))]\n",
            "fn also_live() { z.unwrap(); }\n",
            "#[test]\n",
            "fn a_test() { w.unwrap(); }\n",
        ));
        assert!(!file.is_masked(1));
        assert!(file.is_masked(2));
        assert!(file.is_masked(4));
        assert!(file.is_masked(5));
        assert!(!file.is_masked(6));
        assert!(!file.is_masked(7));
        assert!(file.is_masked(9));
    }

    #[test]
    fn two_char_punctuation_is_munched() {
        let file = scan("a..b; e::f; g->h; i=>j; k<=l;\n");
        let texts: Vec<&str> = file.tokens.iter().map(|t| t.text.as_str()).collect();
        for expected in ["..", "::", "->", "=>", "<="] {
            assert!(texts.contains(&expected), "missing {expected} in {texts:?}");
        }
    }
}
