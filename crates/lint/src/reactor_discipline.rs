//! The reactor-discipline pass: code that runs on the reactor thread
//! (`reactor.rs`, `conn.rs`) must never block. One blocked sweep stalls
//! every connection at once — the multiplexed design concentrates what used
//! to be a per-connection hazard into a whole-service one — so the pass
//! forbids, in non-test reactor-thread code:
//!
//! - `sleep(…)` calls (`std::thread::sleep` and friends);
//! - blocking channel receives: `.recv()` must be `recv_timeout` / `try_recv`;
//! - condvar `.wait(…)`;
//! - `.lock()` / `.read()` / `.write()` on a lock ranked above the
//!   `reactor_safe_ceiling` entry of `crates/lint/lock_ranks.toml` (or on
//!   an unranked lock) — high-ranked locks are worker-side and may be held
//!   across request execution;
//! - `.set_nonblocking(false)` and blocking stream I/O (`read_exact`,
//!   `write_all`, `read_to_end`, `read_to_string`) — every reactor socket
//!   op must be a non-blocking pump.
//!
//! Deliberate pacing (the shutdown flush nap) is suppressed with
//! `// lint:allow(reactor-discipline, <reason>)`, so every blocking site in
//! the reactor carries a written justification. The runtime cross-check is
//! the sweep-duration stall watchdog (`Metrics::observe_sweep`).

use crate::manifest::Manifest;
use crate::scan::SourceFile;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "reactor-discipline";

/// Files whose non-test code runs on the reactor thread.
const REACTOR_FILES: [&str; 2] = ["reactor.rs", "conn.rs"];

/// The `lock_ranks.toml` entry naming the highest lock rank the reactor
/// thread may acquire.
pub const CEILING_KEY: &str = "reactor_safe_ceiling";

/// Stream methods that block until their transfer completes.
const BLOCKING_IO_METHODS: [&str; 4] = ["read_exact", "write_all", "read_to_end", "read_to_string"];

/// Runs the pass over the vaq-service sources; only the reactor-thread
/// files are scanned, but the whole tree is passed in so a renamed reactor
/// file cannot silently drop out of coverage.
pub fn run(files: &[&SourceFile], manifest: Option<&Manifest>) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Real crate trees always carry a `lib.rs`; the unit-test fixture trees
    // don't, so they are exempt from the presence check (same contract as
    // the panic-path pass).
    if let Some(lib) = files.iter().find(|f| f.file_name() == "lib.rs") {
        for name in REACTOR_FILES {
            if !files.iter().any(|f| f.file_name() == name) {
                findings.push(finding(
                    lib,
                    1,
                    format!(
                        "reactor-thread file `{name}` is checked by the reactor-discipline \
                         pass but missing from the scanned tree; fix the scan or update \
                         REACTOR_FILES after a rename"
                    ),
                ));
            }
        }
    }
    let ceiling = manifest.and_then(|m| m.get(CEILING_KEY).copied());
    for file in files
        .iter()
        .filter(|f| REACTOR_FILES.contains(&f.file_name()))
    {
        scan_file(file, manifest, ceiling, &mut findings);
    }
    findings
}

fn scan_file(
    file: &SourceFile,
    manifest: Option<&Manifest>,
    ceiling: Option<u32>,
    findings: &mut Vec<Finding>,
) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if file.is_masked(line) {
            continue;
        }
        let text = tokens[i].text.as_str();
        // `sleep(…)` — `std::thread::sleep` or any other sleeping call.
        if text == "sleep" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            findings.push(finding(
                file,
                line,
                "`sleep(…)` on the reactor thread stalls every connection at once; \
                 pace with `recv_timeout` on the completion channel instead"
                    .to_string(),
            ));
            continue;
        }
        if text != "." || i + 2 >= tokens.len() {
            continue;
        }
        let method = tokens[i + 1].text.as_str();
        let method_line = tokens[i + 1].line;
        if tokens[i + 2].text != "(" {
            continue;
        }
        let zero_arg = tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")");
        if method == "recv" && zero_arg {
            findings.push(finding(
                file,
                method_line,
                "blocking channel `.recv()` on the reactor thread; use `recv_timeout` \
                 (bounded nap) or `try_recv` (drain) so a quiet channel cannot freeze \
                 the sweep loop"
                    .to_string(),
            ));
        } else if method == "wait" {
            findings.push(finding(
                file,
                method_line,
                "condvar `.wait(…)` on the reactor thread blocks the sweep loop for \
                 every connection; signal the reactor through the completion channel \
                 instead"
                    .to_string(),
            ));
        } else if matches!(method, "lock" | "read" | "write") && zero_arg {
            lock_check(file, i, method_line, manifest, ceiling, findings);
        } else if method == "set_nonblocking"
            && tokens.get(i + 3).map(|t| t.text.as_str()) == Some("false")
        {
            findings.push(finding(
                file,
                method_line,
                "`.set_nonblocking(false)` turns a reactor socket back into a blocking \
                 one; every reactor socket op must stay a non-blocking pump"
                    .to_string(),
            ));
        } else if BLOCKING_IO_METHODS.contains(&method) {
            findings.push(finding(
                file,
                method_line,
                format!(
                    "blocking stream I/O `.{method}(…)` on the reactor thread; pump \
                     partial reads/writes through the non-blocking buffers instead"
                ),
            ));
        }
    }
}

/// Ranks a `.lock()`-shaped acquisition on the reactor thread against the
/// `reactor_safe_ceiling` manifest entry.
fn lock_check(
    file: &SourceFile,
    dot: usize,
    line: u32,
    manifest: Option<&Manifest>,
    ceiling: Option<u32>,
    findings: &mut Vec<Finding>,
) {
    // No manifest at all is already a lock-order finding; don't double-report.
    let Some(manifest) = manifest else { return };
    let name = receiver(file, dot);
    let Some(ceiling) = ceiling else {
        findings.push(finding(
            file,
            line,
            format!(
                "lock '{name}' taken on the reactor thread but \
                 crates/lint/lock_ranks.toml has no `{CEILING_KEY}` entry to rank it \
                 against"
            ),
        ));
        return;
    };
    match manifest.get(&name).copied() {
        None => findings.push(finding(
            file,
            line,
            format!(
                "unranked lock '{name}' taken on the reactor thread; rank it in \
                 crates/lint/lock_ranks.toml at or below `{CEILING_KEY}` ({ceiling}) \
                 or keep it off the reactor"
            ),
        )),
        Some(rank) if rank > ceiling => findings.push(finding(
            file,
            line,
            format!(
                "lock '{name}' (rank {rank}) taken on the reactor thread exceeds \
                 `{CEILING_KEY}` ({ceiling}); locks above the ceiling are worker-side \
                 and may be held across request execution, which would stall every \
                 connection"
            ),
        )),
        Some(_) => {}
    }
}

/// The identifier the method is called on: `shared.cache.lock()` → `cache`.
fn receiver(file: &SourceFile, dot: usize) -> String {
    if dot > 0 && file.tokens[dot - 1].is_ident() {
        file.tokens[dot - 1].text.clone()
    } else {
        "<expression>".to_string()
    }
}

fn finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        pass: PASS,
        file: file.path.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;

    fn file(name: &str, source: &str) -> SourceFile {
        SourceFile::from_source(Path::new(name), source)
    }

    fn manifest(entries: &[(&str, u32)]) -> Manifest {
        entries
            .iter()
            .map(|(name, rank)| (name.to_string(), *rank))
            .collect()
    }

    #[test]
    fn every_blocking_shape_is_flagged_in_reactor_files() {
        let source = concat!(
            "fn f(rx: &Receiver<C>, shared: &S, stream: &TcpStream) {\n",
            "    std::thread::sleep(NAP);\n",
            "    let c = rx.recv();\n",
            "    let g = shared.cache.lock();\n",
            "    shared.done.wait(g);\n",
            "    stream.set_nonblocking(false);\n",
            "    stream.write_all(buf);\n",
            "}\n",
        );
        let reactor = file("crates/service/src/reactor.rs", source);
        let ranks = manifest(&[("cache", 40), ("reactor_safe_ceiling", 20)]);
        let findings = run(&[&reactor], Some(&ranks));
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6, 7], "{findings:?}");
        assert!(findings[2].message.contains("rank 40"), "{findings:?}");
    }

    #[test]
    fn non_reactor_files_and_test_code_are_exempt() {
        let elsewhere = file(
            "crates/service/src/pool.rs",
            "fn f(rx: &Receiver<C>) { let c = rx.recv(); }\n",
        );
        assert!(run(&[&elsewhere], None).is_empty());

        let test_only = file(
            "crates/service/src/conn.rs",
            "#[test]\nfn t() { std::thread::sleep(NAP); }\n",
        );
        assert!(run(&[&test_only], None).is_empty());
    }

    #[test]
    fn nonblocking_shapes_and_safe_locks_pass() {
        let source = concat!(
            "fn f(rx: &Receiver<C>, shared: &S, stream: &TcpStream) {\n",
            "    let a = rx.try_recv();\n",
            "    let b = rx.recv_timeout(NAP);\n",
            "    let g = shared.receiver.lock();\n",
            "    stream.set_nonblocking(true);\n",
            "    let n = stream.read(&mut buf);\n",
            "}\n",
        );
        let reactor = file("crates/service/src/reactor.rs", source);
        let ranks = manifest(&[("receiver", 10), ("reactor_safe_ceiling", 20)]);
        let findings = run(&[&reactor], Some(&ranks));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unranked_locks_and_a_missing_ceiling_are_findings() {
        let reactor = file(
            "crates/service/src/reactor.rs",
            "fn f(shared: &S) { let g = shared.mystery.lock(); }\n",
        );
        let with_ceiling = manifest(&[("reactor_safe_ceiling", 20)]);
        let findings = run(&[&reactor], Some(&with_ceiling));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("unranked"), "{findings:?}");

        let no_ceiling = manifest(&[("mystery", 10)]);
        let findings = run(&[&reactor], Some(&no_ceiling));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains(CEILING_KEY), "{findings:?}");
    }

    #[test]
    fn a_missing_reactor_file_is_a_finding_in_a_real_tree() {
        let lib = file("crates/service/src/lib.rs", "pub mod reactor;\n");
        let reactor = file("crates/service/src/reactor.rs", "fn ok() {}\n");
        let findings = run(&[&lib, &reactor], None);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`conn.rs`"), "{findings:?}");
    }
}
