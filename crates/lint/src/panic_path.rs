//! The panic-path pass: forbids `.unwrap()` / `.expect(…)` / `panic!` /
//! `todo!` / `unimplemented!` in non-test code of vaq-service and vaq-wire,
//! plus direct slice/array indexing in the request-handling hot-path files
//! (`server.rs`, `frame.rs`, `io.rs`, `envelope.rs`). A request must never
//! be able to kill its worker: errors cross the wire as typed
//! `ServiceError` / `WireError` replies.

use crate::scan::SourceFile;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "panic-path";

/// Files on the request-handling hot path, where direct indexing is also
/// forbidden (a forged frame must not be able to panic a worker).
const INDEX_CHECKED_FILES: [&str; 4] = ["server.rs", "frame.rs", "io.rs", "envelope.rs"];

/// Keywords that make a preceding-token `[` a type, pattern or literal
/// rather than an indexing expression.
const NON_VALUE_KEYWORDS: [&str; 25] = [
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return",
];
const NON_VALUE_KEYWORDS_TAIL: [&str; 8] = [
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

fn is_non_value_keyword(text: &str) -> bool {
    NON_VALUE_KEYWORDS.contains(&text) || NON_VALUE_KEYWORDS_TAIL.contains(&text)
}

/// Runs the pass over vaq-service and vaq-wire sources.
pub fn run(files: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let index_checked = INDEX_CHECKED_FILES.contains(&file.file_name());
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let line = tokens[i].line;
            if file.is_masked(line) {
                continue;
            }
            let text = tokens[i].text.as_str();
            let next = tokens.get(i + 1).map(|t| t.text.as_str());
            if text == "." && i + 2 < tokens.len() {
                let method = tokens[i + 1].text.as_str();
                let call = tokens[i + 2].text == "(";
                if call
                    && method == "unwrap"
                    && tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")")
                {
                    findings.push(finding(
                        file,
                        tokens[i + 1].line,
                        "`.unwrap()` on a non-test path; return a typed error \
                         (ServiceError / WireError) instead",
                    ));
                } else if call && method == "expect" {
                    findings.push(finding(
                        file,
                        tokens[i + 1].line,
                        "`.expect(…)` on a non-test path; return a typed error \
                         (ServiceError / WireError) instead",
                    ));
                }
                continue;
            }
            if next == Some("!") && matches!(text, "panic" | "todo" | "unimplemented") {
                findings.push(finding(
                    file,
                    line,
                    &format!(
                        "`{text}!` on a non-test path; a request must never be able to \
                         kill its worker — return a typed error instead"
                    ),
                ));
                continue;
            }
            if index_checked && text == "[" && i > 0 {
                let prev = &tokens[i - 1];
                // `&'a [u8]`: the token before the `[` is a lifetime name,
                // not a value — don't mistake the slice type for indexing.
                let lifetime = i > 1 && tokens[i - 2].text == "'";
                let indexes_value = !lifetime
                    && (prev.text == ")"
                        || prev.text == "]"
                        || (prev.is_ident() && !is_non_value_keyword(&prev.text)));
                if indexes_value {
                    findings.push(finding(
                        file,
                        line,
                        "slice/array indexing on a request-handling path can panic on \
                         attacker-shaped input; use `.get(…)` or a checked bound",
                    ));
                }
            }
        }
    }
    findings
}

fn finding(file: &SourceFile, line: u32, message: &str) -> Finding {
    Finding {
        pass: PASS,
        file: file.path.clone(),
        line,
        message: message.to_string(),
    }
}
