//! The panic-path pass: forbids `.unwrap()` / `.expect(…)` / `panic!` /
//! `todo!` / `unimplemented!` in non-test code of vaq-service and vaq-wire,
//! plus direct slice/array indexing in the request-handling hot-path files
//! (`server.rs`, `frame.rs`, `reactor.rs`, `conn.rs`, `io.rs`,
//! `envelope.rs`) and the per-request crypto fast-path files
//! (`montgomery.rs`, `sign_pool.rs`, `proof_cache.rs`). A request must
//! never be able to kill its worker — or, since the evented rewrite, the
//! reactor thread that owns every connection: errors cross the wire as
//! typed `ServiceError` / `WireError` replies.
//!
//! When a real crate tree is scanned (recognised by the presence of a
//! `lib.rs`), every index-checked file must actually be in the scan — a
//! rename that silently dropped a hot-path file from coverage is itself a
//! finding.

use crate::scan::SourceFile;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "panic-path";

/// Files on the request-handling hot path, where direct indexing is also
/// forbidden (a forged frame must not be able to panic a worker — and the
/// reactor and per-connection state machines run *every* byte of every
/// frame, so they are held to the same bar).
const INDEX_CHECKED_FILES: [&str; 9] = [
    "server.rs",
    "frame.rs",
    "reactor.rs",
    "conn.rs",
    "io.rs",
    "envelope.rs",
    "montgomery.rs",
    "sign_pool.rs",
    "proof_cache.rs",
];

/// Crypto / VO fast-path files outside the service and wire trees that the
/// panic-path pass also covers: they run once per signature or per query on
/// the server's hot path, so a data-dependent panic there is exactly as
/// fatal as one in the reactor. `run_all` scans their home crates for just
/// these names.
pub const CRYPTO_HOT_FILES: [&str; 3] = ["montgomery.rs", "sign_pool.rs", "proof_cache.rs"];

/// Keywords that make a preceding-token `[` a type, pattern or literal
/// rather than an indexing expression.
const NON_VALUE_KEYWORDS: [&str; 25] = [
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return",
];
const NON_VALUE_KEYWORDS_TAIL: [&str; 8] = [
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

fn is_non_value_keyword(text: &str) -> bool {
    NON_VALUE_KEYWORDS.contains(&text) || NON_VALUE_KEYWORDS_TAIL.contains(&text)
}

/// Runs the pass over vaq-service and vaq-wire sources.
pub fn run(files: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // A hot-path file that disappears from the scan (renamed, moved, or
    // deleted) would silently lose its indexing coverage. Real crate trees
    // always carry a `lib.rs`; the unit-test fixture trees don't, so they
    // are exempt from the presence check.
    if let Some(lib) = files.iter().find(|f| f.file_name() == "lib.rs") {
        for name in INDEX_CHECKED_FILES {
            if !files.iter().any(|f| f.file_name() == name) {
                findings.push(finding(
                    lib,
                    1,
                    &format!(
                        "hot-path file `{name}` is index-checked by the panic-path pass \
                         but missing from the scanned tree; fix the scan or update \
                         INDEX_CHECKED_FILES after a rename"
                    ),
                ));
            }
        }
    }
    for file in files {
        let index_checked = INDEX_CHECKED_FILES.contains(&file.file_name());
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let line = tokens[i].line;
            if file.is_masked(line) {
                continue;
            }
            let text = tokens[i].text.as_str();
            let next = tokens.get(i + 1).map(|t| t.text.as_str());
            if text == "." && i + 2 < tokens.len() {
                let method = tokens[i + 1].text.as_str();
                let call = tokens[i + 2].text == "(";
                if call
                    && method == "unwrap"
                    && tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")")
                {
                    findings.push(finding(
                        file,
                        tokens[i + 1].line,
                        "`.unwrap()` on a non-test path; return a typed error \
                         (ServiceError / WireError) instead",
                    ));
                } else if call && method == "expect" {
                    findings.push(finding(
                        file,
                        tokens[i + 1].line,
                        "`.expect(…)` on a non-test path; return a typed error \
                         (ServiceError / WireError) instead",
                    ));
                }
                continue;
            }
            if next == Some("!") && matches!(text, "panic" | "todo" | "unimplemented") {
                findings.push(finding(
                    file,
                    line,
                    &format!(
                        "`{text}!` on a non-test path; a request must never be able to \
                         kill its worker — return a typed error instead"
                    ),
                ));
                continue;
            }
            if index_checked && text == "[" && i > 0 {
                let prev = &tokens[i - 1];
                // `&'a [u8]`: the token before the `[` is a lifetime name,
                // not a value — don't mistake the slice type for indexing.
                let lifetime = i > 1 && tokens[i - 2].text == "'";
                let indexes_value = !lifetime
                    && (prev.text == ")"
                        || prev.text == "]"
                        || (prev.is_ident() && !is_non_value_keyword(&prev.text)));
                if indexes_value {
                    findings.push(finding(
                        file,
                        line,
                        "slice/array indexing on a request-handling path can panic on \
                         attacker-shaped input; use `.get(…)` or a checked bound",
                    ));
                }
            }
        }
    }
    findings
}

fn finding(file: &SourceFile, line: u32, message: &str) -> Finding {
    Finding {
        pass: PASS,
        file: file.path.clone(),
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;

    fn file(name: &str, source: &str) -> SourceFile {
        SourceFile::from_source(Path::new(name), source)
    }

    #[test]
    fn missing_index_checked_file_is_a_finding_in_a_real_tree() {
        let lib = file("crates/service/src/lib.rs", "pub mod server;\n");
        let present: Vec<SourceFile> = INDEX_CHECKED_FILES
            .iter()
            .filter(|name| **name != "conn.rs")
            .map(|name| file(&format!("crates/service/src/{name}"), "fn ok() {}\n"))
            .collect();
        let mut refs: Vec<&SourceFile> = vec![&lib];
        refs.extend(present.iter());
        let findings = run(&refs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, Path::new("crates/service/src/lib.rs"));
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("`conn.rs`"), "{findings:?}");
    }

    #[test]
    fn complete_tree_and_fixture_tree_pass_the_presence_check() {
        let lib = file("crates/service/src/lib.rs", "pub mod server;\n");
        let present: Vec<SourceFile> = INDEX_CHECKED_FILES
            .iter()
            .map(|name| file(&format!("crates/service/src/{name}"), "fn ok() {}\n"))
            .collect();
        let mut refs: Vec<&SourceFile> = vec![&lib];
        refs.extend(present.iter());
        assert!(run(&refs).is_empty());

        // Fixture trees carry no lib.rs and are exempt: a lone server.rs
        // must not drag in five missing-file findings.
        let lone = file(
            "fixtures/panic_path_good/crates/service/src/server.rs",
            "fn ok() {}\n",
        );
        assert!(run(&[&lone]).is_empty());
    }

    #[test]
    fn reactor_and_conn_are_index_checked() {
        for name in ["reactor.rs", "conn.rs"] {
            let source = "fn f(xs: &[u8]) -> u8 { xs[0] }\n";
            let checked = file(&format!("crates/service/src/{name}"), source);
            let findings = run(&[&checked]);
            assert_eq!(findings.len(), 1, "{name}: {findings:?}");
            assert!(findings[0].message.contains("indexing"), "{findings:?}");
        }
    }
}
