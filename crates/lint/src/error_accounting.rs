//! The error-accounting pass: every `ErrorCode` variant declared in
//! `crates/wire/src/envelope.rs` must have a per-code counter increment
//! site in `crates/service/src` — concretely, a fully-qualified
//! `ErrorCode::Variant` inside the argument list of a call to
//! `record_error`, `error_reply` or `error_response` (the three funnels
//! that feed `Metrics::errors_by_code`). This mirrors the
//! wire-exhaustiveness contract on the service side: a new error code that
//! ships without an accounting site would be invisible in the deep stats,
//! and operators debug what they can see.
//!
//! Findings anchor at the variant's declaration line in `envelope.rs`,
//! because the fix usually lands with the variant. Trees with no service
//! sources (the wire-only lint fixtures declare `ErrorCode` enums of their
//! own) skip the pass.

use std::collections::BTreeSet;

use crate::scan::SourceFile;
use crate::wire_exhaustive::enum_variants;
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "error-accounting";

/// The service-side funnels whose argument lists count as accounting
/// evidence; all three record into `Metrics::errors_by_code`.
const COUNTING_FNS: [&str; 3] = ["record_error", "error_reply", "error_response"];

/// Runs the pass: `ErrorCode` variants come from the wire `envelope.rs`,
/// evidence from the vaq-service sources.
pub fn run(envelope: &SourceFile, service: &[&SourceFile]) -> Vec<Finding> {
    if service.is_empty() {
        return Vec::new();
    }
    let variants = enum_variants(envelope, "ErrorCode");
    if variants.is_empty() {
        return Vec::new();
    }
    let mut counted: BTreeSet<String> = BTreeSet::new();
    for file in service {
        collect_counted(file, &mut counted);
    }
    variants
        .into_iter()
        .filter(|(variant, _)| !counted.contains(variant))
        .map(|(variant, line)| Finding {
            pass: PASS,
            file: envelope.path.clone(),
            line,
            message: format!(
                "`ErrorCode::{variant}` has no per-code counter increment site in \
                 crates/service/src; pass it through record_error / error_reply / \
                 error_response so the deep stats account for it"
            ),
        })
        .collect()
}

/// Collects every `ErrorCode::X` mentioned inside the balanced argument
/// list of a non-test call to one of the counting funnels.
fn collect_counted(file: &SourceFile, counted: &mut BTreeSet<String>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if !COUNTING_FNS.contains(&tokens[i].text.as_str())
            || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(")
            || file.is_masked(tokens[i].line)
        {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "ErrorCode" if tokens.get(j + 1).map(|t| t.text.as_str()) == Some("::") => {
                    if let Some(variant) = tokens.get(j + 2) {
                        if variant.is_ident() {
                            counted.insert(variant.text.clone());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;

    fn file(name: &str, source: &str) -> SourceFile {
        SourceFile::from_source(Path::new(name), source)
    }

    const ENVELOPE: &str = concat!(
        "pub enum ErrorCode {\n",
        "    Malformed,\n",
        "    Overloaded,\n",
        "}\n",
    );

    #[test]
    fn an_uncounted_variant_is_flagged_at_its_declaration_line() {
        let envelope = file("crates/wire/src/envelope.rs", ENVELOPE);
        let server = file(
            "crates/service/src/server.rs",
            "fn f(m: &Metrics) { error_reply(m, ErrorCode::Malformed, text()); }\n",
        );
        let findings = run(&envelope, &[&server]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(
            findings[0].message.contains("`ErrorCode::Overloaded`"),
            "{findings:?}"
        );
    }

    #[test]
    fn evidence_in_any_counting_funnel_covers_the_variant() {
        let envelope = file("crates/wire/src/envelope.rs", ENVELOPE);
        let server = file(
            "crates/service/src/server.rs",
            concat!(
                "fn f(m: &Metrics) {\n",
                "    m.record_error(ErrorCode::Malformed);\n",
                "    error_response(shared, ErrorCode::Overloaded, text());\n",
                "}\n",
            ),
        );
        assert!(run(&envelope, &[&server]).is_empty());
    }

    #[test]
    fn mentions_outside_a_funnel_call_or_in_tests_do_not_count() {
        let envelope = file("crates/wire/src/envelope.rs", ENVELOPE);
        let server = file(
            "crates/service/src/server.rs",
            concat!(
                "fn f(m: &Metrics) {\n",
                "    let code = ErrorCode::Malformed;\n",
                "    m.record_error(code);\n",
                "}\n",
                "#[test]\n",
                "fn t(m: &Metrics) { m.record_error(ErrorCode::Overloaded); }\n",
            ),
        );
        let findings = run(&envelope, &[&server]);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn wire_only_trees_skip_the_pass() {
        let envelope = file("crates/wire/src/envelope.rs", ENVELOPE);
        assert!(run(&envelope, &[]).is_empty());
    }
}
