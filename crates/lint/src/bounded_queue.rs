//! The bounded-queue pass: every growth site of a queue field named in
//! `crates/lint/queue_budgets.toml` must sit in a function that tests the
//! queue's declared budget before inserting. Unbounded queues are how a
//! slow reader (or a flood of requests) turns into unbounded memory; the
//! manifest pins each queue to the budget expression that bounds it, and
//! the pass keeps the test next to the push.
//!
//! A growth site is `.push(…)` / `.push_back(…)` / `.extend(…)` /
//! `.send(…)` whose receiver identifier is a manifest key. `push_front` is
//! deliberately not a growth method: in this codebase it only re-inserts a
//! just-popped element (net growth zero), and `try_send` is bounded by
//! construction. The budget test is syntactic: the budget identifier must
//! appear somewhere in the enclosing function — a `debug_assert!` against
//! the budget satisfies it, which is exactly the idiom for queues bounded
//! upstream.
//!
//! With no `queue_budgets.toml` in the scanned tree the pass is inert.

use crate::manifest::QueueBudgets;
use crate::scan::{SourceFile, Token};
use crate::Finding;

/// The pass name, as used in findings and `lint:allow`.
pub const PASS: &str = "bounded-queue";

/// Methods that grow a queue.
const GROWTH_METHODS: [&str; 4] = ["push", "push_back", "extend", "send"];

/// Runs the pass over the vaq-service sources.
pub fn run(files: &[&SourceFile], budgets: Option<&QueueBudgets>) -> Vec<Finding> {
    let Some(budgets) = budgets else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    for file in files {
        let tokens = &file.tokens;
        let regions = fn_regions(tokens);
        for i in 0..tokens.len() {
            if tokens[i].text != "." || i + 2 >= tokens.len() {
                continue;
            }
            let method = tokens[i + 1].text.as_str();
            if !GROWTH_METHODS.contains(&method) || tokens[i + 2].text != "(" {
                continue;
            }
            let line = tokens[i + 1].line;
            if file.is_masked(line) || i == 0 || !tokens[i - 1].is_ident() {
                continue;
            }
            let field = tokens[i - 1].text.as_str();
            let Some(budget) = budgets.get(field) else {
                continue;
            };
            let tested = innermost_region(&regions, i)
                .is_some_and(|(start, end)| tokens[start..end].iter().any(|t| t.text == *budget));
            if !tested {
                findings.push(Finding {
                    pass: PASS,
                    file: file.path.clone(),
                    line,
                    message: format!(
                        "`{field}.{method}(…)` grows bounded queue `{field}` in a \
                         function that never tests its budget `{budget}` \
                         (crates/lint/queue_budgets.toml); check the budget before \
                         inserting"
                    ),
                });
            }
        }
    }
    findings
}

/// Token ranges `(fn_keyword, body_end)` of every function with a body;
/// bodyless declarations (trait methods, extern blocks) are skipped.
fn fn_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "fn" {
            continue;
        }
        // Find the body `{`, stopping at a `;` outside parens/brackets
        // (const-generic `[u8; N]` return types keep their `;` nested).
        let mut j = i + 1;
        let mut nest = 0i32;
        let mut body = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                ";" if nest == 0 => break,
                "{" if nest == 0 => {
                    body = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body else { continue };
        let mut depth = 0i32;
        let mut k = open;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        regions.push((i, k + 1));
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    regions
}

/// The innermost function region containing token `i` (nested fns shadow
/// their enclosing one).
fn innermost_region(regions: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    regions
        .iter()
        .copied()
        .filter(|&(start, end)| start < i && i < end)
        .max_by_key(|&(start, _)| start)
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;

    fn file(source: &str) -> SourceFile {
        SourceFile::from_source(Path::new("crates/service/src/conn.rs"), source)
    }

    fn budgets(entries: &[(&str, &str)]) -> QueueBudgets {
        entries
            .iter()
            .map(|(field, budget)| (field.to_string(), budget.to_string()))
            .collect()
    }

    #[test]
    fn an_untested_push_onto_a_budgeted_queue_is_a_finding() {
        let src = file("fn f(&mut self, x: T) { self.write_queue.push_back(x); }\n");
        let b = budgets(&[("write_queue", "write_queue_budget_bytes")]);
        let findings = run(&[&src], Some(&b));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("write_queue_budget_bytes"),
            "{findings:?}"
        );
    }

    #[test]
    fn a_budget_test_in_the_enclosing_fn_satisfies_the_pass() {
        let src = file(concat!(
            "fn f(&mut self, x: T, write_queue_budget_bytes: usize) -> bool {\n",
            "    if self.queued + x.len() > write_queue_budget_bytes { return false; }\n",
            "    self.write_queue.push_back(x);\n",
            "    true\n",
            "}\n",
        ));
        let b = budgets(&[("write_queue", "write_queue_budget_bytes")]);
        assert!(run(&[&src], Some(&b)).is_empty());
    }

    #[test]
    fn unlisted_queues_missing_manifest_and_test_code_are_exempt() {
        let src = file("fn f(&mut self, x: T) { self.scratch.push(x); }\n");
        let b = budgets(&[("write_queue", "write_queue_budget_bytes")]);
        assert!(run(&[&src], Some(&b)).is_empty());
        assert!(run(&[&src], None).is_empty());

        let test_only = file("#[test]\nfn t() { self.write_queue.push_back(x); }\n");
        assert!(run(&[&test_only], Some(&b)).is_empty());
    }

    #[test]
    fn the_budget_must_be_in_the_innermost_fn_not_an_outer_one() {
        // The outer fn mentions the budget, but the nested fn holding the
        // push does not: still a finding.
        let src = file(concat!(
            "fn outer(limit: usize) {\n",
            "    let _ = limit;\n",
            "    fn inner(q: &mut VecDeque<T>, x: T) { q.push_back(x); }\n",
            "}\n",
        ));
        let b = budgets(&[("q", "limit")]);
        let findings = run(&[&src], Some(&b));
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn push_front_and_try_send_are_not_growth_sites() {
        let src = file(concat!(
            "fn f(&mut self, x: T) {\n",
            "    self.write_queue.push_front(x);\n",
            "    self.jobs.try_send(x);\n",
            "}\n",
        ));
        let b = budgets(&[("write_queue", "limit"), ("jobs", "workers")]);
        assert!(run(&[&src], Some(&b)).is_empty());
    }
}
