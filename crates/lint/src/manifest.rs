//! Loader for the checked-in lock-rank manifest `crates/lint/lock_ranks.toml`.
//!
//! The manifest is a deliberately tiny TOML subset — comment lines and
//! `name = rank` pairs — so the crate stays dependency-free. The runtime
//! counterpart is `vaq_service::sync::rank`; a unit test in vaq-service
//! asserts the two never drift apart.

use std::collections::BTreeMap;
use std::path::Path;

/// Lock name → rank, as read from `lock_ranks.toml`.
pub type Manifest = BTreeMap<String, u32>;

/// Loads the manifest at `path`.
///
/// Returns `Ok(None)` when the file does not exist (the lock-order pass
/// then reports any lock site it finds as unrankable); malformed content is
/// a hard error, not a finding, because every pass result would be suspect.
pub fn load(path: &Path) -> Result<Option<Manifest>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut manifest = Manifest::new();
    for (index, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, rank)) = line.split_once('=') else {
            return Err(format!(
                "{}:{}: expected `name = rank`, got `{line}`",
                path.display(),
                index + 1
            ));
        };
        let rank: u32 = rank.trim().parse().map_err(|e| {
            format!(
                "{}:{}: rank for '{}' is not a u32: {e}",
                path.display(),
                index + 1,
                name.trim()
            )
        })?;
        manifest.insert(name.trim().to_string(), rank);
    }
    Ok(Some(manifest))
}
