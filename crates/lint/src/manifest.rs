//! Loaders for the checked-in manifests `crates/lint/lock_ranks.toml`
//! (lock name → rank) and `crates/lint/queue_budgets.toml` (queue field →
//! budget identifier).
//!
//! Both manifests are a deliberately tiny TOML subset — comment lines and
//! `name = value` pairs — so the crate stays dependency-free. The runtime
//! counterparts live in vaq-service (`sync::rank`, the queue fields
//! themselves); unit tests in vaq-service (`sync_ranks.rs`,
//! `queue_budgets.rs`) assert the manifests never drift from the code.

use std::collections::BTreeMap;
use std::path::Path;

/// Lock name → rank, as read from `lock_ranks.toml`.
pub type Manifest = BTreeMap<String, u32>;

/// Loads the manifest at `path`.
///
/// Returns `Ok(None)` when the file does not exist (the lock-order pass
/// then reports any lock site it finds as unrankable); malformed content is
/// a hard error, not a finding, because every pass result would be suspect.
pub fn load(path: &Path) -> Result<Option<Manifest>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut manifest = Manifest::new();
    for (index, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, rank)) = line.split_once('=') else {
            return Err(format!(
                "{}:{}: expected `name = rank`, got `{line}`",
                path.display(),
                index + 1
            ));
        };
        let rank: u32 = rank.trim().parse().map_err(|e| {
            format!(
                "{}:{}: rank for '{}' is not a u32: {e}",
                path.display(),
                index + 1,
                name.trim()
            )
        })?;
        manifest.insert(name.trim().to_string(), rank);
    }
    Ok(Some(manifest))
}

/// Queue field → budget identifier, as read from `queue_budgets.toml`: the
/// name of a queue field in vaq-service, and the identifier of the budget
/// (a config field, constant or guard flag) that every growth site's
/// enclosing function must test before inserting.
pub type QueueBudgets = BTreeMap<String, String>;

/// Loads the queue-budget manifest at `path`.
///
/// Returns `Ok(None)` when the file does not exist (the bounded-queue pass
/// is then inert, which is what the fixture trees without one rely on);
/// malformed content is a hard error, exactly like [`load`].
pub fn load_queue_budgets(path: &Path) -> Result<Option<QueueBudgets>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut budgets = QueueBudgets::new();
    for (index, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let Some((field, budget)) = line.split_once('=') else {
            return Err(format!(
                "{}:{}: expected `queue_field = budget_ident`, got `{line}`",
                path.display(),
                index + 1
            ));
        };
        let (field, budget) = (field.trim(), budget.trim());
        for name in [field, budget] {
            if !is_ident(name) {
                return Err(format!(
                    "{}:{}: `{name}` is not an identifier",
                    path.display(),
                    index + 1
                ));
            }
        }
        budgets.insert(field.to_string(), budget.to_string());
    }
    Ok(Some(budgets))
}

fn is_ident(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.chars().all(|c| c.is_alphanumeric() || c == '_')
}
