//! Synthetic workload generation for the experiments.
//!
//! The paper's evaluation uses synthetic databases of 1,000–10,000 records
//! ranked by linear functions, and its introduction motivates the problem
//! with concrete domains: graduate-admission scoring, disease-risk scoring
//! and financial-risk scoring. This crate generates tables with those schema
//! shapes plus generic uniform/Gaussian tables, and random query mixes
//! (top-k, range, KNN) over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queries;
pub mod tables;

pub use queries::{QueryGenerator, QueryMix, QuerySpec, WorkItem};
pub use tables::{
    applicant_table, financial_risk_table, patient_risk_table, uniform_dataset, TableKind,
};
