//! Random query generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_funcdb::{Dataset, Domain};

/// A query specification, independent of any particular index structure.
///
/// The three variants mirror the paper's three representative analytic
/// query types (Sec. 2.1).
#[derive(Clone, Debug, PartialEq)]
pub enum QuerySpec {
    /// `q = (X, k)`: the k records with the highest scores under weights `X`.
    TopK {
        /// Query weight vector.
        weights: Vec<f64>,
        /// Number of results.
        k: usize,
    },
    /// `q = (X, l, u)`: the records whose score lies in `[l, u]`.
    Range {
        /// Query weight vector.
        weights: Vec<f64>,
        /// Lower score bound (inclusive).
        lower: f64,
        /// Upper score bound (inclusive).
        upper: f64,
    },
    /// `q = (X, k, y)`: the k records whose scores are nearest to `y`.
    Knn {
        /// Query weight vector.
        weights: Vec<f64>,
        /// Number of neighbours.
        k: usize,
        /// The target score value.
        target: f64,
    },
}

impl QuerySpec {
    /// The weight vector of the query.
    pub fn weights(&self) -> &[f64] {
        match self {
            QuerySpec::TopK { weights, .. }
            | QuerySpec::Range { weights, .. }
            | QuerySpec::Knn { weights, .. } => weights,
        }
    }
}

/// Seeded generator of random queries against a dataset.
#[derive(Debug)]
pub struct QueryGenerator {
    rng: StdRng,
    domain: Domain,
    /// Score range observed over a sample of weight vectors, used to pick
    /// meaningful range-query boundaries.
    score_lo: f64,
    score_hi: f64,
}

impl QueryGenerator {
    /// Creates a generator from published metadata alone: the weight domain
    /// and a plausible score range, with no access to the records.
    ///
    /// This is exactly what a remote data user has — the owner publishes the
    /// template and domain, not the table — and it lets a load driver spawn
    /// many client threads without cloning the full dataset into each one.
    pub fn from_published(domain: Domain, score_range: (f64, f64), seed: u64) -> Self {
        let (mut lo, mut hi) = score_range;
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            lo = 0.0;
            hi = 1.0;
        }
        QueryGenerator {
            rng: StdRng::seed_from_u64(seed),
            domain,
            score_lo: lo,
            score_hi: hi,
        }
    }

    /// The weight domain queries are drawn from.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The score range this generator picks range boundaries and KNN
    /// targets from.
    pub fn score_range(&self) -> (f64, f64) {
        (self.score_lo, self.score_hi)
    }

    /// Creates a generator for the dataset.
    pub fn new(dataset: &Dataset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Probe a few random weight vectors to learn the plausible score range.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..8 {
            let w = dataset.domain.sample(&mut rng);
            for f in &dataset.functions {
                let s = f.eval(&w);
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 1.0;
        }
        QueryGenerator {
            rng,
            domain: dataset.domain.clone(),
            score_lo: lo,
            score_hi: hi,
        }
    }

    /// A random weight vector inside the domain.
    pub fn weights(&mut self) -> Vec<f64> {
        self.domain.sample(&mut self.rng)
    }

    /// A random top-k query with `k` results.
    pub fn top_k(&mut self, k: usize) -> QuerySpec {
        QuerySpec::TopK {
            weights: self.weights(),
            k,
        }
    }

    /// A random KNN query with `k` neighbours around a random target score.
    pub fn knn(&mut self, k: usize) -> QuerySpec {
        let target = self.rng.gen_range(self.score_lo..=self.score_hi);
        QuerySpec::Knn {
            weights: self.weights(),
            k,
            target,
        }
    }

    /// A random range query whose width is `width_fraction` of the observed
    /// score spread.
    pub fn range(&mut self, width_fraction: f64) -> QuerySpec {
        let spread = (self.score_hi - self.score_lo).max(1e-9);
        let width = spread * width_fraction.clamp(0.0, 1.0);
        let start = self
            .rng
            .gen_range(self.score_lo..=(self.score_hi - width).max(self.score_lo));
        QuerySpec::Range {
            weights: self.weights(),
            lower: start,
            upper: start + width,
        }
    }

    /// A uniformly random batch size in `lo..=hi` (used by
    /// [`QueryMix::generate_item`] to size batch requests deterministically
    /// from the generator's seed).
    pub fn batch_size(&mut self, lo: usize, hi: usize) -> usize {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        self.rng.gen_range(lo..=hi)
    }

    /// A mixed batch of queries (round-robin top-k, range, KNN), handy for
    /// integration tests.
    pub fn mixed_batch(&mut self, count: usize, k: usize) -> Vec<QuerySpec> {
        (0..count)
            .map(|i| match i % 3 {
                0 => self.top_k(k),
                1 => self.range(0.2),
                _ => self.knn(k),
            })
            .collect()
    }
}

/// One unit of client work drawn from a [`QueryMix`]: a single query or a
/// batch of queries sent (and answered) in one request.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkItem {
    /// One query, one request.
    Single(QuerySpec),
    /// A batch of queries answered in order by one request.
    Batch(Vec<QuerySpec>),
}

impl WorkItem {
    /// How many queries this item carries (a batch counts its members).
    pub fn query_count(&self) -> usize {
        match self {
            WorkItem::Single(_) => 1,
            WorkItem::Batch(specs) => specs.len(),
        }
    }
}

/// A weighted query-kind mix for load generation.
///
/// The mix is deterministic: request `index` gets its shape from the index's
/// position in the repeating `topk : range : knn : batch` proportion cycle,
/// so two runs with equal seeds issue identical query streams — which is
/// what makes load-test results and cache-hit counts reproducible. Batch
/// parts default to zero, so a mix without batches behaves exactly as
/// before.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryMix {
    /// Parts of top-k queries in the cycle.
    pub topk: u32,
    /// Parts of range queries in the cycle.
    pub range: u32,
    /// Parts of KNN queries in the cycle.
    pub knn: u32,
    /// Parts of batch requests in the cycle (0 = no batches). Each batch
    /// request carries [`QueryMix::batch_min`]..=[`QueryMix::batch_max`]
    /// queries drawn from the single-query proportions.
    pub batch: u32,
    /// Smallest batch size drawn (clamped to at least 1).
    pub batch_min: usize,
    /// Largest batch size drawn (clamped to at least `batch_min`).
    pub batch_max: usize,
    /// `k` used for top-k and KNN queries.
    pub k: usize,
    /// Range-query width as a fraction of the observed score spread.
    pub range_width: f64,
}

impl Default for QueryMix {
    /// A balanced 1:1:1 single-query mix (no batches) with `k = 3` and 20%
    /// range width.
    fn default() -> Self {
        QueryMix {
            topk: 1,
            range: 1,
            knn: 1,
            batch: 0,
            batch_min: 2,
            batch_max: 8,
            k: 3,
            range_width: 0.2,
        }
    }
}

impl QueryMix {
    /// A mix weighted towards one kind, e.g. `QueryMix::weighted(8, 1, 1)`
    /// for a read-mostly top-k dashboard workload.
    pub fn weighted(topk: u32, range: u32, knn: u32) -> Self {
        QueryMix {
            topk,
            range,
            knn,
            ..QueryMix::default()
        }
    }

    /// Adds batch requests to the mix: `batch` parts per cycle, each batch
    /// carrying a size drawn uniformly from `batch_min..=batch_max`
    /// (clamped sane) queries in the mix's single-query proportions.
    pub fn with_batches(mut self, batch: u32, batch_min: usize, batch_max: usize) -> Self {
        self.batch = batch;
        self.batch_min = batch_min.max(1);
        self.batch_max = batch_max.max(self.batch_min);
        self
    }

    /// Total parts in one proportion cycle, batches included (at least 1).
    pub fn cycle_len(&self) -> u64 {
        self.single_cycle_len() + u64::from(self.batch)
    }

    /// Parts of the cycle producing single queries.
    fn single_cycle_len(&self) -> u64 {
        u64::from(self.topk) + u64::from(self.range) + u64::from(self.knn)
    }

    /// Draws the single query at `index` of the deterministic
    /// `topk : range : knn` sub-stream (batch parts play no role here; this
    /// is also what each batch member is drawn from).
    ///
    /// Panics if every single-query weight is zero.
    pub fn generate(&self, generator: &mut QueryGenerator, index: u64) -> QuerySpec {
        let cycle = self.single_cycle_len();
        assert!(
            cycle > 0,
            "query mix needs at least one non-zero single-query weight"
        );
        let slot = index % cycle;
        if slot < u64::from(self.topk) {
            generator.top_k(self.k)
        } else if slot < u64::from(self.topk) + u64::from(self.range) {
            generator.range(self.range_width)
        } else {
            generator.knn(self.k)
        }
    }

    /// Draws the work item at `index` of the deterministic request stream:
    /// single queries in the `topk : range : knn` proportions, with every
    /// `batch`-in-[`QueryMix::cycle_len`] request expanded into a batch of
    /// `batch_min..=batch_max` queries drawn from the same single-query
    /// proportions.
    ///
    /// Panics if every single-query weight is zero (a pure-batch mix still
    /// needs single kinds to fill its batches from).
    pub fn generate_item(&self, generator: &mut QueryGenerator, index: u64) -> WorkItem {
        let cycle = self.cycle_len();
        assert!(cycle > 0, "query mix needs at least one non-zero weight");
        if index % cycle < self.single_cycle_len() {
            return WorkItem::Single(self.generate(generator, index % cycle));
        }
        let size = generator.batch_size(self.batch_min.max(1), self.batch_max.max(self.batch_min));
        WorkItem::Batch(
            (0..size as u64)
                .map(|i| self.generate(generator, index.wrapping_add(i)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::uniform_dataset;

    #[test]
    fn weights_stay_in_domain() {
        let ds = uniform_dataset(20, 2, 1);
        let mut gen = QueryGenerator::new(&ds, 5);
        for _ in 0..50 {
            let w = gen.weights();
            assert!(ds.domain.contains(&w));
        }
    }

    #[test]
    fn range_queries_are_well_formed() {
        let ds = uniform_dataset(30, 1, 2);
        let mut gen = QueryGenerator::new(&ds, 6);
        for _ in 0..20 {
            if let QuerySpec::Range { lower, upper, .. } = gen.range(0.3) {
                assert!(lower <= upper);
            } else {
                panic!("range() must produce a Range spec");
            }
        }
    }

    #[test]
    fn topk_and_knn_carry_k() {
        let ds = uniform_dataset(10, 2, 3);
        let mut gen = QueryGenerator::new(&ds, 7);
        assert!(matches!(gen.top_k(3), QuerySpec::TopK { k: 3, .. }));
        assert!(matches!(gen.knn(5), QuerySpec::Knn { k: 5, .. }));
    }

    #[test]
    fn mixed_batch_contains_all_kinds() {
        let ds = uniform_dataset(10, 2, 4);
        let mut gen = QueryGenerator::new(&ds, 8);
        let batch = gen.mixed_batch(9, 2);
        assert_eq!(batch.len(), 9);
        assert!(batch.iter().any(|q| matches!(q, QuerySpec::TopK { .. })));
        assert!(batch.iter().any(|q| matches!(q, QuerySpec::Range { .. })));
        assert!(batch.iter().any(|q| matches!(q, QuerySpec::Knn { .. })));
    }

    #[test]
    fn published_metadata_generator_matches_dataset_generator() {
        let ds = uniform_dataset(12, 2, 13);
        let probe = QueryGenerator::new(&ds, 21);
        let mut from_published =
            QueryGenerator::from_published(probe.domain().clone(), probe.score_range(), 77);
        for _ in 0..20 {
            let w = from_published.weights();
            assert!(ds.domain.contains(&w));
            if let QuerySpec::Range { lower, upper, .. } = from_published.range(0.3) {
                let (lo, hi) = probe.score_range();
                assert!(lower >= lo - 1e-9 && upper <= hi + 1e-9);
            }
        }
        // A nonsensical range falls back to [0, 1] instead of panicking.
        let mut degenerate = QueryGenerator::from_published(ds.domain.clone(), (f64::NAN, 1.0), 5);
        assert_eq!(degenerate.score_range(), (0.0, 1.0));
        let _ = degenerate.knn(2);
    }

    #[test]
    fn generator_is_deterministic() {
        let ds = uniform_dataset(10, 2, 5);
        let mut g1 = QueryGenerator::new(&ds, 11);
        let mut g2 = QueryGenerator::new(&ds, 11);
        assert_eq!(g1.top_k(3), g2.top_k(3));
        assert_eq!(g1.range(0.5), g2.range(0.5));
    }

    #[test]
    fn batchless_mix_item_stream_matches_the_single_stream() {
        // With zero batch parts the item stream must be exactly the
        // historical single-query stream — reproducibility of existing
        // load-test seeds depends on it.
        let ds = uniform_dataset(10, 2, 9);
        let mix = QueryMix::weighted(2, 1, 1);
        let mut g1 = QueryGenerator::new(&ds, 33);
        let mut g2 = QueryGenerator::new(&ds, 33);
        for index in 0..12u64 {
            assert_eq!(
                mix.generate_item(&mut g1, index),
                WorkItem::Single(mix.generate(&mut g2, index)),
            );
        }
    }

    #[test]
    fn batched_mix_emits_batches_at_the_configured_fraction() {
        let ds = uniform_dataset(10, 2, 10);
        let mix = QueryMix::weighted(2, 1, 1).with_batches(1, 2, 5);
        assert_eq!(mix.cycle_len(), 5);
        let mut generator = QueryGenerator::new(&ds, 44);
        let mut batches = 0usize;
        for index in 0..20u64 {
            match mix.generate_item(&mut generator, index) {
                WorkItem::Single(_) => {}
                WorkItem::Batch(specs) => {
                    batches += 1;
                    assert!((2..=5).contains(&specs.len()), "{} queries", specs.len());
                    // Batch members draw from the single-query kinds.
                    for spec in &specs {
                        assert_eq!(spec.weights().len(), 2);
                    }
                }
            }
        }
        // Slot 4 of every 5-slot cycle is a batch: indices 4, 9, 14, 19.
        assert_eq!(batches, 4);
        assert_eq!(
            WorkItem::Batch(vec![]).query_count(),
            0,
            "query_count counts members"
        );
    }

    #[test]
    fn batch_size_clamps_reversed_bounds() {
        let ds = uniform_dataset(8, 1, 11);
        let mut generator = QueryGenerator::new(&ds, 3);
        for _ in 0..10 {
            let size = generator.batch_size(6, 2);
            assert!((2..=6).contains(&size));
        }
        assert_eq!(generator.batch_size(4, 4), 4);
    }

    #[test]
    fn query_spec_weights_accessor() {
        let ds = uniform_dataset(10, 3, 6);
        let mut gen = QueryGenerator::new(&ds, 12);
        for q in gen.mixed_batch(6, 2) {
            assert_eq!(q.weights().len(), 3);
        }
    }
}
