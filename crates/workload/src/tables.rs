//! Synthetic table generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vaq_funcdb::{Dataset, Domain, FunctionTemplate, Record};

/// The synthetic table families used by the examples and experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Graduate-admission applicants: GPA, awards, papers (paper's Fig. 1).
    Applicants,
    /// Patients scored for disease risk: age factor, biomarker, history.
    PatientRisk,
    /// Credit applicants: income, debt ratio, delinquencies (negated), tenure.
    FinancialRisk,
    /// Uniform attributes in `[0, 1]` with a configurable dimensionality.
    Uniform,
}

/// A university-admission style table (paper Fig. 1): GPA in `[2, 4]`,
/// awards in `[0, 8]`, papers in `[0, 12]`. Attributes are scaled to `[0, 1]`
/// so all weight dimensions are comparable.
pub fn applicant_table(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let template = FunctionTemplate::new(vec!["gpa", "awards", "papers"]);
    let records = (0..n)
        .map(|i| {
            let gpa = rng.gen_range(2.0..4.0) / 4.0;
            let awards = rng.gen_range(0.0..8.0) / 8.0;
            let papers = rng.gen_range(0.0..12.0) / 12.0;
            Record::with_label(
                i as u64,
                vec![gpa, awards, papers],
                format!("applicant-{i}"),
            )
        })
        .collect();
    Dataset::new(records, template, Domain::unit(3))
}

/// A patient-risk table (two attributes so the arrangement stays tractable
/// at larger n): normalized age factor and a biomarker level, both `[0, 1]`.
pub fn patient_risk_table(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let template = FunctionTemplate::new(vec!["age_factor", "biomarker"]);
    let records = (0..n)
        .map(|i| {
            // A correlated Gaussian-ish mixture: older patients tend to have
            // higher biomarker values, which produces realistic clusters of
            // nearly-parallel scoring functions.
            let age: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.2..0.2);
            let biomarker = (0.6 * age + 0.4 * rng.gen_range(0.0..1.0) + noise).clamp(0.0, 1.0);
            Record::with_label(i as u64, vec![age, biomarker], format!("patient-{i}"))
        })
        .collect();
    Dataset::new(records, template, Domain::unit(2))
}

/// A financial-risk table: income, inverse debt ratio and account tenure,
/// all normalized to `[0, 1]` (higher is better under every weighting).
pub fn financial_risk_table(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let template = FunctionTemplate::new(vec!["income", "inv_debt_ratio", "tenure"]);
    let records = (0..n)
        .map(|i| {
            let income = rng.gen_range(0.0f64..1.0).powf(1.5); // skewed
            let inv_debt = rng.gen_range(0.0..1.0);
            let tenure = rng.gen_range(0.0..1.0);
            Record::with_label(
                i as u64,
                vec![income, inv_debt, tenure],
                format!("customer-{i}"),
            )
        })
        .collect();
    Dataset::new(records, template, Domain::unit(3))
}

/// A generic dataset with `dims` uniform attributes in `[0, 1]`.
///
/// This is the workhorse for the figure reproductions: `dims = 1` keeps the
/// number of subdomains `O(n²)` (the univariate case the paper's Fig. 2
/// illustrates), `dims = 2` exercises the multi-dimensional machinery.
pub fn uniform_dataset(n: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let template = FunctionTemplate::anonymous(dims);
    let records = (0..n)
        .map(|i| {
            let attrs = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            Record::new(i as u64, attrs)
        })
        .collect();
    Dataset::new(records, template, Domain::unit(dims))
}

/// Generates a dataset of the given kind. `dims` is only used for
/// [`TableKind::Uniform`].
pub fn generate(kind: TableKind, n: usize, dims: usize, seed: u64) -> Dataset {
    match kind {
        TableKind::Applicants => applicant_table(n, seed),
        TableKind::PatientRisk => patient_risk_table(n, seed),
        TableKind::FinancialRisk => financial_risk_table(n, seed),
        TableKind::Uniform => uniform_dataset(n, dims, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicant_table_shape() {
        let ds = applicant_table(50, 1);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.dims(), 3);
        for r in &ds.records {
            assert!(r.attrs.iter().all(|v| (0.0..=1.0).contains(v)));
            assert!(r.label.as_deref().unwrap().starts_with("applicant-"));
        }
    }

    #[test]
    fn patient_table_attributes_in_range() {
        let ds = patient_risk_table(100, 2);
        assert_eq!(ds.dims(), 2);
        for r in &ds.records {
            assert!(r.attrs.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn financial_table_shape() {
        let ds = financial_risk_table(30, 3);
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.len(), 30);
    }

    #[test]
    fn uniform_dataset_dims() {
        for d in 1..=3 {
            let ds = uniform_dataset(20, d, 7);
            assert_eq!(ds.dims(), d);
            assert_eq!(ds.len(), 20);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = uniform_dataset(10, 2, 42);
        let b = uniform_dataset(10, 2, 42);
        let c = uniform_dataset(10, 2, 43);
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn generate_dispatches_all_kinds() {
        for kind in [
            TableKind::Applicants,
            TableKind::PatientRisk,
            TableKind::FinancialRisk,
            TableKind::Uniform,
        ] {
            let ds = generate(kind, 5, 2, 3);
            assert_eq!(ds.len(), 5);
        }
    }

    #[test]
    fn record_ids_are_unique_and_sequential() {
        let ds = applicant_table(25, 9);
        for (i, r) in ds.records.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }
}
