//! Binary wire format for the verified-analytics protocol.
//!
//! In the paper's system model three messages cross the network:
//!
//! 1. the **query** `q` from the data user to the server,
//! 2. the **query result** `R(q)` (a list of records) from the server back
//!    to the user, and
//! 3. the **verification object** `VO(q)` accompanying the result.
//!
//! Fig. 8 of the paper studies the size of (3); this crate pins those sizes
//! down exactly by giving every message a deterministic, versioned binary
//! encoding. It also lets the examples and the CLI demo write responses to
//! disk and verify them in a separate process, the way a real deployment
//! would.
//!
//! The format is deliberately simple: little-endian fixed-width integers,
//! IEEE-754 doubles, length-prefixed byte strings, and a one-byte tag per
//! enum variant, all wrapped in a frame that starts with a 4-byte magic and
//! a format version. There is no external schema language and no reflection
//! — every type implements [`WireEncode`] / [`WireDecode`] by hand, which
//! keeps the dependency set empty and makes the byte layout auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authquery_impls;
pub mod crypto_impls;
pub mod envelope;
pub mod epoch;
pub mod error;
pub mod funcdb_impls;
pub mod io;
pub mod sigmesh_impls;

pub use envelope::{
    ErrorCode, ErrorCount, ErrorReply, KindLatency, KindStages, LatencyHistogram, ReactorStats,
    Request, Response, ShardEntry, ShardInfo, ShardMap, SignedShardMap, StageLatency, StageMicros,
    StatsDeep, StatsSnapshot, LATENCY_BUCKET_BOUNDS_MICROS,
};
pub use error::WireError;
pub use io::{Reader, Writer};

/// Magic bytes at the start of every framed message.
pub const MAGIC: [u8; 4] = *b"VAQ1";
/// Current format version.
pub const VERSION: u16 = 1;

/// Types that can serialize themselves into the wire format.
pub trait WireEncode {
    /// Appends this value's encoding to the writer.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encodes into a fresh byte vector (unframed).
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encodes with the `VAQ1` frame header (magic + version + payload
    /// length), suitable for writing to disk or a socket.
    fn to_framed_bytes(&self) -> Vec<u8> {
        let payload = self.to_wire_bytes();
        let mut out = Vec::with_capacity(payload.len() + 10);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Like [`WireEncode::to_framed_bytes`], but assembles the frame in
    /// `scratch`, reusing its allocation across calls: the header goes in
    /// first with a length placeholder, the payload is encoded directly
    /// behind it, and the length is patched in place. The returned frame is
    /// one exact-size copy of the scratch contents, so a warm caller pays
    /// one allocation and one memcpy per message instead of two of each.
    fn to_framed_bytes_reusing(&self, scratch: &mut Vec<u8>) -> Vec<u8> {
        let mut w = Writer::reusing(std::mem::take(scratch));
        w.put_raw(&MAGIC);
        w.put_u16(VERSION);
        w.put_u32(0); // payload-length placeholder, patched below
        self.encode(&mut w);
        let payload_len = w.len().saturating_sub(10);
        w.patch_u32(6, payload_len as u32);
        let frame = w.as_bytes().to_vec();
        *scratch = w.into_bytes();
        frame
    }
}

/// Types that can deserialize themselves from the wire format.
pub trait WireDecode: Sized {
    /// Reads one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Convenience: decodes from an unframed byte slice, requiring that all
    /// bytes are consumed.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(value)
    }

    /// Decodes a `VAQ1`-framed message.
    fn from_framed_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 10 {
            return Err(WireError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        let payload = bytes.get(10..).ok_or(WireError::Truncated)?;
        if payload.len() != len {
            return Err(WireError::LengthMismatch {
                declared: len,
                actual: payload.len(),
            });
        }
        Self::from_wire_bytes(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair(u32, f64);

    impl WireEncode for Pair {
        fn encode(&self, w: &mut Writer) {
            w.put_u32(self.0);
            w.put_f64(self.1);
        }
    }
    impl WireDecode for Pair {
        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Pair(r.get_u32()?, r.get_f64()?))
        }
    }

    #[test]
    fn framed_roundtrip() {
        let p = Pair(7, 2.5);
        let bytes = p.to_framed_bytes();
        assert_eq!(&bytes[..4], b"VAQ1");
        assert_eq!(Pair::from_framed_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn reusing_frame_is_byte_identical_and_keeps_the_allocation() {
        let p = Pair(7, 2.5);
        let mut scratch = Vec::with_capacity(256);
        let frame = p.to_framed_bytes_reusing(&mut scratch);
        assert_eq!(frame, p.to_framed_bytes());
        assert_eq!(Pair::from_framed_bytes(&frame).unwrap(), p);
        // The scratch allocation survives and is reused on the next call.
        assert!(scratch.capacity() >= 256);
        let again = Pair(9, -0.5).to_framed_bytes_reusing(&mut scratch);
        assert_eq!(again, Pair(9, -0.5).to_framed_bytes());
    }

    #[test]
    fn frame_rejects_bad_magic_and_version() {
        let p = Pair(7, 2.5);
        let mut bytes = p.to_framed_bytes();
        bytes[0] = b'X';
        assert_eq!(Pair::from_framed_bytes(&bytes), Err(WireError::BadMagic));

        let mut bytes = p.to_framed_bytes();
        bytes[4] = 9;
        assert!(matches!(
            Pair::from_framed_bytes(&bytes),
            Err(WireError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn frame_rejects_length_mismatch_and_truncation() {
        let p = Pair(7, 2.5);
        let mut bytes = p.to_framed_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            Pair::from_framed_bytes(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
        assert_eq!(
            Pair::from_framed_bytes(&bytes[..5]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn unframed_requires_full_consumption() {
        let p = Pair(1, 1.0);
        let mut bytes = p.to_wire_bytes();
        bytes.push(0xAA);
        assert!(matches!(
            Pair::from_wire_bytes(&bytes),
            Err(WireError::TrailingBytes(_))
        ));
    }
}
