//! Wire encodings for cryptographic values (signatures and public keys).

use crate::error::WireError;
use crate::io::{Reader, Writer};
use crate::{WireDecode, WireEncode};
use vaq_crypto::dsa::{DsaPublicKey, DsaSignature};
use vaq_crypto::rsa::{RsaPublicKey, RsaSignature};
use vaq_crypto::signer::PublicKey;
use vaq_crypto::{BigUint, Signature};

impl WireEncode for BigUint {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.to_bytes_be());
    }
}

impl WireDecode for BigUint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BigUint::from_bytes_be(&r.get_bytes()?))
    }
}

impl WireEncode for RsaSignature {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.bytes);
    }
}

impl WireDecode for RsaSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RsaSignature {
            bytes: r.get_bytes()?,
        })
    }
}

impl WireEncode for DsaSignature {
    fn encode(&self, w: &mut Writer) {
        self.r.encode(w);
        self.s.encode(w);
    }
}

impl WireDecode for DsaSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DsaSignature {
            r: BigUint::decode(r)?,
            s: BigUint::decode(r)?,
        })
    }
}

const SIG_TAG_RSA: u8 = 1;
const SIG_TAG_DSA: u8 = 2;

impl WireEncode for Signature {
    fn encode(&self, w: &mut Writer) {
        match self {
            Signature::Rsa(sig) => {
                w.put_u8(SIG_TAG_RSA);
                sig.encode(w);
            }
            Signature::Dsa(sig) => {
                w.put_u8(SIG_TAG_DSA);
                sig.encode(w);
            }
        }
    }
}

impl WireDecode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            SIG_TAG_RSA => Ok(Signature::Rsa(RsaSignature::decode(r)?)),
            SIG_TAG_DSA => Ok(Signature::Dsa(DsaSignature::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Signature",
                tag,
            }),
        }
    }
}

impl WireEncode for RsaPublicKey {
    fn encode(&self, w: &mut Writer) {
        self.n.encode(w);
        self.e.encode(w);
    }
}

impl WireDecode for RsaPublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RsaPublicKey {
            n: BigUint::decode(r)?,
            e: BigUint::decode(r)?,
        })
    }
}

impl WireEncode for DsaPublicKey {
    fn encode(&self, w: &mut Writer) {
        self.p.encode(w);
        self.q.encode(w);
        self.g.encode(w);
        self.y.encode(w);
    }
}

impl WireDecode for DsaPublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let p = BigUint::decode(r)?;
        let q = BigUint::decode(r)?;
        let g = BigUint::decode(r)?;
        let y = BigUint::decode(r)?;
        Ok(DsaPublicKey::new(p, q, g, y))
    }
}

impl WireEncode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        match self {
            PublicKey::Rsa(pk) => {
                w.put_u8(SIG_TAG_RSA);
                pk.encode(w);
            }
            PublicKey::Dsa(pk) => {
                w.put_u8(SIG_TAG_DSA);
                pk.encode(w);
            }
        }
    }
}

impl WireDecode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            SIG_TAG_RSA => Ok(PublicKey::Rsa(RsaPublicKey::decode(r)?)),
            SIG_TAG_DSA => Ok(PublicKey::Dsa(DsaPublicKey::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "PublicKey",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_crypto::sha256::sha256;
    use vaq_crypto::{SignatureScheme, Signer, Verifier};

    #[test]
    fn biguint_roundtrip() {
        for hex in ["0", "1", "deadbeef", "ffffffffffffffffffffffffffffffff"] {
            let v = BigUint::from_hex(hex).unwrap();
            let back = BigUint::from_wire_bytes(&v.to_wire_bytes()).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn rsa_signature_survives_roundtrip_and_still_verifies() {
        let scheme = SignatureScheme::test_rsa(1);
        let digest = sha256(b"wire");
        let sig = scheme.sign_digest(&digest);
        let bytes = sig.to_framed_bytes();
        let back = Signature::from_framed_bytes(&bytes).unwrap();
        assert!(scheme.verifier().verify_digest(&digest, &back));
    }

    #[test]
    fn dsa_signature_survives_roundtrip_and_still_verifies() {
        let scheme = SignatureScheme::test_dsa(2);
        let digest = sha256(b"wire-dsa");
        let sig = scheme.sign_digest(&digest);
        let back = Signature::from_wire_bytes(&sig.to_wire_bytes()).unwrap();
        assert!(scheme.verifier().verify_digest(&digest, &back));
    }

    #[test]
    fn public_key_roundtrip_for_both_algorithms() {
        for scheme in [SignatureScheme::test_rsa(3), SignatureScheme::test_dsa(4)] {
            let pk = scheme.public_key();
            let back = PublicKey::from_wire_bytes(&pk.to_wire_bytes()).unwrap();
            assert_eq!(pk, back);
            // The decoded key must still verify signatures.
            let digest = sha256(b"key-roundtrip");
            let sig = scheme.sign_digest(&digest);
            assert!(back.verify_digest(&digest, &sig));
        }
    }

    #[test]
    fn signature_invalid_tag_rejected() {
        let mut w = Writer::new();
        w.put_u8(99);
        assert!(matches!(
            Signature::from_wire_bytes(&w.into_bytes()),
            Err(WireError::InvalidTag { .. })
        ));
    }
}
