//! Low-level writer and reader over byte buffers.

use crate::error::WireError;

/// Maximum number of elements a length-prefixed collection may declare.
///
/// Protects decoders from allocating unbounded memory when fed garbage; the
/// largest legitimate collections in this protocol are result sets, which at
/// paper scale top out at 10,000 records.
pub const MAX_COLLECTION_LEN: usize = 4_000_000;

/// An append-only byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer that reuses the allocation of `buf` (the previous
    /// contents are cleared). Lets encode-heavy callers keep one warm
    /// buffer instead of growing a fresh vector per message.
    pub fn reusing(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Writer { buf }
    }

    /// Bytes written so far, borrowed.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes a fixed-size 32-byte digest (no length prefix).
    pub fn put_digest(&mut self, v: &[u8; 32]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites a previously written little-endian u32 at byte `offset`.
    /// Out-of-range offsets are ignored (nothing was written there).
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        if let Some(slot) = self.buf.get_mut(offset..offset.saturating_add(4)) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Writes a length prefix for a collection of `n` elements.
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }

    /// Writes a length-prefixed list of f64.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_len(v.len());
        for x in v {
            self.put_f64(*x);
        }
    }
}

/// A cursor-style byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes and returns the next `n` bytes (caller must `need` first).
    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        head
    }

    /// Errors unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        self.take(1).first().copied().ok_or(WireError::Truncated)
    }

    /// Reads a boolean.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        let bytes = self.take(2).try_into().map_err(|_| WireError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        let bytes = self.take(4).try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        let bytes = self.take(8).try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads an IEEE-754 double.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        self.need(8)?;
        let bytes = self.take(8).try_into().map_err(|_| WireError::Truncated)?;
        Ok(f64::from_le_bytes(bytes))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.get_len()?;
        self.need(len)?;
        Ok(self.take(len).to_vec())
    }

    /// Reads a fixed-size 32-byte digest.
    pub fn get_digest(&mut self) -> Result<[u8; 32], WireError> {
        self.need(32)?;
        self.take(32).try_into().map_err(|_| WireError::Truncated)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a collection length prefix, enforcing [`MAX_COLLECTION_LEN`].
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_u32()? as usize;
        if len > MAX_COLLECTION_LEN {
            return Err(WireError::LengthLimitExceeded(len));
        }
        Ok(len)
    }

    /// Reads a length-prefixed list of f64.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.get_len()?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65_000);
        w.put_u32(4_000_000_000);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-1.25e17);
        w.put_bytes(b"hello");
        w.put_string("wörld");
        w.put_digest(&[9u8; 32]);
        w.put_f64_slice(&[1.0, 2.0, 3.5]);
        assert!(!w.is_empty());

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16().unwrap(), 65_000);
        assert_eq!(r.get_u32().unwrap(), 4_000_000_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -1.25e17);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_string().unwrap(), "wörld");
        assert_eq!(r.get_digest().unwrap(), [9u8; 32]);
        assert_eq!(r.get_f64_vec().unwrap(), vec![1.0, 2.0, 3.5]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_detected_for_every_primitive() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        assert_eq!(r.get_u64(), Err(WireError::Truncated));

        let mut r = Reader::new(&[]);
        assert_eq!(r.get_u8(), Err(WireError::Truncated));
        assert_eq!(Reader::new(&[]).get_digest(), Err(WireError::Truncated));
    }

    #[test]
    fn collection_length_limit_enforced() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_len(),
            Err(WireError::LengthLimitExceeded(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe, 0xfd]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_string(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_reported() {
        let r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(3)));
    }
}
