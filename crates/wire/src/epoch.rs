//! The blessed monotonic-epoch helpers.
//!
//! Publication epochs are plain `u64`s on the wire, but every decision made
//! about them is one of exactly three questions: *does this candidate
//! advance the current epoch*, *would adopting it roll us back*, and *what
//! is the next epoch after this one*. Scattering raw `<`/`<=`/`+ 1`
//! expressions over the codebase is how off-by-one rollback bugs are born,
//! so this module is the only place allowed to do raw epoch comparisons or
//! arithmetic — `vaq-lint`'s epoch-discipline pass flags them anywhere else
//! in `vaq-service`/`vaq-wire` non-test code.
//!
//! Equality checks (`pinned == served`) stay unrestricted: they cannot
//! violate monotonicity, and the pinned-request protocol is built on them.

/// True when `candidate` strictly advances `current` — the only condition
/// under which a republication, an offered signed map, or any other epoch
/// adoption may proceed. A same-epoch candidate does **not** advance (it is
/// either a no-op or a replay, depending on the caller's protocol).
pub fn advances(current: u64, candidate: u64) -> bool {
    candidate > current
}

/// True when adopting `candidate` would roll a holder of `current` back to
/// a superseded publication. Strict: a same-epoch offer is not a rollback
/// (callers treat it as a no-op).
pub fn rolls_back(current: u64, candidate: u64) -> bool {
    candidate < current
}

/// The epoch following `current`.
///
/// Saturates at `u64::MAX` instead of wrapping: a wrapped epoch of 0 would
/// read as *older than everything* and open a rollback hole, while a pinned
/// ceiling merely stops further republications — the safe failure mode for
/// a counter that advances once per publication and cannot realistically be
/// exhausted.
pub fn next(current: u64) -> u64 {
    current.saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_is_strict() {
        assert!(advances(0, 1));
        assert!(advances(41, u64::MAX));
        assert!(!advances(7, 7));
        assert!(!advances(7, 6));
        assert!(!advances(u64::MAX, u64::MAX));
    }

    #[test]
    fn rolls_back_is_strict() {
        assert!(rolls_back(7, 6));
        assert!(rolls_back(u64::MAX, 0));
        assert!(!rolls_back(7, 7));
        assert!(!rolls_back(7, 8));
    }

    #[test]
    fn next_advances_and_saturates() {
        assert_eq!(next(0), 1);
        assert!(advances(41, next(41)));
        assert_eq!(next(u64::MAX), u64::MAX);
        assert_eq!(next(u64::MAX - 1), u64::MAX);
    }
}
