//! Wire-format errors.

/// Why a message could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// The frame does not start with the `VAQ1` magic.
    BadMagic,
    /// The frame's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The frame's declared payload length disagrees with the buffer.
    LengthMismatch {
        /// Length declared in the frame header.
        declared: usize,
        /// Actual remaining bytes.
        actual: usize,
    },
    /// Unframed decoding left unread bytes behind.
    TrailingBytes(usize),
    /// An enum tag byte had no corresponding variant.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A declared collection length exceeds the sanity limit (protects
    /// against memory-exhaustion on malformed input).
    LengthLimitExceeded(usize),
    /// A string field did not contain valid UTF-8.
    InvalidUtf8,
    /// A floating-point field decoded to NaN where NaN is not meaningful.
    InvalidFloat,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            WireError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "frame length mismatch: declared {declared}, actual {actual}"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            WireError::LengthLimitExceeded(n) => {
                write!(f, "declared collection length {n} exceeds the sanity limit")
            }
            WireError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::InvalidFloat => write!(f, "invalid floating-point value"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::InvalidTag {
            type_name: "Query",
            tag: 9
        }
        .to_string()
        .contains("Query"));
        assert!(WireError::LengthMismatch {
            declared: 5,
            actual: 3
        }
        .to_string()
        .contains("5"));
    }
}
