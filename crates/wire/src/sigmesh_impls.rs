//! Wire encodings for the signature-mesh baseline's messages.

use crate::error::WireError;
use crate::io::{Reader, Writer};
use crate::{WireDecode, WireEncode};
use vaq_authquery::cost::ServerCost;
use vaq_crypto::Signature;
use vaq_funcdb::{Record, SubdomainConstraints};
use vaq_sigmesh::{MeshBoundary, MeshResponse, MeshVo};

const MESH_BOUNDARY_MIN: u8 = 1;
const MESH_BOUNDARY_MAX: u8 = 2;
const MESH_BOUNDARY_RECORD: u8 = 3;

impl WireEncode for MeshBoundary {
    fn encode(&self, w: &mut Writer) {
        match self {
            MeshBoundary::MinToken => w.put_u8(MESH_BOUNDARY_MIN),
            MeshBoundary::MaxToken => w.put_u8(MESH_BOUNDARY_MAX),
            MeshBoundary::Record(r) => {
                w.put_u8(MESH_BOUNDARY_RECORD);
                r.encode(w);
            }
        }
    }
}

impl WireDecode for MeshBoundary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            MESH_BOUNDARY_MIN => Ok(MeshBoundary::MinToken),
            MESH_BOUNDARY_MAX => Ok(MeshBoundary::MaxToken),
            MESH_BOUNDARY_RECORD => Ok(MeshBoundary::Record(Record::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "MeshBoundary",
                tag,
            }),
        }
    }
}

impl WireEncode for MeshVo {
    fn encode(&self, w: &mut Writer) {
        self.subdomain.encode(w);
        self.left_boundary.encode(w);
        self.right_boundary.encode(w);
        w.put_len(self.pair_signatures.len());
        for sig in &self.pair_signatures {
            sig.encode(w);
        }
    }
}

impl WireDecode for MeshVo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let subdomain = SubdomainConstraints::decode(r)?;
        let left_boundary = MeshBoundary::decode(r)?;
        let right_boundary = MeshBoundary::decode(r)?;
        let len = r.get_len()?;
        let mut pair_signatures = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            pair_signatures.push(Signature::decode(r)?);
        }
        Ok(MeshVo {
            subdomain,
            left_boundary,
            right_boundary,
            pair_signatures,
        })
    }
}

impl WireEncode for MeshResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.records.len());
        for record in &self.records {
            record.encode(w);
        }
        self.vo.encode(w);
        self.cost.encode(w);
    }
}

impl WireDecode for MeshResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut records = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            records.push(Record::decode(r)?);
        }
        Ok(MeshResponse {
            records,
            vo: MeshVo::decode(r)?,
            cost: ServerCost::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_authquery::Query;
    use vaq_crypto::{SignatureScheme, Signer};
    use vaq_sigmesh::{verify_mesh_response, SignatureMesh};
    use vaq_workload::uniform_dataset;

    #[test]
    fn mesh_response_roundtrip_still_verifies() {
        let dataset = uniform_dataset(10, 1, 61);
        let scheme = SignatureScheme::test_rsa(61);
        let mesh = SignatureMesh::build(&dataset, &scheme);
        let verifier = scheme.verifier();
        for query in [
            Query::top_k(vec![0.4], 3),
            Query::range(vec![0.6], 0.2, 0.7),
        ] {
            let resp = mesh.process(&dataset, &query);
            let bytes = resp.to_framed_bytes();
            let back = MeshResponse::from_framed_bytes(&bytes).unwrap();
            assert_eq!(resp.records, back.records);
            assert_eq!(resp.vo.pair_signatures, back.vo.pair_signatures);
            assert!(
                verify_mesh_response(&query, &back, &dataset.template, verifier.as_ref()).is_ok()
            );
        }
    }

    #[test]
    fn mesh_vo_wire_size_scales_with_result_length() {
        let dataset = uniform_dataset(40, 1, 62);
        let scheme = SignatureScheme::test_rsa(62);
        let mesh = SignatureMesh::build(&dataset, &scheme);
        let small = mesh.process(&dataset, &Query::top_k(vec![0.5], 2));
        let large = mesh.process(&dataset, &Query::top_k(vec![0.5], 30));
        assert!(large.vo.to_wire_bytes().len() > small.vo.to_wire_bytes().len() * 5);
    }

    #[test]
    fn mesh_boundary_invalid_tag() {
        let mut w = Writer::new();
        w.put_u8(77);
        assert!(matches!(
            MeshBoundary::from_wire_bytes(&w.into_bytes()),
            Err(WireError::InvalidTag { .. })
        ));
    }
}
