//! Wire encodings for the IFMH protocol messages: queries, verification
//! objects and full query responses.

use crate::error::WireError;
use crate::io::{Reader, Writer};
use crate::{WireDecode, WireEncode};
use vaq_authquery::cost::ServerCost;
use vaq_authquery::{
    BoundaryEntry, IntersectionVerification, IvStep, Query, QueryResponse, VerificationObject,
};
use vaq_crypto::Signature;
use vaq_funcdb::{HalfSpace, Record};
use vaq_mht::{ProofNode, RangeProof};

const QUERY_TAG_TOPK: u8 = 1;
const QUERY_TAG_RANGE: u8 = 2;
const QUERY_TAG_KNN: u8 = 3;

impl WireEncode for Query {
    fn encode(&self, w: &mut Writer) {
        match self {
            Query::TopK { weights, k } => {
                w.put_u8(QUERY_TAG_TOPK);
                w.put_f64_slice(weights);
                w.put_u32(*k as u32);
            }
            Query::Range {
                weights,
                lower,
                upper,
            } => {
                w.put_u8(QUERY_TAG_RANGE);
                w.put_f64_slice(weights);
                w.put_f64(*lower);
                w.put_f64(*upper);
            }
            Query::Knn { weights, k, target } => {
                w.put_u8(QUERY_TAG_KNN);
                w.put_f64_slice(weights);
                w.put_u32(*k as u32);
                w.put_f64(*target);
            }
        }
    }
}

impl WireDecode for Query {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            QUERY_TAG_TOPK => Ok(Query::TopK {
                weights: r.get_f64_vec()?,
                k: r.get_u32()? as usize,
            }),
            QUERY_TAG_RANGE => {
                let weights = r.get_f64_vec()?;
                let lower = r.get_f64()?;
                let upper = r.get_f64()?;
                if lower.is_nan() || upper.is_nan() || lower > upper {
                    return Err(WireError::InvalidFloat);
                }
                Ok(Query::Range {
                    weights,
                    lower,
                    upper,
                })
            }
            QUERY_TAG_KNN => Ok(Query::Knn {
                weights: r.get_f64_vec()?,
                k: r.get_u32()? as usize,
                target: r.get_f64()?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "Query",
                tag,
            }),
        }
    }
}

const BOUNDARY_TAG_MIN: u8 = 1;
const BOUNDARY_TAG_MAX: u8 = 2;
const BOUNDARY_TAG_RECORD: u8 = 3;

impl WireEncode for BoundaryEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            BoundaryEntry::MinSentinel => w.put_u8(BOUNDARY_TAG_MIN),
            BoundaryEntry::MaxSentinel => w.put_u8(BOUNDARY_TAG_MAX),
            BoundaryEntry::Record(r) => {
                w.put_u8(BOUNDARY_TAG_RECORD);
                r.encode(w);
            }
        }
    }
}

impl WireDecode for BoundaryEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            BOUNDARY_TAG_MIN => Ok(BoundaryEntry::MinSentinel),
            BOUNDARY_TAG_MAX => Ok(BoundaryEntry::MaxSentinel),
            BOUNDARY_TAG_RECORD => Ok(BoundaryEntry::Record(Record::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "BoundaryEntry",
                tag,
            }),
        }
    }
}

impl WireEncode for ProofNode {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.layer);
        w.put_u32(self.index);
        w.put_digest(&self.hash);
    }
}

impl WireDecode for ProofNode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ProofNode {
            layer: r.get_u32()?,
            index: r.get_u32()?,
            hash: r.get_digest()?,
        })
    }
}

impl WireEncode for RangeProof {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.leaf_count);
        w.put_len(self.nodes.len());
        for node in &self.nodes {
            node.encode(w);
        }
    }
}

impl WireDecode for RangeProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let leaf_count = r.get_u32()?;
        let len = r.get_len()?;
        let mut nodes = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            nodes.push(ProofNode::decode(r)?);
        }
        Ok(RangeProof { nodes, leaf_count })
    }
}

impl WireEncode for IvStep {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.pair.0);
        w.put_u32(self.pair.1);
        w.put_f64_slice(&self.coeffs);
        w.put_f64(self.constant);
        w.put_digest(&self.sibling_hash);
        w.put_bool(self.went_above);
    }
}

impl WireDecode for IvStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(IvStep {
            pair: (r.get_u32()?, r.get_u32()?),
            coeffs: r.get_f64_vec()?,
            constant: r.get_f64()?,
            sibling_hash: r.get_digest()?,
            went_above: r.get_bool()?,
        })
    }
}

const IV_TAG_ONE: u8 = 1;
const IV_TAG_MULTI: u8 = 2;

impl WireEncode for IntersectionVerification {
    fn encode(&self, w: &mut Writer) {
        match self {
            IntersectionVerification::OneSignature { path } => {
                w.put_u8(IV_TAG_ONE);
                w.put_len(path.len());
                for step in path {
                    step.encode(w);
                }
            }
            IntersectionVerification::MultiSignature { halfspaces } => {
                w.put_u8(IV_TAG_MULTI);
                w.put_len(halfspaces.len());
                for hs in halfspaces {
                    hs.encode(w);
                }
            }
        }
    }
}

impl WireDecode for IntersectionVerification {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            IV_TAG_ONE => {
                let len = r.get_len()?;
                let mut path = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    path.push(IvStep::decode(r)?);
                }
                Ok(IntersectionVerification::OneSignature { path })
            }
            IV_TAG_MULTI => {
                let len = r.get_len()?;
                let mut halfspaces = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    halfspaces.push(HalfSpace::decode(r)?);
                }
                Ok(IntersectionVerification::MultiSignature { halfspaces })
            }
            tag => Err(WireError::InvalidTag {
                type_name: "IntersectionVerification",
                tag,
            }),
        }
    }
}

impl WireEncode for VerificationObject {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.first_leaf);
        self.left_boundary.encode(w);
        self.right_boundary.encode(w);
        self.range_proof.encode(w);
        self.intersection_verification.encode(w);
        self.signature.encode(w);
    }
}

impl WireDecode for VerificationObject {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VerificationObject {
            first_leaf: r.get_u32()?,
            left_boundary: BoundaryEntry::decode(r)?,
            right_boundary: BoundaryEntry::decode(r)?,
            range_proof: RangeProof::decode(r)?,
            intersection_verification: IntersectionVerification::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl WireEncode for ServerCost {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.imh_nodes_visited as u64);
        w.put_u64(self.fmh_nodes_visited as u64);
        w.put_u64(self.vo_nodes_collected as u64);
        w.put_u64(self.result_len as u64);
    }
}

impl WireDecode for ServerCost {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ServerCost {
            imh_nodes_visited: r.get_u64()? as usize,
            fmh_nodes_visited: r.get_u64()? as usize,
            vo_nodes_collected: r.get_u64()? as usize,
            result_len: r.get_u64()? as usize,
        })
    }
}

impl WireEncode for QueryResponse {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.records.len());
        for record in &self.records {
            record.encode(w);
        }
        self.vo.encode(w);
        self.cost.encode(w);
    }
}

impl WireDecode for QueryResponse {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut records = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            records.push(Record::decode(r)?);
        }
        Ok(QueryResponse {
            records,
            vo: VerificationObject::decode(r)?,
            cost: ServerCost::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_authquery::{client, IfmhTree, Server, SigningMode};
    use vaq_crypto::{SignatureScheme, Signer};
    use vaq_workload::uniform_dataset;

    fn roundtrip_response(mode: SigningMode, query: &Query) {
        let dataset = uniform_dataset(12, 1, 55);
        let scheme = SignatureScheme::test_rsa(55);
        let tree = IfmhTree::build(&dataset, mode, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let response = server.process(query);

        // Query, result and VO all survive a framed roundtrip.
        let q2 = Query::from_framed_bytes(&query.to_framed_bytes()).unwrap();
        assert_eq!(*query, q2);
        let r2 = QueryResponse::from_framed_bytes(&response.to_framed_bytes()).unwrap();
        assert_eq!(response.records, r2.records);
        assert_eq!(response.vo, r2.vo);
        assert_eq!(response.cost, r2.cost);

        // ...and the decoded response still verifies against the owner key.
        let verifier = scheme.verifier();
        let out = client::verify(
            &q2,
            &r2.records,
            &r2.vo,
            &dataset.template,
            verifier.as_ref(),
        );
        assert!(out.is_ok(), "{mode}: {:?}", out.err());
    }

    #[test]
    fn query_roundtrips() {
        let queries = vec![
            Query::top_k(vec![0.3, 0.7], 5),
            Query::range(vec![0.5], 0.1, 0.9),
            Query::knn(vec![0.2, 0.4, 0.6], 3, 0.75),
        ];
        for q in queries {
            assert_eq!(Query::from_wire_bytes(&q.to_wire_bytes()).unwrap(), q);
        }
    }

    #[test]
    fn malformed_range_query_rejected() {
        // lower > upper must be rejected at decode time rather than panicking
        // later inside Query::range.
        let mut w = Writer::new();
        w.put_u8(2);
        w.put_f64_slice(&[0.5]);
        w.put_f64(0.9);
        w.put_f64(0.1);
        assert_eq!(
            Query::from_wire_bytes(&w.into_bytes()),
            Err(WireError::InvalidFloat)
        );
    }

    #[test]
    fn one_signature_response_roundtrip_verifies() {
        roundtrip_response(SigningMode::OneSignature, &Query::top_k(vec![0.6], 4));
        roundtrip_response(
            SigningMode::OneSignature,
            &Query::range(vec![0.3], 0.2, 0.8),
        );
    }

    #[test]
    fn multi_signature_response_roundtrip_verifies() {
        roundtrip_response(SigningMode::MultiSignature, &Query::knn(vec![0.4], 3, 0.5));
        roundtrip_response(SigningMode::MultiSignature, &Query::top_k(vec![0.8], 2));
    }

    #[test]
    fn encoded_vo_size_close_to_accounting_estimate() {
        // VerificationObject::byte_size is the paper-style accounting figure;
        // the wire encoding should be in the same ballpark (within 2x).
        let dataset = uniform_dataset(30, 1, 56);
        let scheme = SignatureScheme::test_rsa(56);
        let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let resp = server.process(&Query::range(vec![0.5], 0.2, 0.7));
        let estimate = resp.vo.byte_size();
        let actual = resp.vo.to_wire_bytes().len();
        assert!(
            actual >= estimate / 2 && actual <= estimate * 2,
            "estimate {estimate} vs encoded {actual}"
        );
    }

    #[test]
    fn corrupting_any_byte_never_panics() {
        let dataset = uniform_dataset(8, 1, 57);
        let scheme = SignatureScheme::test_rsa(57);
        let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
        let server = Server::new(dataset.clone(), tree);
        let resp = server.process(&Query::top_k(vec![0.5], 3));
        let bytes = resp.vo.to_wire_bytes();
        // Flip one byte at a time across the buffer: decoding must either
        // fail cleanly or produce a VO that fails verification — never panic.
        let verifier = scheme.verifier();
        let query = Query::top_k(vec![0.5], 3);
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x55;
            if let Ok(vo) = VerificationObject::from_wire_bytes(&corrupted) {
                let _ = client::verify(
                    &query,
                    &resp.records,
                    &vo,
                    &dataset.template,
                    verifier.as_ref(),
                );
            }
        }
    }
}
