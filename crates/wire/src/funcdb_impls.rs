//! Wire encodings for function-database values.

use crate::error::WireError;
use crate::io::{Reader, Writer};
use crate::{WireDecode, WireEncode};
use vaq_funcdb::{
    Domain, FuncId, FunctionTemplate, HalfSpace, LinearFunction, Record, SubdomainConstraints,
};

impl WireEncode for Record {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_f64_slice(&self.attrs);
        match &self.label {
            Some(label) => {
                w.put_bool(true);
                w.put_string(label);
            }
            None => w.put_bool(false),
        }
    }
}

impl WireDecode for Record {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let id = r.get_u64()?;
        let attrs = r.get_f64_vec()?;
        let label = if r.get_bool()? {
            Some(r.get_string()?)
        } else {
            None
        };
        Ok(Record { id, attrs, label })
    }
}

impl WireEncode for FuncId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
}

impl WireDecode for FuncId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FuncId(r.get_u32()?))
    }
}

impl WireEncode for LinearFunction {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        w.put_f64_slice(&self.coeffs);
        w.put_f64(self.constant);
    }
}

impl WireDecode for LinearFunction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LinearFunction {
            id: FuncId::decode(r)?,
            coeffs: r.get_f64_vec()?,
            constant: r.get_f64()?,
        })
    }
}

impl WireEncode for FunctionTemplate {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.attr_names.len());
        for name in &self.attr_names {
            w.put_string(name);
        }
    }
}

impl WireDecode for FunctionTemplate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut attr_names = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            attr_names.push(r.get_string()?);
        }
        Ok(FunctionTemplate { attr_names })
    }
}

impl WireEncode for Domain {
    fn encode(&self, w: &mut Writer) {
        w.put_f64_slice(&self.lower);
        w.put_f64_slice(&self.upper);
    }
}

impl WireDecode for Domain {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let lower = r.get_f64_vec()?;
        let upper = r.get_f64_vec()?;
        if lower.len() != upper.len() {
            return Err(WireError::InvalidTag {
                type_name: "Domain",
                tag: 0,
            });
        }
        if lower
            .iter()
            .zip(upper.iter())
            .any(|(l, u)| l.is_nan() || u.is_nan() || l > u)
        {
            return Err(WireError::InvalidFloat);
        }
        Ok(Domain { lower, upper })
    }
}

impl WireEncode for HalfSpace {
    fn encode(&self, w: &mut Writer) {
        w.put_f64_slice(&self.coeffs);
        w.put_f64(self.constant);
        w.put_bool(self.non_negative);
        match self.pair {
            Some((i, j)) => {
                w.put_bool(true);
                w.put_u32(i);
                w.put_u32(j);
            }
            None => w.put_bool(false),
        }
    }
}

impl WireDecode for HalfSpace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let coeffs = r.get_f64_vec()?;
        let constant = r.get_f64()?;
        let non_negative = r.get_bool()?;
        let pair = if r.get_bool()? {
            Some((r.get_u32()?, r.get_u32()?))
        } else {
            None
        };
        Ok(HalfSpace {
            coeffs,
            constant,
            non_negative,
            pair,
        })
    }
}

impl WireEncode for SubdomainConstraints {
    fn encode(&self, w: &mut Writer) {
        self.domain.encode(w);
        w.put_len(self.halfspaces.len());
        for hs in &self.halfspaces {
            hs.encode(w);
        }
    }
}

impl WireDecode for SubdomainConstraints {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let domain = Domain::decode(r)?;
        let len = r.get_len()?;
        let mut halfspaces = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            halfspaces.push(HalfSpace::decode(r)?);
        }
        Ok(SubdomainConstraints { domain, halfspaces })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_with_and_without_label() {
        let r1 = Record::new(42, vec![0.1, 0.2, 0.3]);
        let r2 = Record::with_label(43, vec![1.5], "alice");
        for r in [r1, r2] {
            let back = Record::from_wire_bytes(&r.to_wire_bytes()).unwrap();
            assert_eq!(r, back);
            // The digest (and therefore the Merkle leaf) must be identical.
            assert_eq!(r.digest(), back.digest());
        }
    }

    #[test]
    fn linear_function_roundtrip() {
        let f = LinearFunction::new(FuncId(7), vec![0.5, -0.25, 3.0], 1.75);
        let back = LinearFunction::from_wire_bytes(&f.to_wire_bytes()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn template_and_domain_roundtrip() {
        let t = FunctionTemplate::new(vec!["gpa", "awards", "papers"]);
        assert_eq!(
            FunctionTemplate::from_wire_bytes(&t.to_wire_bytes()).unwrap(),
            t
        );
        let d = Domain::new(vec![0.0, -1.0], vec![1.0, 2.0]);
        assert_eq!(Domain::from_wire_bytes(&d.to_wire_bytes()).unwrap(), d);
    }

    #[test]
    fn malformed_domain_rejected() {
        // lower > upper must not decode into a panic-later Domain.
        let bad = Domain {
            lower: vec![2.0],
            upper: vec![1.0],
        };
        let bytes = bad.to_wire_bytes();
        assert!(Domain::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn halfspace_and_constraints_roundtrip() {
        let hs1 = HalfSpace::raw(vec![1.0, -1.0], 0.25, true);
        let f1 = LinearFunction::new(FuncId(0), vec![1.0, 0.0], 0.0);
        let f2 = LinearFunction::new(FuncId(1), vec![0.0, 1.0], 0.0);
        let hs2 = HalfSpace::below(&f1, &f2);
        let constraints = SubdomainConstraints::whole(Domain::unit(2))
            .with(hs1)
            .with(hs2);
        let back = SubdomainConstraints::from_wire_bytes(&constraints.to_wire_bytes()).unwrap();
        assert_eq!(constraints, back);
        // Digests used in the multi-signature scheme must be preserved.
        assert_eq!(constraints.digest(), back.digest());
        assert_eq!(constraints.inequality_digest(), back.inequality_digest());
    }

    #[test]
    fn truncated_record_rejected() {
        let r = Record::with_label(1, vec![0.5, 0.6], "bob");
        let bytes = r.to_wire_bytes();
        for cut in [1usize, 5, 9, bytes.len() - 1] {
            assert!(Record::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_record_roundtrip(id in 0u64.., attrs in proptest::collection::vec(-1e6f64..1e6, 0..8)) {
            let r = Record::new(id, attrs);
            let back = Record::from_wire_bytes(&r.to_wire_bytes()).unwrap();
            proptest::prop_assert_eq!(r, back);
        }
    }
}
