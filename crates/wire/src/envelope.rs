//! Service envelope messages: the request/response protocol of `vaq-service`.
//!
//! The paper's system model has queries travel from data users to the cloud
//! server and results plus verification objects travel back. This module
//! pins down the byte-level shape of that exchange: a [`Request`] /
//! [`Response`] pair of tagged unions, each sent as one `VAQ1` frame
//! (see [`crate::WireEncode::to_framed_bytes`]). Everything a response needs
//! for client-side verification rides inside the existing
//! [`QueryResponse`] encoding, so a remote round-trip verifies exactly like
//! a local call.
//!
//! Service health telemetry ([`StatsSnapshot`]) is part of the protocol so
//! operators can scrape a running service with nothing but a socket.

use crate::error::WireError;
use crate::io::{Reader, Writer};
use crate::{WireDecode, WireEncode};
use vaq_authquery::{Query, QueryResponse};
use vaq_crypto::sha256::{sha256, Digest};
use vaq_crypto::{PublicKey, Signature};

/// Upper bounds of the fixed latency histogram buckets, in microseconds.
///
/// A histogram carries one count per bound plus a final overflow bucket, so
/// `bucket_counts.len() == LATENCY_BUCKET_BOUNDS_MICROS.len() + 1`. The
/// bounds are part of the wire contract: clients interpret scraped
/// histograms against this table.
pub const LATENCY_BUCKET_BOUNDS_MICROS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 500_000,
];

/// A request from a data user (or operator) to the query service.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Telemetry scrape; answered with [`Response::Stats`].
    Stats,
    /// One analytic query (top-k, range or KNN); answered with
    /// [`Response::Query`] at whatever epoch the service currently serves.
    Query(Query),
    /// A batch of queries answered in order with [`Response::Batch`].
    Batch(Vec<Query>),
    /// Asks which shard of a sharded deployment this service hosts; answered
    /// with [`Response::ShardInfo`] (or a [`ErrorCode::NotSharded`] error by
    /// a standalone service).
    ShardInfo,
    /// Asks for the current owner-signed shard map; answered with
    /// [`Response::ShardMap`] (or a [`ErrorCode::NotSharded`] error when the
    /// service has no published map). Clients re-fetch the map through this
    /// message after a [`ErrorCode::StaleEpoch`] rejection.
    ShardMap,
    /// One analytic query pinned to a publication epoch: the service answers
    /// with [`Response::Query`] only if it currently serves exactly `epoch`,
    /// and with a typed [`ErrorCode::StaleEpoch`] error otherwise. This is
    /// what lets a scatter-gather client guarantee that no merged answer
    /// ever mixes epochs across shards.
    QueryAt {
        /// The publication epoch the client expects (from its verified
        /// shard map or published metadata).
        epoch: u64,
        /// The query itself.
        query: Query,
    },
    /// A batch of queries pinned to a publication epoch, mirroring
    /// [`Request::QueryAt`]: the service answers with [`Response::Batch`]
    /// only if it currently serves exactly `epoch`, and with a typed
    /// [`ErrorCode::StaleEpoch`] error otherwise. This is what lets a
    /// scatter-gather client send one batch frame per shard and still
    /// guarantee that no merged sub-answer ever mixes epochs.
    BatchAt {
        /// The publication epoch the client expects (from its verified
        /// shard map or published metadata).
        epoch: u64,
        /// The queries, answered in order.
        queries: Vec<Query>,
    },
    /// Deep-telemetry scrape; answered with [`Response::StatsDeep`]. On top
    /// of the flat [`StatsSnapshot`] this carries per-stage latency
    /// histograms for the server hot path, so an operator can tell whether a
    /// slow p99 comes from queue wait, cache lookup, query execution, VO
    /// construction, encoding, or the socket write.
    StatsDeep,
    /// A request wrapped with a client-chosen correlation tag. The service
    /// echoes the tag on the matching [`Response::Tagged`] reply, which is
    /// what lets one connection pipeline many requests and receive the
    /// responses out of order — the tag, not the frame position, pairs a
    /// reply with its request. Nesting a `Tagged` request inside another is
    /// rejected at decode time.
    Tagged {
        /// Client-chosen correlation tag, echoed verbatim in the reply.
        tag: u64,
        /// The wrapped request (never itself `Tagged`).
        request: Box<Request>,
    },
}

impl Request {
    /// Canonical bytes of this request.
    ///
    /// The encoding is bijective and decoding consumes every byte, so these
    /// bytes equal the payload a decoder accepted — which is why the
    /// service's response cache can key on received payload bytes directly.
    /// Clients that want to precompute a cache key (or deduplicate requests)
    /// use this method to obtain the same bytes.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes()
    }

    /// Reads the correlation tag of a tagged request payload without
    /// decoding the wrapped request, so a server can route a frame by tag
    /// before paying for a full decode. Returns `None` for untagged (or too
    /// short) payloads.
    pub fn peek_tag(payload: &[u8]) -> Option<u64> {
        let (&variant, rest) = payload.split_first()?;
        if variant != REQUEST_TAG_TAGGED {
            return None;
        }
        let tag_bytes: [u8; 8] = rest.get(..8)?.try_into().ok()?;
        Some(u64::from_le_bytes(tag_bytes))
    }

    /// Splits a tagged request payload into its correlation tag and the
    /// wrapped request's payload bytes, without decoding the wrapped
    /// request. The returned inner slice is exactly the wrapped request's
    /// canonical encoding — the bytes [`Request::canonical_bytes`] would
    /// produce — so a response cache keyed on received payload bytes treats
    /// a tagged and an untagged copy of the same request as one entry.
    /// Returns `None` for untagged payloads.
    pub fn split_tagged(payload: &[u8]) -> Option<(u64, &[u8])> {
        let tag = Self::peek_tag(payload)?;
        Some((tag, payload.get(1 + 8..)?))
    }
}

/// A response from the query service.
///
/// The size skew between variants is inherent (a query response carries
/// records plus a verification object); responses are transient values on
/// the wire path, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Answer to [`Request::Query`] / [`Request::QueryAt`]: result records +
    /// verification object, stamped with the serving epoch.
    Query {
        /// The publication epoch the answering structure was signed at. The
        /// stamp itself is unauthenticated — the response's signatures bind
        /// the epoch cryptographically; the envelope copy lets clients
        /// detect staleness before paying for verification.
        epoch: u64,
        /// The result + verification object.
        response: QueryResponse,
    },
    /// Answer to [`Request::Batch`], in query order, stamped with the
    /// serving epoch (every response in the batch is computed at it).
    Batch {
        /// The publication epoch of every response in the batch.
        epoch: u64,
        /// The per-query results, in request order.
        responses: Vec<QueryResponse>,
    },
    /// Answer to [`Request::ShardInfo`]: the serving shard's identity.
    ShardInfo(ShardInfo),
    /// Answer to [`Request::ShardMap`]: the owner-signed map currently
    /// published to this service.
    ShardMap(SignedShardMap),
    /// Typed failure; the connection stays usable unless the frame itself
    /// was unreadable.
    Error(ErrorReply),
    /// Answer to [`Request::StatsDeep`]: flat snapshot plus per-stage
    /// latency breakdowns.
    StatsDeep(StatsDeep),
    /// Answer to a [`Request::Tagged`] request: the wrapped response,
    /// carrying the request's correlation tag so a pipelining client can
    /// pair it with the right in-flight request regardless of delivery
    /// order. Never nests.
    Tagged {
        /// The correlation tag of the request this response answers.
        tag: u64,
        /// The wrapped response (never itself `Tagged`).
        response: Box<Response>,
    },
}

impl Response {
    /// Builds a framed [`Response::Tagged`] frame around an already-encoded
    /// (unframed) inner response payload, without decoding it. This is the
    /// cached-response fast path: the service caches complete untagged
    /// response payloads, and re-wrapping one for a tagged request must not
    /// cost a decode/re-encode of a potentially large verification object.
    pub fn tagged_frame_from_payload(tag: u64, inner_payload: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(1 + 8 + inner_payload.len());
        payload.push(RESPONSE_TAG_TAGGED);
        payload.extend_from_slice(&tag.to_le_bytes());
        payload.extend_from_slice(inner_payload);
        let mut out = Vec::with_capacity(payload.len() + 10);
        out.extend_from_slice(&crate::MAGIC);
        out.extend_from_slice(&crate::VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Machine-readable error category of an [`ErrorReply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request frame decoded but the request was not understood.
    Malformed,
    /// The query was understood but invalid for the hosted dataset (e.g.
    /// wrong weight-vector dimensionality).
    BadQuery,
    /// The request or response exceeded the service's frame-size limit.
    FrameTooLarge,
    /// The service failed internally while processing the request.
    Internal,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The service is not part of a sharded deployment (reply to
    /// [`Request::ShardInfo`] on a standalone service).
    NotSharded,
    /// The request was pinned to a publication epoch the service does not
    /// currently serve ([`Request::QueryAt`] against a republished — or not
    /// yet republished — dataset). The client should re-fetch the signed
    /// shard map ([`Request::ShardMap`]) and retry at the new epoch.
    StaleEpoch,
    /// The service is at its connection limit and shed this connection
    /// before serving any request. Sent best-effort right before the close,
    /// so a shed client sees a typed reply instead of an unexplained EOF;
    /// retry later or against another replica.
    Overloaded,
    /// The peer stalled mid-frame past the service's patience window
    /// (`ServiceConfig::mid_frame_patience` on the server side). Sent
    /// best-effort right before the close; the connection is unusable
    /// because the stream stopped inside a frame.
    Stalled,
}

impl ErrorCode {
    /// Every error code, in tag order. Telemetry iterates this to break the
    /// flat error counter out per code.
    pub const ALL: [ErrorCode; 9] = [
        ErrorCode::Malformed,
        ErrorCode::BadQuery,
        ErrorCode::FrameTooLarge,
        ErrorCode::Internal,
        ErrorCode::ShuttingDown,
        ErrorCode::NotSharded,
        ErrorCode::StaleEpoch,
        ErrorCode::Overloaded,
        ErrorCode::Stalled,
    ];

    /// Stable position of this code in [`ErrorCode::ALL`].
    pub fn index(self) -> usize {
        (self.tag() - 1) as usize
    }

    /// Stable snake_case label, used in stats payloads and log lines.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::NotSharded => "not_sharded",
            ErrorCode::StaleEpoch => "stale_epoch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Stalled => "stalled",
        }
    }
}

/// A typed error response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorReply {
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// One query kind's latency histogram with fixed buckets
/// ([`LATENCY_BUCKET_BOUNDS_MICROS`] plus an overflow bucket).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// Per-bucket observation counts; one entry per bound plus overflow.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in microseconds.
    pub sum_micros: u64,
    /// Largest observed latency in microseconds.
    pub max_micros: u64,
}

/// Latency histogram of one request kind, labelled for self-description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KindLatency {
    /// Request-kind label (`"topk"`, `"range"`, `"knn"`, `"batch"`).
    pub kind: String,
    /// The kind's latency histogram.
    pub histogram: LatencyHistogram,
}

/// Error replies broken out by [`ErrorCode`], labelled for self-description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorCount {
    /// Error-code label (see [`ErrorCode::label`]).
    pub code: String,
    /// Error replies sent with this code.
    pub count: u64,
}

/// Latency histogram of one hot-path stage, labelled for self-description.
///
/// Stage labels (in hot-path order): `"queue_wait"`, `"decode"`,
/// `"cache_lookup"`, `"flight_wait"`, `"execute"`, `"vo_build"`,
/// `"encode"`, `"write"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageLatency {
    /// Stage label.
    pub stage: String,
    /// The stage's latency histogram (buckets per
    /// [`LATENCY_BUCKET_BOUNDS_MICROS`]).
    pub histogram: LatencyHistogram,
}

/// Aggregate micros one request kind spent in one stage (no buckets — the
/// per-kind breakdown carries sums so the deep snapshot stays compact).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageMicros {
    /// Stage label (same vocabulary as [`StageLatency::stage`]).
    pub stage: String,
    /// Requests of the kind that recorded this stage.
    pub count: u64,
    /// Total micros the kind spent in the stage.
    pub sum_micros: u64,
    /// Largest single-request micros the kind spent in the stage.
    pub max_micros: u64,
}

/// Per-stage time attribution for one request kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KindStages {
    /// Request-kind label (`"topk"`, `"range"`, `"knn"`, `"batch"`).
    pub kind: String,
    /// Stage sums, in hot-path order. For every kind the stage sums are
    /// bounded by the kind's whole-request histogram: stages are disjoint
    /// sub-intervals of the request, so `sum(stages.sum_micros) <=
    /// per_kind[kind].histogram.sum_micros`.
    pub stages: Vec<StageMicros>,
}

/// Health telemetry of the service's reactor thread: sweep-duration
/// distribution, stall count, and the shed counters for connections the
/// reactor gave up on. The runtime cross-check of the static
/// reactor-discipline and bounded-queue lint passes — a blocking call
/// shows up here as a sweep-latency outlier and a `reactor_stalls` bump.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ReactorStats {
    /// Duration distribution of full readiness sweeps (buckets per
    /// [`LATENCY_BUCKET_BOUNDS_MICROS`]).
    pub sweeps: LatencyHistogram,
    /// Sweeps that exceeded the configured stall threshold.
    pub reactor_stalls: u64,
    /// Connections shed because their queued-but-unflushed response bytes
    /// exceeded the per-connection write-queue budget (each also records a
    /// typed overloaded reply in the per-code breakdown).
    pub slow_readers_shed: u64,
    /// Connections shed at the configured connection limit.
    pub connections_shed: u64,
}

/// The deep-telemetry payload of [`Response::StatsDeep`]: the flat
/// [`StatsSnapshot`] plus per-stage histograms over all requests,
/// per-kind stage attribution, and reactor health telemetry.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StatsDeep {
    /// The flat counter snapshot, taken atomically with the breakdowns
    /// below (same scrape).
    pub snapshot: StatsSnapshot,
    /// Per-stage latency histograms over every request the service served.
    pub per_stage: Vec<StageLatency>,
    /// Per-request-kind stage attribution.
    pub per_kind_stage: Vec<KindStages>,
    /// Reactor-thread health: sweep durations, stalls, shed counters.
    pub reactor: ReactorStats,
}

/// A point-in-time snapshot of service counters, served over the wire.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests fully served (including error replies).
    pub requests_served: u64,
    /// Query responses served straight from the response cache.
    pub cache_hits: u64,
    /// Query responses that had to be computed.
    pub cache_misses: u64,
    /// Total request-frame bytes read.
    pub bytes_in: u64,
    /// Total response-frame bytes written.
    pub bytes_out: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Worker threads serving connections.
    pub workers: u32,
    /// The publication epoch the service currently serves (operators scrape
    /// this to watch a fleet converge after a republication).
    pub epoch: u64,
    /// Per-request-kind latency histograms.
    pub per_kind: Vec<KindLatency>,
    /// Micros since the service started accepting connections. Together
    /// with `requests_served` this yields requests/s from one snapshot.
    pub uptime_micros: u64,
    /// Entries currently resident in the response cache.
    pub cache_entries: u64,
    /// Bytes currently resident in the response cache.
    pub cache_bytes: u64,
    /// Entries evicted from the response cache since start (a thrashing
    /// cache shows a high eviction rate; a cold one shows none).
    pub cache_evictions: u64,
    /// Error replies broken out per [`ErrorCode`], in tag order.
    pub per_error: Vec<ErrorCount>,
}

/// Identity of one shard of a sharded deployment, as reported by the shard
/// itself (reply to [`Request::ShardInfo`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// This shard's index in `0..shard_count`.
    pub shard_id: u32,
    /// Total shards in the deployment this service believes it belongs to.
    pub shard_count: u32,
    /// Number of records this shard hosts.
    pub records: u64,
    /// The publication epoch this shard currently serves.
    pub epoch: u64,
}

/// One shard's entry in the owner's attested [`ShardMap`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardEntry {
    /// The shard's index in `0..shard_count`.
    pub shard_id: u32,
    /// Number of records the owner placed on this shard.
    pub records: u64,
    /// The per-shard public key: every query response from this shard must
    /// verify under this key, so one shard cannot answer with another
    /// shard's (equally well-signed) data.
    pub public_key: PublicKey,
    /// Addresses serving this shard, primary first, standbys after. Every
    /// address hosts the same shard data under the same per-shard key, so a
    /// client may fail a scatter leg over to any of them — the attested
    /// entry is what makes the takeover sound (the standby's responses must
    /// verify under the same attested key).
    pub addrs: Vec<String>,
}

/// The owner's description of how one logical dataset is partitioned into
/// disjoint shards.
///
/// Published out of band together with the function template, and attested
/// by the owner's master signature (see [`SignedShardMap`]): a client that
/// checks the signature knows the exact shard count, each shard's record
/// count and each shard's verification key — which is what makes a merged
/// scatter-gather answer complete (no shard can be silently dropped) and
/// sound (no shard can impersonate another).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardMap {
    /// The publication epoch of this map: monotonically increasing across
    /// republications of the logical dataset. Clients never replace a
    /// verified map with one carrying a lower (or equal) epoch, so a
    /// replayed older signed map cannot roll a client back.
    pub epoch: u64,
    /// Number of shards `S`.
    pub shard_count: u32,
    /// Total records across all shards (the logical dataset size).
    pub total_records: u64,
    /// Weight-vector dimensionality of the logical dataset.
    pub dims: u32,
    /// Per-shard entries, in shard-id order.
    pub shards: Vec<ShardEntry>,
}

impl ShardMap {
    /// The digest the owner's master key signs: SHA-256 over the canonical
    /// wire encoding of the map.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_wire_bytes())
    }
}

/// A [`ShardMap`] together with the owner's master signature over
/// [`ShardMap::digest`].
#[derive(Clone, Debug, PartialEq)]
pub struct SignedShardMap {
    /// The attested partition description.
    pub map: ShardMap,
    /// Master signature over [`ShardMap::digest`].
    pub signature: Signature,
}

const REQUEST_TAG_PING: u8 = 1;
const REQUEST_TAG_STATS: u8 = 2;
const REQUEST_TAG_QUERY: u8 = 3;
const REQUEST_TAG_BATCH: u8 = 4;
const REQUEST_TAG_SHARD_INFO: u8 = 5;
const REQUEST_TAG_SHARD_MAP: u8 = 6;
const REQUEST_TAG_QUERY_AT: u8 = 7;
const REQUEST_TAG_BATCH_AT: u8 = 8;
const REQUEST_TAG_STATS_DEEP: u8 = 9;
const REQUEST_TAG_TAGGED: u8 = 10;

impl WireEncode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.put_u8(REQUEST_TAG_PING),
            Request::Stats => w.put_u8(REQUEST_TAG_STATS),
            Request::Query(query) => {
                w.put_u8(REQUEST_TAG_QUERY);
                query.encode(w);
            }
            Request::Batch(queries) => {
                w.put_u8(REQUEST_TAG_BATCH);
                w.put_len(queries.len());
                for query in queries {
                    query.encode(w);
                }
            }
            Request::ShardInfo => w.put_u8(REQUEST_TAG_SHARD_INFO),
            Request::ShardMap => w.put_u8(REQUEST_TAG_SHARD_MAP),
            Request::QueryAt { epoch, query } => {
                w.put_u8(REQUEST_TAG_QUERY_AT);
                w.put_u64(*epoch);
                query.encode(w);
            }
            Request::BatchAt { epoch, queries } => {
                w.put_u8(REQUEST_TAG_BATCH_AT);
                w.put_u64(*epoch);
                w.put_len(queries.len());
                for query in queries {
                    query.encode(w);
                }
            }
            Request::StatsDeep => w.put_u8(REQUEST_TAG_STATS_DEEP),
            Request::Tagged { tag, request } => {
                w.put_u8(REQUEST_TAG_TAGGED);
                w.put_u64(*tag);
                request.encode(w);
            }
        }
    }
}

impl WireDecode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            REQUEST_TAG_PING => Ok(Request::Ping),
            REQUEST_TAG_STATS => Ok(Request::Stats),
            REQUEST_TAG_QUERY => Ok(Request::Query(Query::decode(r)?)),
            REQUEST_TAG_BATCH => {
                let len = r.get_len()?;
                let mut queries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    queries.push(Query::decode(r)?);
                }
                Ok(Request::Batch(queries))
            }
            REQUEST_TAG_SHARD_INFO => Ok(Request::ShardInfo),
            REQUEST_TAG_SHARD_MAP => Ok(Request::ShardMap),
            REQUEST_TAG_QUERY_AT => Ok(Request::QueryAt {
                epoch: r.get_u64()?,
                query: Query::decode(r)?,
            }),
            REQUEST_TAG_BATCH_AT => {
                let epoch = r.get_u64()?;
                let len = r.get_len()?;
                let mut queries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    queries.push(Query::decode(r)?);
                }
                Ok(Request::BatchAt { epoch, queries })
            }
            REQUEST_TAG_STATS_DEEP => Ok(Request::StatsDeep),
            REQUEST_TAG_TAGGED => {
                let tag = r.get_u64()?;
                let request = Request::decode(r)?;
                if matches!(request, Request::Tagged { .. }) {
                    // One level of tagging only: a nested tagged request has
                    // no meaningful reply shape, so reject it at decode time.
                    return Err(WireError::InvalidTag {
                        type_name: "Request::Tagged (nested)",
                        tag: REQUEST_TAG_TAGGED,
                    });
                }
                Ok(Request::Tagged {
                    tag,
                    request: Box::new(request),
                })
            }
            tag => Err(WireError::InvalidTag {
                type_name: "Request",
                tag,
            }),
        }
    }
}

const RESPONSE_TAG_PONG: u8 = 1;
const RESPONSE_TAG_STATS: u8 = 2;
const RESPONSE_TAG_QUERY: u8 = 3;
const RESPONSE_TAG_BATCH: u8 = 4;
const RESPONSE_TAG_ERROR: u8 = 5;
const RESPONSE_TAG_SHARD_INFO: u8 = 6;
const RESPONSE_TAG_SHARD_MAP: u8 = 7;
const RESPONSE_TAG_STATS_DEEP: u8 = 8;
const RESPONSE_TAG_TAGGED: u8 = 9;

impl WireEncode for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Pong => w.put_u8(RESPONSE_TAG_PONG),
            Response::Stats(stats) => {
                w.put_u8(RESPONSE_TAG_STATS);
                stats.encode(w);
            }
            Response::Query { epoch, response } => {
                w.put_u8(RESPONSE_TAG_QUERY);
                w.put_u64(*epoch);
                response.encode(w);
            }
            Response::Batch { epoch, responses } => {
                w.put_u8(RESPONSE_TAG_BATCH);
                w.put_u64(*epoch);
                w.put_len(responses.len());
                for response in responses {
                    response.encode(w);
                }
            }
            Response::ShardInfo(info) => {
                w.put_u8(RESPONSE_TAG_SHARD_INFO);
                info.encode(w);
            }
            Response::ShardMap(map) => {
                w.put_u8(RESPONSE_TAG_SHARD_MAP);
                map.encode(w);
            }
            Response::Error(reply) => {
                w.put_u8(RESPONSE_TAG_ERROR);
                reply.encode(w);
            }
            Response::StatsDeep(deep) => {
                w.put_u8(RESPONSE_TAG_STATS_DEEP);
                deep.encode(w);
            }
            Response::Tagged { tag, response } => {
                w.put_u8(RESPONSE_TAG_TAGGED);
                w.put_u64(*tag);
                response.encode(w);
            }
        }
    }
}

impl WireDecode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            RESPONSE_TAG_PONG => Ok(Response::Pong),
            RESPONSE_TAG_STATS => Ok(Response::Stats(StatsSnapshot::decode(r)?)),
            RESPONSE_TAG_QUERY => Ok(Response::Query {
                epoch: r.get_u64()?,
                response: QueryResponse::decode(r)?,
            }),
            RESPONSE_TAG_BATCH => {
                let epoch = r.get_u64()?;
                let len = r.get_len()?;
                let mut responses = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    responses.push(QueryResponse::decode(r)?);
                }
                Ok(Response::Batch { epoch, responses })
            }
            RESPONSE_TAG_ERROR => Ok(Response::Error(ErrorReply::decode(r)?)),
            RESPONSE_TAG_SHARD_INFO => Ok(Response::ShardInfo(ShardInfo::decode(r)?)),
            RESPONSE_TAG_SHARD_MAP => Ok(Response::ShardMap(SignedShardMap::decode(r)?)),
            RESPONSE_TAG_STATS_DEEP => Ok(Response::StatsDeep(StatsDeep::decode(r)?)),
            RESPONSE_TAG_TAGGED => {
                let tag = r.get_u64()?;
                let response = Response::decode(r)?;
                if matches!(response, Response::Tagged { .. }) {
                    return Err(WireError::InvalidTag {
                        type_name: "Response::Tagged (nested)",
                        tag: RESPONSE_TAG_TAGGED,
                    });
                }
                Ok(Response::Tagged {
                    tag,
                    response: Box::new(response),
                })
            }
            tag => Err(WireError::InvalidTag {
                type_name: "Response",
                tag,
            }),
        }
    }
}

impl ErrorCode {
    fn tag(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::BadQuery => 2,
            ErrorCode::FrameTooLarge => 3,
            ErrorCode::Internal => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::NotSharded => 6,
            ErrorCode::StaleEpoch => 7,
            ErrorCode::Overloaded => 8,
            ErrorCode::Stalled => 9,
        }
    }
}

impl WireEncode for ErrorCode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.tag());
    }
}

impl WireDecode for ErrorCode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::BadQuery),
            3 => Ok(ErrorCode::FrameTooLarge),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::ShuttingDown),
            6 => Ok(ErrorCode::NotSharded),
            7 => Ok(ErrorCode::StaleEpoch),
            8 => Ok(ErrorCode::Overloaded),
            9 => Ok(ErrorCode::Stalled),
            tag => Err(WireError::InvalidTag {
                type_name: "ErrorCode",
                tag,
            }),
        }
    }
}

impl WireEncode for ErrorReply {
    fn encode(&self, w: &mut Writer) {
        self.code.encode(w);
        w.put_string(&self.message);
    }
}

impl WireDecode for ErrorReply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ErrorReply {
            code: ErrorCode::decode(r)?,
            message: r.get_string()?,
        })
    }
}

impl WireEncode for ShardInfo {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shard_id);
        w.put_u32(self.shard_count);
        w.put_u64(self.records);
        w.put_u64(self.epoch);
    }
}

impl WireDecode for ShardInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardInfo {
            shard_id: r.get_u32()?,
            shard_count: r.get_u32()?,
            records: r.get_u64()?,
            epoch: r.get_u64()?,
        })
    }
}

impl WireEncode for ShardEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shard_id);
        w.put_u64(self.records);
        self.public_key.encode(w);
        w.put_len(self.addrs.len());
        for addr in &self.addrs {
            w.put_string(addr);
        }
    }
}

impl WireDecode for ShardEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let shard_id = r.get_u32()?;
        let records = r.get_u64()?;
        let public_key = PublicKey::decode(r)?;
        let len = r.get_len()?;
        let mut addrs = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            addrs.push(r.get_string()?);
        }
        Ok(ShardEntry {
            shard_id,
            records,
            public_key,
            addrs,
        })
    }
}

impl WireEncode for ShardMap {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u32(self.shard_count);
        w.put_u64(self.total_records);
        w.put_u32(self.dims);
        w.put_len(self.shards.len());
        for shard in &self.shards {
            shard.encode(w);
        }
    }
}

impl WireDecode for ShardMap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = r.get_u64()?;
        let shard_count = r.get_u32()?;
        let total_records = r.get_u64()?;
        let dims = r.get_u32()?;
        let len = r.get_len()?;
        let mut shards = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            shards.push(ShardEntry::decode(r)?);
        }
        Ok(ShardMap {
            epoch,
            shard_count,
            total_records,
            dims,
            shards,
        })
    }
}

impl WireEncode for SignedShardMap {
    fn encode(&self, w: &mut Writer) {
        self.map.encode(w);
        self.signature.encode(w);
    }
}

impl WireDecode for SignedShardMap {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedShardMap {
            map: ShardMap::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl WireEncode for LatencyHistogram {
    fn encode(&self, w: &mut Writer) {
        w.put_len(self.bucket_counts.len());
        for count in &self.bucket_counts {
            w.put_u64(*count);
        }
        w.put_u64(self.count);
        w.put_u64(self.sum_micros);
        w.put_u64(self.max_micros);
    }
}

impl WireDecode for LatencyHistogram {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.get_len()?;
        let mut bucket_counts = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            bucket_counts.push(r.get_u64()?);
        }
        Ok(LatencyHistogram {
            bucket_counts,
            count: r.get_u64()?,
            sum_micros: r.get_u64()?,
            max_micros: r.get_u64()?,
        })
    }
}

impl WireEncode for KindLatency {
    fn encode(&self, w: &mut Writer) {
        w.put_string(&self.kind);
        self.histogram.encode(w);
    }
}

impl WireDecode for KindLatency {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(KindLatency {
            kind: r.get_string()?,
            histogram: LatencyHistogram::decode(r)?,
        })
    }
}

impl WireEncode for ErrorCount {
    fn encode(&self, w: &mut Writer) {
        w.put_string(&self.code);
        w.put_u64(self.count);
    }
}

impl WireDecode for ErrorCount {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ErrorCount {
            code: r.get_string()?,
            count: r.get_u64()?,
        })
    }
}

impl WireEncode for StageLatency {
    fn encode(&self, w: &mut Writer) {
        w.put_string(&self.stage);
        self.histogram.encode(w);
    }
}

impl WireDecode for StageLatency {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StageLatency {
            stage: r.get_string()?,
            histogram: LatencyHistogram::decode(r)?,
        })
    }
}

impl WireEncode for StageMicros {
    fn encode(&self, w: &mut Writer) {
        w.put_string(&self.stage);
        w.put_u64(self.count);
        w.put_u64(self.sum_micros);
        w.put_u64(self.max_micros);
    }
}

impl WireDecode for StageMicros {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StageMicros {
            stage: r.get_string()?,
            count: r.get_u64()?,
            sum_micros: r.get_u64()?,
            max_micros: r.get_u64()?,
        })
    }
}

impl WireEncode for KindStages {
    fn encode(&self, w: &mut Writer) {
        w.put_string(&self.kind);
        w.put_len(self.stages.len());
        for stage in &self.stages {
            stage.encode(w);
        }
    }
}

impl WireDecode for KindStages {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let kind = r.get_string()?;
        let len = r.get_len()?;
        let mut stages = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            stages.push(StageMicros::decode(r)?);
        }
        Ok(KindStages { kind, stages })
    }
}

impl WireEncode for ReactorStats {
    fn encode(&self, w: &mut Writer) {
        self.sweeps.encode(w);
        w.put_u64(self.reactor_stalls);
        w.put_u64(self.slow_readers_shed);
        w.put_u64(self.connections_shed);
    }
}

impl WireDecode for ReactorStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ReactorStats {
            sweeps: LatencyHistogram::decode(r)?,
            reactor_stalls: r.get_u64()?,
            slow_readers_shed: r.get_u64()?,
            connections_shed: r.get_u64()?,
        })
    }
}

impl WireEncode for StatsDeep {
    fn encode(&self, w: &mut Writer) {
        self.snapshot.encode(w);
        w.put_len(self.per_stage.len());
        for stage in &self.per_stage {
            stage.encode(w);
        }
        w.put_len(self.per_kind_stage.len());
        for kind in &self.per_kind_stage {
            kind.encode(w);
        }
        self.reactor.encode(w);
    }
}

impl WireDecode for StatsDeep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let snapshot = StatsSnapshot::decode(r)?;
        let len = r.get_len()?;
        let mut per_stage = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            per_stage.push(StageLatency::decode(r)?);
        }
        let len = r.get_len()?;
        let mut per_kind_stage = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            per_kind_stage.push(KindStages::decode(r)?);
        }
        Ok(StatsDeep {
            snapshot,
            per_stage,
            per_kind_stage,
            reactor: ReactorStats::decode(r)?,
        })
    }
}

impl WireEncode for StatsSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.requests_served);
        w.put_u64(self.cache_hits);
        w.put_u64(self.cache_misses);
        w.put_u64(self.bytes_in);
        w.put_u64(self.bytes_out);
        w.put_u64(self.errors);
        w.put_u32(self.workers);
        w.put_u64(self.epoch);
        w.put_len(self.per_kind.len());
        for kind in &self.per_kind {
            kind.encode(w);
        }
        w.put_u64(self.uptime_micros);
        w.put_u64(self.cache_entries);
        w.put_u64(self.cache_bytes);
        w.put_u64(self.cache_evictions);
        w.put_len(self.per_error.len());
        for error in &self.per_error {
            error.encode(w);
        }
    }
}

impl WireDecode for StatsSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let requests_served = r.get_u64()?;
        let cache_hits = r.get_u64()?;
        let cache_misses = r.get_u64()?;
        let bytes_in = r.get_u64()?;
        let bytes_out = r.get_u64()?;
        let errors = r.get_u64()?;
        let workers = r.get_u32()?;
        let epoch = r.get_u64()?;
        let len = r.get_len()?;
        let mut per_kind = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            per_kind.push(KindLatency::decode(r)?);
        }
        let uptime_micros = r.get_u64()?;
        let cache_entries = r.get_u64()?;
        let cache_bytes = r.get_u64()?;
        let cache_evictions = r.get_u64()?;
        let len = r.get_len()?;
        let mut per_error = Vec::with_capacity(len.min(64));
        for _ in 0..len {
            per_error.push(ErrorCount::decode(r)?);
        }
        Ok(StatsSnapshot {
            requests_served,
            cache_hits,
            cache_misses,
            bytes_in,
            bytes_out,
            errors,
            workers,
            epoch,
            per_kind,
            uptime_micros,
            cache_entries,
            cache_bytes,
            cache_evictions,
            per_error,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_variants_roundtrip() {
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Query(Query::top_k(vec![0.2, 0.8], 3)),
            Request::Batch(vec![
                Query::range(vec![0.5], 0.1, 0.9),
                Query::knn(vec![0.3, 0.7], 2, 0.4),
            ]),
            Request::ShardInfo,
            Request::ShardMap,
            Request::QueryAt {
                epoch: u64::MAX,
                query: Query::top_k(vec![0.1, 0.9], 2),
            },
            Request::BatchAt {
                epoch: 0,
                queries: vec![],
            },
            Request::BatchAt {
                epoch: u64::MAX,
                queries: vec![
                    Query::top_k(vec![0.1, 0.9], 2),
                    Query::range(vec![0.5], 0.1, 0.9),
                ],
            },
            Request::StatsDeep,
            Request::Tagged {
                tag: u64::MAX,
                request: Box::new(Request::Query(Query::top_k(vec![0.4, 0.6], 1))),
            },
        ];
        for request in requests {
            let bytes = request.to_framed_bytes();
            assert_eq!(Request::from_framed_bytes(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn tagged_request_helpers_agree_with_the_encoding() {
        let inner = Request::Query(Query::top_k(vec![0.2, 0.8], 3));
        let tagged = Request::Tagged {
            tag: 0xDEAD_BEEF,
            request: Box::new(inner.clone()),
        };
        let payload = tagged.to_wire_bytes();
        assert_eq!(Request::from_wire_bytes(&payload).unwrap(), tagged);
        assert_eq!(Request::peek_tag(&payload), Some(0xDEAD_BEEF));
        let (tag, inner_bytes) = Request::split_tagged(&payload).unwrap();
        assert_eq!(tag, 0xDEAD_BEEF);
        // The inner slice is the wrapped request's canonical bytes, so a
        // payload-keyed response cache unifies tagged and untagged copies.
        assert_eq!(inner_bytes, inner.canonical_bytes().as_slice());
        assert_eq!(Request::peek_tag(&inner.canonical_bytes()), None);
        assert_eq!(Request::split_tagged(&inner.canonical_bytes()), None);
        assert_eq!(Request::peek_tag(&[]), None);
    }

    #[test]
    fn nested_tagged_envelopes_are_rejected() {
        // Hand-build a Tagged-in-Tagged payload; the decoder must reject it.
        let mut w = Writer::new();
        w.put_u8(10); // REQUEST_TAG_TAGGED
        w.put_u64(1);
        Request::Tagged {
            tag: 2,
            request: Box::new(Request::Ping),
        }
        .encode(&mut w);
        assert!(matches!(
            Request::from_wire_bytes(&w.into_bytes()),
            Err(WireError::InvalidTag { .. })
        ));

        let mut w = Writer::new();
        w.put_u8(9); // RESPONSE_TAG_TAGGED
        w.put_u64(1);
        Response::Tagged {
            tag: 2,
            response: Box::new(Response::Pong),
        }
        .encode(&mut w);
        assert!(matches!(
            Response::from_wire_bytes(&w.into_bytes()),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn tagged_frame_from_payload_matches_the_direct_encoding() {
        let reply = Response::Error(ErrorReply {
            code: ErrorCode::Overloaded,
            message: "connection limit reached".into(),
        });
        let framed = Response::tagged_frame_from_payload(7, &reply.to_wire_bytes());
        // Byte-identical to encoding the tagged value directly: the fast
        // path re-wraps cached payloads without changing the wire contract.
        let direct = Response::Tagged {
            tag: 7,
            response: Box::new(reply),
        }
        .to_framed_bytes();
        assert_eq!(framed, direct);
        match Response::from_framed_bytes(&framed).unwrap() {
            Response::Tagged { tag, response } => {
                assert_eq!(tag, 7);
                match *response {
                    Response::Error(e) => {
                        assert_eq!(e.code, ErrorCode::Overloaded);
                        assert_eq!(e.message, "connection limit reached");
                    }
                    other => panic!("expected Error, got {other:?}"),
                }
            }
            other => panic!("expected Tagged, got {other:?}"),
        }
    }

    #[test]
    fn stall_and_overload_codes_roundtrip() {
        for code in [ErrorCode::Overloaded, ErrorCode::Stalled] {
            let reply = ErrorReply {
                code,
                message: code.label().into(),
            };
            let bytes = reply.to_wire_bytes();
            assert_eq!(ErrorReply::from_wire_bytes(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn error_and_stats_roundtrip() {
        let reply = ErrorReply {
            code: ErrorCode::BadQuery,
            message: "weight vector has 3 dims, dataset has 2".into(),
        };
        let bytes = reply.to_wire_bytes();
        assert_eq!(ErrorReply::from_wire_bytes(&bytes).unwrap(), reply);

        let stats = StatsSnapshot {
            requests_served: 10,
            cache_hits: 4,
            cache_misses: 6,
            bytes_in: 1234,
            bytes_out: 99999,
            errors: 1,
            workers: 8,
            epoch: 3,
            per_kind: vec![KindLatency {
                kind: "topk".into(),
                histogram: LatencyHistogram {
                    bucket_counts: vec![0; LATENCY_BUCKET_BOUNDS_MICROS.len() + 1],
                    count: 7,
                    sum_micros: 4200,
                    max_micros: 900,
                },
            }],
            uptime_micros: 5_000_000,
            cache_entries: 12,
            cache_bytes: 4096,
            cache_evictions: 3,
            per_error: vec![ErrorCount {
                code: "bad_query".into(),
                count: 1,
            }],
        };
        let bytes = stats.to_wire_bytes();
        assert_eq!(StatsSnapshot::from_wire_bytes(&bytes).unwrap(), stats);
    }

    #[test]
    fn stats_deep_roundtrips() {
        let deep = StatsDeep {
            snapshot: StatsSnapshot {
                requests_served: 3,
                epoch: 2,
                workers: 4,
                per_error: ErrorCode::ALL
                    .iter()
                    .map(|code| ErrorCount {
                        code: code.label().into(),
                        count: code.index() as u64,
                    })
                    .collect(),
                ..StatsSnapshot::default()
            },
            per_stage: vec![
                StageLatency {
                    stage: "queue_wait".into(),
                    histogram: LatencyHistogram {
                        bucket_counts: vec![1; LATENCY_BUCKET_BOUNDS_MICROS.len() + 1],
                        count: 13,
                        sum_micros: 999,
                        max_micros: 600_000,
                    },
                },
                StageLatency {
                    stage: "execute".into(),
                    histogram: LatencyHistogram::default(),
                },
            ],
            per_kind_stage: vec![KindStages {
                kind: "topk".into(),
                stages: vec![StageMicros {
                    stage: "execute".into(),
                    count: 2,
                    sum_micros: 840,
                    max_micros: 500,
                }],
            }],
            reactor: ReactorStats {
                sweeps: LatencyHistogram {
                    bucket_counts: vec![2; LATENCY_BUCKET_BOUNDS_MICROS.len() + 1],
                    count: 26,
                    sum_micros: 4242,
                    max_micros: 1_200_000,
                },
                reactor_stalls: 1,
                slow_readers_shed: 3,
                connections_shed: 5,
            },
        };
        let bytes = deep.to_wire_bytes();
        assert_eq!(StatsDeep::from_wire_bytes(&bytes).unwrap(), deep);

        // And through the response envelope.
        let framed = Response::StatsDeep(deep.clone()).to_framed_bytes();
        match Response::from_framed_bytes(&framed).unwrap() {
            Response::StatsDeep(decoded) => assert_eq!(decoded, deep),
            other => panic!("expected StatsDeep, got {other:?}"),
        }
    }

    #[test]
    fn error_code_labels_are_distinct_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(code.index(), i);
            assert!(
                seen.insert(code.label()),
                "duplicate label {}",
                code.label()
            );
        }
    }

    #[test]
    fn shard_messages_roundtrip_and_digest_is_canonical() {
        use vaq_crypto::{SignatureScheme, Signer, Verifier};

        let info = ShardInfo {
            shard_id: 2,
            shard_count: 5,
            records: 321,
            epoch: 9,
        };
        let bytes = info.to_wire_bytes();
        assert_eq!(ShardInfo::from_wire_bytes(&bytes).unwrap(), info);

        let scheme = SignatureScheme::test_rsa(0x5a);
        let map = ShardMap {
            epoch: 4,
            shard_count: 2,
            total_records: 11,
            dims: 1,
            shards: vec![
                ShardEntry {
                    shard_id: 0,
                    records: 6,
                    public_key: scheme.public_key(),
                    addrs: vec!["127.0.0.1:4100".into(), "127.0.0.1:4101".into()],
                },
                ShardEntry {
                    shard_id: 1,
                    records: 5,
                    public_key: scheme.public_key(),
                    addrs: vec!["127.0.0.1:4102".into()],
                },
            ],
        };
        let bytes = map.to_wire_bytes();
        let decoded = ShardMap::from_wire_bytes(&bytes).unwrap();
        assert_eq!(decoded, map);
        // The digest is a function of the canonical encoding, so a decoded
        // copy commits to the same bytes.
        assert_eq!(decoded.digest(), map.digest());

        let signed = SignedShardMap {
            signature: scheme.sign_digest(&map.digest()),
            map,
        };
        let bytes = signed.to_wire_bytes();
        let decoded = SignedShardMap::from_wire_bytes(&bytes).unwrap();
        assert_eq!(decoded, signed);
        assert!(scheme
            .public_key()
            .verify_digest(&decoded.map.digest(), &decoded.signature));

        // Tampering with any field of the map changes the attested digest.
        let mut tampered = signed.map.clone();
        tampered.shards[1].records = 4;
        assert_ne!(tampered.digest(), signed.map.digest());
        tampered = signed.map.clone();
        tampered.shard_count = 1;
        tampered.shards.pop();
        assert_ne!(tampered.digest(), signed.map.digest());
        // The epoch and the address lists are attested too: a relabelled
        // epoch or a redirected standby address breaks the signature.
        tampered = signed.map.clone();
        tampered.epoch += 1;
        assert_ne!(tampered.digest(), signed.map.digest());
        tampered = signed.map.clone();
        tampered.shards[0].addrs[1] = "10.0.0.1:9999".into();
        assert_ne!(tampered.digest(), signed.map.digest());
    }

    #[test]
    fn canonical_bytes_distinguish_queries() {
        let a = Request::Query(Query::top_k(vec![0.5], 3));
        let b = Request::Query(Query::top_k(vec![0.5], 4));
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.canonical_bytes(), a.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish_pinned_and_unpinned_batches() {
        let queries = vec![Query::top_k(vec![0.5], 3)];
        let plain = Request::Batch(queries.clone());
        let pinned = Request::BatchAt {
            epoch: 0,
            queries: queries.clone(),
        };
        let later = Request::BatchAt { epoch: 1, queries };
        assert_ne!(plain.canonical_bytes(), pinned.canonical_bytes());
        assert_ne!(pinned.canonical_bytes(), later.canonical_bytes());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::from_wire_bytes(&[0xEE]),
            Err(WireError::InvalidTag { .. })
        ));
        assert!(matches!(
            Response::from_wire_bytes(&[0xEE]),
            Err(WireError::InvalidTag { .. })
        ));
        assert!(matches!(
            ErrorCode::from_wire_bytes(&[0x00]),
            Err(WireError::InvalidTag { .. })
        ));
    }
}
