//! Differential tests for the server's epoch-scoped interior-proof cache:
//! the cache must be invisible on the wire. For every query kind, signing
//! mode, signature scheme and epoch — including the boundary epochs `0` and
//! `u64::MAX` — the cached path ([`Server::process`]) and the re-walking
//! reference path ([`Server::process_uncached`]) must produce byte-identical
//! verification objects and identical cost accounting.

use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{SignatureScheme, Signer};
use vaq_wire::WireEncode;
use vaq_workload::uniform_dataset;

/// One query of every kind, aimed at the middle of the unit domain.
fn all_kinds(dims: usize) -> Vec<Query> {
    let w = vec![1.0 / dims as f64; dims];
    vec![
        Query::top_k(w.clone(), 3),
        Query::range(w.clone(), 0.2, 0.7),
        Query::knn(w, 2, 0.5),
    ]
}

#[test]
fn cached_and_uncached_vo_bytes_are_identical_across_kinds_modes_and_epochs() {
    let dims = 2;
    let dataset = uniform_dataset(40, dims, 7);
    for (name, scheme) in [
        ("rsa", SignatureScheme::test_rsa(9)),
        ("dsa", SignatureScheme::test_dsa(9)),
    ] {
        for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
            for epoch in [0u64, 1, u64::MAX] {
                let tree = IfmhTree::build_at_epoch(&dataset, mode, &scheme, epoch);
                let server = Server::new(dataset.clone(), tree);
                let verifier = scheme.verifier();
                for query in all_kinds(dims) {
                    let cached = server.process(&query);
                    let uncached = server.process_uncached(&query);
                    let ctx = format!("{name} {mode:?} epoch {epoch} query {query}");
                    assert_eq!(
                        cached.vo.to_wire_bytes(),
                        uncached.vo.to_wire_bytes(),
                        "VO bytes diverge: {ctx}"
                    );
                    assert_eq!(
                        cached.vo.to_framed_bytes(),
                        uncached.vo.to_framed_bytes(),
                        "framed VO bytes diverge: {ctx}"
                    );
                    let cached_ids: Vec<u64> = cached.records.iter().map(|r| r.id).collect();
                    let uncached_ids: Vec<u64> = uncached.records.iter().map(|r| r.id).collect();
                    assert_eq!(cached_ids, uncached_ids, "records diverge: {ctx}");
                    assert_eq!(
                        cached.cost.vo_nodes_collected, uncached.cost.vo_nodes_collected,
                        "cost accounting diverges: {ctx}"
                    );
                    // And the cached bytes verify at exactly their epoch.
                    let out = client::verify_at_epoch(
                        &query,
                        &cached.records,
                        &cached.vo,
                        &dataset.template,
                        verifier.as_ref(),
                        epoch,
                    );
                    assert!(out.is_ok(), "cached VO failed to verify: {ctx} ({out:?})");
                }
            }
        }
    }
}

#[test]
fn cached_responses_never_verify_under_a_different_epoch() {
    let dataset = uniform_dataset(24, 1, 11);
    let scheme = SignatureScheme::test_rsa(5);
    for mode in [SigningMode::OneSignature, SigningMode::MultiSignature] {
        let tree = IfmhTree::build_at_epoch(&dataset, mode, &scheme, 3);
        let server = Server::new(dataset.clone(), tree);
        let verifier = scheme.verifier();
        let query = Query::top_k(vec![0.5], 2);
        let resp = server.process(&query);
        let ok = client::verify_at_epoch(
            &query,
            &resp.records,
            &resp.vo,
            &dataset.template,
            verifier.as_ref(),
            3,
        );
        assert!(ok.is_ok(), "{mode:?}: honest epoch must verify");
        for wrong in [0u64, 2, 4, u64::MAX] {
            let out = client::verify_at_epoch(
                &query,
                &resp.records,
                &resp.vo,
                &dataset.template,
                verifier.as_ref(),
                wrong,
            );
            assert!(
                out.is_err(),
                "{mode:?}: cached VO signed at epoch 3 must not verify at {wrong}"
            );
        }
    }
}
