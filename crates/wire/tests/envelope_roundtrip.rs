//! Property tests for the service envelope messages: random requests and
//! stats round-trip bit-exactly, and corrupted frames (truncation, bad
//! magic, forged length) are always rejected, never mis-decoded.

use proptest::prelude::*;
use vaq_authquery::Query;
use vaq_wire::{
    ErrorCode, ErrorCount, ErrorReply, KindLatency, KindStages, LatencyHistogram, ReactorStats,
    Request, Response, ShardEntry, ShardInfo, ShardMap, SignedShardMap, StageLatency, StageMicros,
    StatsDeep, StatsSnapshot, WireDecode, WireEncode, WireError, LATENCY_BUCKET_BOUNDS_MICROS,
};

/// Epoch values every epoch-carrying message is exercised with: both
/// boundaries (0, `u64::MAX`) plus interior values derived from the
/// generated selector.
fn epoch_from(selector: u64) -> u64 {
    match selector % 4 {
        0 => 0,
        1 => u64::MAX,
        2 => u64::MAX - (selector >> 2),
        _ => selector,
    }
}

/// Strategy for one random (always well-formed) query.
fn query_from(parts: &(u8, Vec<f64>, usize, f64, f64)) -> Query {
    let (kind, weights, k, a, b) = parts;
    let weights = if weights.is_empty() {
        vec![0.5]
    } else {
        weights.clone()
    };
    match kind % 3 {
        0 => Query::top_k(weights, *k),
        1 => {
            let (lower, upper) = if a <= b { (*a, *b) } else { (*b, *a) };
            Query::range(weights, lower, upper)
        }
        _ => Query::knn(weights, *k, *a),
    }
}

fn query_parts() -> impl Strategy<Value = (u8, Vec<f64>, usize, f64, f64)> {
    (
        0u8..=255,
        prop::collection::vec(-1e3f64..1e3, 1..5),
        0usize..20,
        -10.0f64..10.0,
        -10.0f64..10.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_framed(parts in query_parts(), selector in 0u8..10, epoch_selector in 0u64..) {
        let request = match selector {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Query(query_from(&parts)),
            3 => Request::ShardInfo,
            4 => Request::ShardMap,
            5 => Request::QueryAt {
                epoch: epoch_from(epoch_selector),
                query: query_from(&parts),
            },
            6 => Request::BatchAt {
                epoch: epoch_from(epoch_selector),
                queries: vec![query_from(&parts), query_from(&parts)],
            },
            7 => Request::StatsDeep,
            8 => Request::Tagged {
                tag: epoch_selector,
                request: Box::new(Request::Query(query_from(&parts))),
            },
            _ => Request::Batch(vec![query_from(&parts), query_from(&parts)]),
        };
        let bytes = request.to_framed_bytes();
        let back = Request::from_framed_bytes(&bytes);
        prop_assert_eq!(back.as_ref().ok(), Some(&request));
    }

    #[test]
    fn tagged_requests_encode_canonically_and_expose_their_tag(
        parts in query_parts(),
        tag in 0u64..,
        other_tag in 0u64..,
    ) {
        // Bijectivity: the tagged canonical bytes determine (tag, request)
        // exactly, the inner slice equals the wrapped request's own
        // canonical bytes (so tagged and untagged copies of one query share
        // a response-cache entry), and peek_tag reads the tag without a
        // decode.
        let inner = Request::Query(query_from(&parts));
        let tagged = Request::Tagged { tag, request: Box::new(inner.clone()) };
        let bytes = tagged.canonical_bytes();
        let decoded = Request::from_wire_bytes(&bytes).ok();
        prop_assert_eq!(decoded.as_ref(), Some(&tagged));
        prop_assert_eq!(&tagged.canonical_bytes(), &bytes, "encoding must be deterministic");
        prop_assert_eq!(Request::peek_tag(&bytes), Some(tag));
        let (peeked, inner_bytes) = Request::split_tagged(&bytes).expect("tagged payload splits");
        prop_assert_eq!(peeked, tag);
        let inner_canonical = inner.canonical_bytes();
        prop_assert_eq!(inner_bytes, inner_canonical.as_slice());
        prop_assert_ne!(bytes.clone(), inner_canonical);
        if other_tag != tag {
            let retagged = Request::Tagged { tag: other_tag, request: Box::new(inner) };
            prop_assert_ne!(retagged.canonical_bytes(), bytes);
        }
    }

    #[test]
    fn tagged_responses_echo_the_tag_through_framing(tag in 0u64.., k in 1usize..4) {
        let inner = Response::Query { epoch: 3, response: sample_response(k) };
        let tagged = Response::Tagged { tag, response: Box::new(inner.clone()) };
        let bytes = tagged.to_framed_bytes();
        // The no-decode re-framing helper produces the identical frame.
        prop_assert_eq!(
            Response::tagged_frame_from_payload(tag, &inner.to_wire_bytes()),
            bytes.clone()
        );
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Tagged { tag: back, response }) => {
                prop_assert_eq!(back, tag);
                match (*response, inner) {
                    (
                        Response::Query { epoch: be, response: bp },
                        Response::Query { epoch: ie, response: ip },
                    ) => {
                        prop_assert_eq!(be, ie);
                        prop_assert_eq!(bp.records, ip.records);
                        prop_assert_eq!(bp.vo, ip.vo);
                    }
                    other => prop_assert!(false, "wrong inner decode: {:?}", other.0),
                }
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn nested_tagged_frames_are_always_rejected(outer in 0u64.., inner in 0u64..) {
        // A Tagged wrapping a Tagged has no meaningful reply pairing; the
        // decoder must reject every such frame, whatever the tags.
        let mut bytes = Vec::new();
        bytes.push(10u8); // request Tagged variant byte
        bytes.extend_from_slice(&outer.to_le_bytes());
        bytes.extend_from_slice(
            &Request::Tagged { tag: inner, request: Box::new(Request::Ping) }.to_wire_bytes(),
        );
        prop_assert!(matches!(
            Request::from_wire_bytes(&bytes),
            Err(WireError::InvalidTag { .. })
        ));

        let mut bytes = Vec::new();
        bytes.push(9u8); // response Tagged variant byte
        bytes.extend_from_slice(&outer.to_le_bytes());
        bytes.extend_from_slice(
            &Response::Tagged { tag: inner, response: Box::new(Response::Pong) }.to_wire_bytes(),
        );
        prop_assert!(matches!(
            Response::from_wire_bytes(&bytes),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn pinned_batches_encode_canonically_at_epoch_boundaries(
        parts in query_parts(),
        epoch_selector in 0u64..,
        batch_len in 0usize..4,
    ) {
        // The canonical encoding is bijective: the bytes determine (epoch,
        // queries) exactly, so a pinned batch at one epoch can never alias a
        // pinned batch at another epoch or an unpinned batch — which is what
        // the service's epoch-prefixed response-cache keys rely on.
        let epoch = epoch_from(epoch_selector);
        let queries: Vec<Query> = (0..batch_len).map(|_| query_from(&parts)).collect();
        let pinned = Request::BatchAt { epoch, queries: queries.clone() };
        let bytes = pinned.canonical_bytes();
        let decoded = Request::from_wire_bytes(&bytes).ok();
        prop_assert_eq!(decoded.as_ref(), Some(&pinned));
        prop_assert_eq!(&pinned.canonical_bytes(), &bytes, "encoding must be deterministic");
        let unpinned = Request::Batch(queries.clone());
        prop_assert_ne!(unpinned.canonical_bytes(), bytes.clone());
        if epoch != u64::MAX {
            let shifted = Request::BatchAt { epoch: epoch + 1, queries };
            prop_assert_ne!(shifted.canonical_bytes(), bytes);
        }
    }

    #[test]
    fn truncated_frames_never_decode(parts in query_parts(), cut_fraction in 0.0f64..1.0) {
        let request = Request::Batch(vec![query_from(&parts)]);
        let bytes = request.to_framed_bytes();
        // Any strict prefix must be rejected.
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        let result = Request::from_framed_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "prefix of {} of {} decoded", cut, bytes.len());
    }

    #[test]
    fn bad_magic_is_rejected(parts in query_parts(), corrupt_byte in 0usize..4, xor in 1u8..=255) {
        let request = Request::Query(query_from(&parts));
        let mut bytes = request.to_framed_bytes();
        bytes[corrupt_byte] ^= xor;
        prop_assert_eq!(
            Request::from_framed_bytes(&bytes).err(),
            Some(WireError::BadMagic)
        );
    }

    #[test]
    fn forged_length_is_rejected(parts in query_parts(), delta in 1u32..1000) {
        let request = Request::Query(query_from(&parts));
        let mut bytes = request.to_framed_bytes();
        let declared = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
        let forged = declared.wrapping_add(delta).to_le_bytes();
        bytes[6..10].copy_from_slice(&forged);
        prop_assert!(matches!(
            Request::from_framed_bytes(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupting_any_payload_byte_never_panics(parts in query_parts(), position in 0usize..4096, xor in 1u8..=255) {
        let request = Request::Batch(vec![query_from(&parts), query_from(&parts)]);
        let mut bytes = request.to_wire_bytes();
        let position = position % bytes.len();
        bytes[position] ^= xor;
        // Decoding either fails cleanly or yields a different (valid)
        // request; both are fine — panicking or looping is not.
        let _ = Request::from_wire_bytes(&bytes);
    }

    #[test]
    fn stats_snapshots_roundtrip(
        counters in prop::collection::vec(0u64.., 6..=6),
        workers in 0u32..256,
        epoch_selector in 0u64..,
        counts in prop::collection::vec(0u64..1_000_000, 13..=13),
    ) {
        let histogram = LatencyHistogram {
            bucket_counts: counts.clone(),
            count: counts.iter().sum(),
            sum_micros: counters[0],
            max_micros: counters[1],
        };
        let stats = StatsSnapshot {
            requests_served: counters[0],
            cache_hits: counters[1],
            cache_misses: counters[2],
            bytes_in: counters[3],
            bytes_out: counters[4],
            errors: counters[5],
            workers,
            epoch: epoch_from(epoch_selector),
            per_kind: vec![
                KindLatency { kind: "topk".into(), histogram: histogram.clone() },
                KindLatency { kind: "batch".into(), histogram },
            ],
            uptime_micros: counters[2].wrapping_mul(3),
            cache_entries: counters[3] % 4096,
            cache_bytes: counters[4],
            cache_evictions: counters[5],
            per_error: vec![
                ErrorCount { code: "bad_query".into(), count: counters[0] },
                ErrorCount { code: "stale_epoch".into(), count: counters[1] },
            ],
        };
        let response = Response::Stats(stats.clone());
        let bytes = response.to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Stats(back)) => prop_assert_eq!(back, stats),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn stats_deep_roundtrips_framed(
        counters in prop::collection::vec(0u64.., 6..=6),
        workers in 0u32..256,
        epoch_selector in 0u64..,
        counts in prop::collection::vec(0u64..1_000_000, 13..=13),
        stage_count in 0usize..9,
    ) {
        let histogram = LatencyHistogram {
            bucket_counts: counts.clone(),
            count: counts.iter().sum(),
            sum_micros: counters[0],
            max_micros: counters[1],
        };
        let stage_labels = [
            "queue_wait", "decode", "cache_lookup", "flight_wait",
            "execute", "vo_build", "encode", "write",
        ];
        let deep = StatsDeep {
            snapshot: StatsSnapshot {
                requests_served: counters[0],
                cache_hits: counters[1],
                cache_misses: counters[2],
                bytes_in: counters[3],
                bytes_out: counters[4],
                errors: counters[5],
                workers,
                epoch: epoch_from(epoch_selector),
                per_kind: vec![
                    KindLatency { kind: "range".into(), histogram: histogram.clone() },
                ],
                uptime_micros: counters[0].wrapping_add(counters[1]),
                cache_entries: counters[2] % 1024,
                cache_bytes: counters[3],
                cache_evictions: counters[4] % 100,
                per_error: vec![
                    ErrorCount { code: "malformed".into(), count: counters[5] },
                ],
            },
            per_stage: stage_labels[..stage_count]
                .iter()
                .map(|stage| StageLatency {
                    stage: (*stage).into(),
                    histogram: histogram.clone(),
                })
                .collect(),
            per_kind_stage: vec![KindStages {
                kind: "knn".into(),
                stages: stage_labels[..stage_count]
                    .iter()
                    .map(|stage| StageMicros {
                        stage: (*stage).into(),
                        count: counters[0],
                        sum_micros: counters[1],
                        max_micros: counters[2],
                    })
                    .collect(),
            }],
            reactor: ReactorStats {
                sweeps: histogram.clone(),
                reactor_stalls: counters[3],
                slow_readers_shed: counters[4],
                connections_shed: counters[5],
            },
        };
        let response = Response::StatsDeep(deep.clone());
        let bytes = response.to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::StatsDeep(back)) => prop_assert_eq!(back, deep),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
        // The canonical encoding stays deterministic.
        let reencoded = Response::StatsDeep(deep).to_framed_bytes();
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn error_replies_roundtrip(code_selector in 0u8..9, message in prop::collection::vec(32u8..127, 0..64)) {
        let code = [
            ErrorCode::Malformed,
            ErrorCode::BadQuery,
            ErrorCode::FrameTooLarge,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
            ErrorCode::NotSharded,
            ErrorCode::StaleEpoch,
            ErrorCode::Overloaded,
            ErrorCode::Stalled,
        ][code_selector as usize];
        let reply = ErrorReply {
            code,
            message: String::from_utf8(message).unwrap(),
        };
        let bytes = Response::Error(reply.clone()).to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Error(back)) => prop_assert_eq!(back, reply),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn shard_info_roundtrips_at_epoch_boundaries(
        shard_id in 0u32..,
        shard_count in 0u32..,
        records in 0u64..,
        epoch_selector in 0u64..,
    ) {
        let info = ShardInfo {
            shard_id,
            shard_count,
            records,
            epoch: epoch_from(epoch_selector),
        };
        let bytes = Response::ShardInfo(info).to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::ShardInfo(back)) => prop_assert_eq!(back, info),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn signed_shard_maps_roundtrip_and_redigest_canonically(
        epoch_selector in 0u64..,
        records in prop::collection::vec(1u64..1_000, 1..4),
        addr_count in 0usize..3,
        key_seed in 0u64..8,
    ) {
        use vaq_crypto::{SignatureScheme, Signer, Verifier};
        let scheme = SignatureScheme::test_rsa(key_seed);
        let epoch = epoch_from(epoch_selector);
        let map = ShardMap {
            epoch,
            shard_count: records.len() as u32,
            total_records: records.iter().sum(),
            dims: 2,
            shards: records
                .iter()
                .enumerate()
                .map(|(shard_id, n)| ShardEntry {
                    shard_id: shard_id as u32,
                    records: *n,
                    public_key: scheme.public_key(),
                    addrs: (0..addr_count)
                        .map(|r| format!("127.0.0.1:{}", 4400 + shard_id * 4 + r))
                        .collect(),
                })
                .collect(),
        };
        let signed = SignedShardMap {
            signature: scheme.sign_digest(&map.digest()),
            map,
        };
        let bytes = Response::ShardMap(signed.clone()).to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::ShardMap(back)) => {
                // The decoded copy commits to the same canonical bytes, so
                // a signature check on the decoded map checks the same
                // digest the owner signed.
                prop_assert_eq!(back.map.digest(), signed.map.digest());
                prop_assert!(scheme.public_key().verify_digest(&back.map.digest(), &back.signature));
                prop_assert_eq!(back, signed);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn query_responses_roundtrip_with_epoch_stamp(epoch_selector in 0u64.., k in 1usize..5) {
        // A *real* server-produced QueryResponse (records + verification
        // object) rides inside the epoch-stamped Query and Batch response
        // envelopes; both the stamp (at its boundary values) and the inner
        // payload must survive framing bit-exactly.
        let epoch = epoch_from(epoch_selector);
        let inner = sample_response(k);
        let response = Response::Query { epoch, response: inner.clone() };
        let bytes = response.to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Query { epoch: back, response: payload }) => {
                prop_assert_eq!(back, epoch);
                prop_assert_eq!(&payload.records, &inner.records);
                prop_assert_eq!(&payload.vo, &inner.vo);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }

        let batch = Response::Batch { epoch, responses: vec![inner.clone(), inner.clone()] };
        let bytes = batch.to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Batch { epoch: back, responses }) => {
                prop_assert_eq!(back, epoch);
                prop_assert_eq!(responses.len(), 2);
                prop_assert_eq!(&responses[0].records, &inner.records);
                prop_assert_eq!(&responses[1].vo, &inner.vo);
            }
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }
}

/// One real server-produced response per `k`, built lazily and shared
/// across proptest cases (the owner-side tree build is far too expensive
/// to repeat per case).
fn sample_response(k: usize) -> vaq_authquery::QueryResponse {
    use std::sync::OnceLock;
    use vaq_authquery::{IfmhTree, Server, SigningMode};
    use vaq_crypto::SignatureScheme;
    use vaq_workload::uniform_dataset;

    static SERVER: OnceLock<Server> = OnceLock::new();
    let server = SERVER.get_or_init(|| {
        let dataset = uniform_dataset(8, 1, 0x77);
        let scheme = SignatureScheme::test_rsa(0x77);
        let tree = IfmhTree::build(&dataset, SigningMode::MultiSignature, &scheme);
        Server::new(dataset, tree)
    });
    server.process(&Query::top_k(vec![0.5], k))
}

#[test]
fn pong_roundtrips_framed() {
    // The one payload-less response variant; surfaced as uncovered by the
    // vaq-lint wire-exhaustiveness pass.
    let bytes = Response::Pong.to_framed_bytes();
    assert!(matches!(
        Response::from_framed_bytes(&bytes),
        Ok(Response::Pong)
    ));
    assert_eq!(
        Response::Pong.to_framed_bytes(),
        bytes,
        "encoding must be deterministic"
    );
}

#[test]
fn bucket_bounds_are_strictly_increasing() {
    for pair in LATENCY_BUCKET_BOUNDS_MICROS.windows(2) {
        assert!(pair[0] < pair[1]);
    }
}
