//! Property tests for the service envelope messages: random requests and
//! stats round-trip bit-exactly, and corrupted frames (truncation, bad
//! magic, forged length) are always rejected, never mis-decoded.

use proptest::prelude::*;
use vaq_authquery::Query;
use vaq_wire::{
    ErrorCode, ErrorReply, KindLatency, LatencyHistogram, Request, Response, StatsSnapshot,
    WireDecode, WireEncode, WireError, LATENCY_BUCKET_BOUNDS_MICROS,
};

/// Strategy for one random (always well-formed) query.
fn query_from(parts: &(u8, Vec<f64>, usize, f64, f64)) -> Query {
    let (kind, weights, k, a, b) = parts;
    let weights = if weights.is_empty() {
        vec![0.5]
    } else {
        weights.clone()
    };
    match kind % 3 {
        0 => Query::top_k(weights, *k),
        1 => {
            let (lower, upper) = if a <= b { (*a, *b) } else { (*b, *a) };
            Query::range(weights, lower, upper)
        }
        _ => Query::knn(weights, *k, *a),
    }
}

fn query_parts() -> impl Strategy<Value = (u8, Vec<f64>, usize, f64, f64)> {
    (
        0u8..=255,
        prop::collection::vec(-1e3f64..1e3, 1..5),
        0usize..20,
        -10.0f64..10.0,
        -10.0f64..10.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_framed(parts in query_parts(), selector in 0u8..4) {
        let request = match selector {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Query(query_from(&parts)),
            _ => Request::Batch(vec![query_from(&parts), query_from(&parts)]),
        };
        let bytes = request.to_framed_bytes();
        let back = Request::from_framed_bytes(&bytes);
        prop_assert_eq!(back.as_ref().ok(), Some(&request));
    }

    #[test]
    fn truncated_frames_never_decode(parts in query_parts(), cut_fraction in 0.0f64..1.0) {
        let request = Request::Batch(vec![query_from(&parts)]);
        let bytes = request.to_framed_bytes();
        // Any strict prefix must be rejected.
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        let result = Request::from_framed_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "prefix of {} of {} decoded", cut, bytes.len());
    }

    #[test]
    fn bad_magic_is_rejected(parts in query_parts(), corrupt_byte in 0usize..4, xor in 1u8..=255) {
        let request = Request::Query(query_from(&parts));
        let mut bytes = request.to_framed_bytes();
        bytes[corrupt_byte] ^= xor;
        prop_assert_eq!(
            Request::from_framed_bytes(&bytes).err(),
            Some(WireError::BadMagic)
        );
    }

    #[test]
    fn forged_length_is_rejected(parts in query_parts(), delta in 1u32..1000) {
        let request = Request::Query(query_from(&parts));
        let mut bytes = request.to_framed_bytes();
        let declared = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
        let forged = declared.wrapping_add(delta).to_le_bytes();
        bytes[6..10].copy_from_slice(&forged);
        prop_assert!(matches!(
            Request::from_framed_bytes(&bytes),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn corrupting_any_payload_byte_never_panics(parts in query_parts(), position in 0usize..4096, xor in 1u8..=255) {
        let request = Request::Batch(vec![query_from(&parts), query_from(&parts)]);
        let mut bytes = request.to_wire_bytes();
        let position = position % bytes.len();
        bytes[position] ^= xor;
        // Decoding either fails cleanly or yields a different (valid)
        // request; both are fine — panicking or looping is not.
        let _ = Request::from_wire_bytes(&bytes);
    }

    #[test]
    fn stats_snapshots_roundtrip(
        counters in prop::collection::vec(0u64.., 6..=6),
        workers in 0u32..256,
        counts in prop::collection::vec(0u64..1_000_000, 13..=13),
    ) {
        let histogram = LatencyHistogram {
            bucket_counts: counts.clone(),
            count: counts.iter().sum(),
            sum_micros: counters[0],
            max_micros: counters[1],
        };
        let stats = StatsSnapshot {
            requests_served: counters[0],
            cache_hits: counters[1],
            cache_misses: counters[2],
            bytes_in: counters[3],
            bytes_out: counters[4],
            errors: counters[5],
            workers,
            per_kind: vec![
                KindLatency { kind: "topk".into(), histogram: histogram.clone() },
                KindLatency { kind: "batch".into(), histogram },
            ],
        };
        let response = Response::Stats(stats.clone());
        let bytes = response.to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Stats(back)) => prop_assert_eq!(back, stats),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }

    #[test]
    fn error_replies_roundtrip(code_selector in 0u8..5, message in prop::collection::vec(32u8..127, 0..64)) {
        let code = [
            ErrorCode::Malformed,
            ErrorCode::BadQuery,
            ErrorCode::FrameTooLarge,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
        ][code_selector as usize];
        let reply = ErrorReply {
            code,
            message: String::from_utf8(message).unwrap(),
        };
        let bytes = Response::Error(reply.clone()).to_framed_bytes();
        match Response::from_framed_bytes(&bytes) {
            Ok(Response::Error(back)) => prop_assert_eq!(back, reply),
            other => prop_assert!(false, "wrong decode: {:?}", other),
        }
    }
}

#[test]
fn bucket_bounds_are_strictly_increasing() {
    for pair in LATENCY_BUCKET_BOUNDS_MICROS.windows(2) {
        assert!(pair[0] < pair[1]);
    }
}
