//! Per-connection state machine for the evented service reactor.
//!
//! One [`Conn`] owns a non-blocking socket plus everything the reactor
//! needs to multiplex it from a single thread: an incremental VAQ1 frame
//! assembler (a frame may arrive across many readiness sweeps), queues of
//! fully received requests awaiting dispatch, the set of requests in flight
//! on the worker pool, and a write queue that survives partial writes.
//! Nothing here blocks.

use std::collections::{HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use vaq_wire::{WireError, MAGIC, VERSION};

use crate::error::ServiceError;
use crate::metrics::Stage;
use crate::trace::Trace;

/// VAQ1 frame header length: 4-byte magic, 2-byte version, 4-byte length.
pub(crate) const FRAME_HEADER_LEN: usize = 10;

/// What one [`FrameAssembler::advance`] step produced.
#[derive(Debug)]
pub(crate) enum Assembled {
    /// The frame is still incomplete; keep reading into
    /// [`FrameAssembler::spare`].
    NeedMore,
    /// One complete frame payload (header already validated and stripped).
    Frame(Vec<u8>),
}

/// Incremental VAQ1 frame parser for a non-blocking stream.
///
/// The caller reads socket bytes directly into [`FrameAssembler::spare`]
/// and reports how many landed via [`FrameAssembler::advance`]; the
/// assembler validates the header (magic, version, length limit) the moment
/// it completes, so an oversized frame is rejected before its payload is
/// ever allocated — same contract as the blocking reader in
/// [`crate::frame`].
#[derive(Debug)]
pub(crate) struct FrameAssembler {
    header: [u8; FRAME_HEADER_LEN],
    filled: usize,
    payload: Vec<u8>,
    in_payload: bool,
}

impl FrameAssembler {
    pub(crate) fn new() -> FrameAssembler {
        FrameAssembler {
            header: [0u8; FRAME_HEADER_LEN],
            filled: 0,
            payload: Vec::new(),
            in_payload: false,
        }
    }

    /// True while the stream offset sits inside a started frame — the state
    /// in which a silent peer is *stalled* rather than idle.
    pub(crate) fn mid_frame(&self) -> bool {
        self.in_payload || self.filled > 0
    }

    /// The buffer slice the next socket read should fill (never empty).
    pub(crate) fn spare(&mut self) -> &mut [u8] {
        if self.in_payload {
            self.payload.get_mut(self.filled..).unwrap_or(&mut [])
        } else {
            self.header.get_mut(self.filled..).unwrap_or(&mut [])
        }
    }

    /// Records that `n` bytes just landed in [`FrameAssembler::spare`].
    pub(crate) fn advance(
        &mut self,
        n: usize,
        max_payload: usize,
    ) -> Result<Assembled, ServiceError> {
        self.filled += n;
        if !self.in_payload {
            if self.filled < FRAME_HEADER_LEN {
                return Ok(Assembled::NeedMore);
            }
            let len = parse_header(&self.header, max_payload)?;
            self.filled = 0;
            if len == 0 {
                return Ok(Assembled::Frame(Vec::new()));
            }
            self.payload = vec![0u8; len];
            self.in_payload = true;
            return Ok(Assembled::NeedMore);
        }
        if self.filled < self.payload.len() {
            return Ok(Assembled::NeedMore);
        }
        self.filled = 0;
        self.in_payload = false;
        Ok(Assembled::Frame(std::mem::take(&mut self.payload)))
    }
}

/// Validates a complete header and returns the declared payload length.
fn parse_header(
    header: &[u8; FRAME_HEADER_LEN],
    max_payload: usize,
) -> Result<usize, ServiceError> {
    let (magic, rest) = header.split_at(4);
    if *magic != MAGIC {
        return Err(ServiceError::Wire(WireError::BadMagic));
    }
    let (version, len) = match rest {
        [v0, v1, l0, l1, l2, l3] => (
            u16::from_le_bytes([*v0, *v1]),
            u32::from_le_bytes([*l0, *l1, *l2, *l3]) as usize,
        ),
        _ => return Err(ServiceError::Wire(WireError::Truncated)),
    };
    if version != VERSION {
        return Err(ServiceError::Wire(WireError::UnsupportedVersion(version)));
    }
    if len > max_payload {
        return Err(ServiceError::FrameTooLarge {
            declared: len,
            limit: max_payload,
        });
    }
    Ok(len)
}

/// One fully received request awaiting dispatch to the worker pool.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Correlation tag for tagged requests (`None` = classic in-order).
    pub(crate) tag: Option<u64>,
    /// The request payload, with any tag envelope already stripped.
    pub(crate) payload: Vec<u8>,
    /// When the frame finished arriving; queue wait is measured from here.
    pub(crate) received: Instant,
}

/// One queued response frame, possibly partially written.
#[derive(Debug)]
struct Outgoing {
    frame: Vec<u8>,
    written: usize,
    write_time: Duration,
    trace: Option<Trace>,
    close_after: bool,
}

/// Everything one read sweep over a connection produced.
#[derive(Debug)]
pub(crate) struct ReadPass {
    /// Complete frame payloads, in arrival order.
    pub(crate) frames: Vec<Vec<u8>>,
    /// The peer cleanly closed its write side at a frame boundary.
    pub(crate) closed: bool,
    /// A frame-level or transport failure; no further reads will happen.
    pub(crate) error: Option<ServiceError>,
}

/// Everything one write sweep over a connection produced.
#[derive(Debug)]
pub(crate) struct WritePass {
    /// Bytes actually written to the socket this sweep.
    pub(crate) bytes: u64,
    /// Traces of response frames that fully drained (write time charged).
    pub(crate) finished: Vec<Trace>,
    /// The socket failed, or a close-after frame fully drained: close now.
    pub(crate) close: bool,
}

/// One multiplexed client connection, driven entirely by the reactor.
#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    assembler: FrameAssembler,
    /// Untagged requests, answered strictly in order (at most one in
    /// flight at a time — the classic one-lane request/response contract).
    pub(crate) pending_untagged: VecDeque<PendingRequest>,
    /// Tagged requests, dispatched greedily and answered out of order.
    pub(crate) pending_tagged: VecDeque<PendingRequest>,
    pub(crate) untagged_in_flight: bool,
    pub(crate) tags_in_flight: HashSet<u64>,
    /// Already queued in the reactor's dispatch backlog (requests waiting
    /// for a worker-queue slot); guards against duplicate backlog entries.
    pub(crate) in_backlog: bool,
    write_queue: VecDeque<Outgoing>,
    /// Queued-but-unflushed response bytes: the sum of every queued frame's
    /// unwritten remainder, maintained incrementally so the write-queue
    /// budget check is O(1) per enqueue.
    queued_bytes: usize,
    /// Shed as a slow reader: the write-queue budget tripped, pending work
    /// was dropped, and a typed overloaded goodbye is (or was) queued. Late
    /// completions for this connection are discarded instead of re-tripping
    /// the budget, and newly read request frames are discarded unanswered.
    pub(crate) shed: bool,
    /// Set once a shed connection's goodbye has flushed and its write side
    /// is shut down: the reactor keeps draining (and discarding) inbound
    /// bytes until the peer closes or this deadline passes, because a full
    /// close with unread flood bytes in the receive buffer would reset the
    /// peer and destroy the typed goodbye before it is read.
    pub(crate) linger_deadline: Option<Instant>,
    /// Last instant a byte moved on this socket in either direction.
    pub(crate) last_progress: Instant,
    /// No more reads will happen: clean EOF, frame error, or shutdown.
    pub(crate) reads_done: bool,
    /// The transport failed outright; drop the connection without flushing.
    dead: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            assembler: FrameAssembler::new(),
            pending_untagged: VecDeque::new(),
            pending_tagged: VecDeque::new(),
            untagged_in_flight: false,
            tags_in_flight: HashSet::new(),
            in_backlog: false,
            write_queue: VecDeque::new(),
            queued_bytes: 0,
            shed: false,
            linger_deadline: None,
            last_progress: Instant::now(),
            reads_done: false,
            dead: false,
        }
    }

    /// True while the stream offset sits inside a started frame.
    pub(crate) fn mid_frame(&self) -> bool {
        self.assembler.mid_frame()
    }

    /// Requests currently running (or queued) on the worker pool.
    pub(crate) fn in_flight(&self) -> usize {
        self.tags_in_flight.len() + usize::from(self.untagged_in_flight)
    }

    /// Fully received requests not yet handed to the worker pool.
    pub(crate) fn pending(&self) -> usize {
        self.pending_untagged.len() + self.pending_tagged.len()
    }

    /// True when a dispatch pass could make progress right now: a tagged
    /// request is waiting, or the untagged lane is free with work queued.
    pub(crate) fn wants_dispatch(&self) -> bool {
        !self.pending_tagged.is_empty()
            || (!self.pending_untagged.is_empty() && !self.untagged_in_flight)
    }

    /// True while queued output remains to flush.
    pub(crate) fn wants_write(&self) -> bool {
        !self.write_queue.is_empty()
    }

    /// Queued-but-unflushed response bytes.
    pub(crate) fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// True once nothing remains to read, run or flush: safe to drop.
    pub(crate) fn drained(&self) -> bool {
        self.dead
            || (self.reads_done
                && self.pending() == 0
                && self.in_flight() == 0
                && !self.wants_write())
    }

    /// Gives up on the connection immediately: no more reads, no flush.
    pub(crate) fn abort(&mut self) {
        self.reads_done = true;
        self.dead = true;
        self.write_queue.clear();
        self.queued_bytes = 0;
    }

    /// Drops every queued frame that has not started flushing, keeping a
    /// partially-written head so the stream stays frame-aligned for the
    /// typed goodbye that follows. Used when shedding a slow reader: the
    /// dropped responses were only ever going to sit in the queue.
    pub(crate) fn drop_unwritten(&mut self) {
        self.write_queue.retain(|out| out.written > 0);
        self.queued_bytes = self
            .write_queue
            .iter()
            .map(|out| out.frame.len().saturating_sub(out.written))
            .sum();
    }

    /// Queues one response frame, enforcing the per-connection write-queue
    /// byte budget: returns `false` (frame rejected, nothing queued) when
    /// queued bytes would exceed `write_queue_budget_bytes` — the caller
    /// sheds the slow reader. Close-after frames (typed goodbyes on a
    /// connection that is ending) bypass the budget: they are single
    /// bounded frames and rejecting them would leave no way to shed
    /// *typed*. A `trace` makes the frame count as a served request once it
    /// fully drains; `close_after` closes the connection right after the
    /// frame flushes.
    pub(crate) fn enqueue(
        &mut self,
        frame: Vec<u8>,
        trace: Option<Trace>,
        close_after: bool,
        write_queue_budget_bytes: usize,
    ) -> bool {
        let queued = self.queued_bytes.saturating_add(frame.len());
        if !close_after && queued > write_queue_budget_bytes {
            return false;
        }
        self.queued_bytes = queued;
        self.write_queue.push_back(Outgoing {
            frame,
            written: 0,
            write_time: Duration::ZERO,
            trace,
            close_after,
        });
        true
    }

    /// Reads everything the socket has ready, stopping early once `backlog`
    /// requests are buffered (TCP backpressure then throttles the peer).
    pub(crate) fn pump_reads(
        &mut self,
        max_payload: usize,
        backlog: usize,
        consumed: &mut u64,
    ) -> ReadPass {
        let mut pass = ReadPass {
            frames: Vec::new(),
            closed: false,
            error: None,
        };
        while !self.reads_done && self.pending() + pass.frames.len() < backlog {
            let spare = self.assembler.spare();
            match self.stream.read(spare) {
                Ok(0) => {
                    self.reads_done = true;
                    if self.assembler.mid_frame() {
                        pass.error = Some(ServiceError::Wire(WireError::Truncated));
                    } else {
                        pass.closed = true;
                    }
                }
                Ok(n) => {
                    *consumed += n as u64;
                    self.last_progress = Instant::now();
                    match self.assembler.advance(n, max_payload) {
                        Ok(Assembled::Frame(payload)) => pass.frames.push(payload),
                        Ok(Assembled::NeedMore) => {}
                        Err(e) => {
                            self.reads_done = true;
                            pass.error = Some(e);
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
                Err(e) => {
                    self.reads_done = true;
                    pass.error = Some(ServiceError::Io(e));
                }
            }
        }
        pass
    }

    /// Flushes as much queued output as the socket will take right now.
    pub(crate) fn pump_writes(&mut self) -> WritePass {
        let mut pass = WritePass {
            bytes: 0,
            finished: Vec::new(),
            close: false,
        };
        loop {
            let complete = match self.write_queue.front_mut() {
                None => break,
                Some(head) => {
                    let remaining = head.frame.get(head.written..).unwrap_or(&[]);
                    if remaining.is_empty() {
                        true
                    } else {
                        let start = Instant::now();
                        match self.stream.write(remaining) {
                            Ok(0) => {
                                pass.close = true;
                                break;
                            }
                            Ok(n) => {
                                head.written += n;
                                head.write_time += start.elapsed();
                                pass.bytes += n as u64;
                                self.queued_bytes = self.queued_bytes.saturating_sub(n);
                                self.last_progress = Instant::now();
                                head.written >= head.frame.len()
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    ErrorKind::WouldBlock | ErrorKind::TimedOut
                                ) =>
                            {
                                break
                            }
                            Err(_) => {
                                pass.close = true;
                                break;
                            }
                        }
                    }
                }
            };
            if !complete {
                continue;
            }
            if let Some(done) = self.write_queue.pop_front() {
                if let Some(mut trace) = done.trace {
                    trace.add(Stage::Write, done.write_time);
                    pass.finished.push(trace);
                }
                if done.close_after {
                    pass.close = true;
                    break;
                }
            }
        }
        pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_wire::{Request, WireDecode, WireEncode};

    /// Pushes `bytes` through an assembler in chunks of at most `chunk`,
    /// collecting completed payloads.
    fn feed(bytes: &[u8], chunk: usize, max_payload: usize) -> Vec<Vec<u8>> {
        let mut assembler = FrameAssembler::new();
        let mut out = Vec::new();
        let mut rest = bytes;
        while !rest.is_empty() {
            let spare = assembler.spare();
            let n = spare.len().min(chunk).min(rest.len());
            spare[..n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            match assembler.advance(n, max_payload).expect("valid frames") {
                Assembled::Frame(payload) => out.push(payload),
                Assembled::NeedMore => {}
            }
        }
        assert!(!assembler.mid_frame(), "stream ends at a frame boundary");
        out
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let request = Request::Query(vaq_authquery::Query::top_k(vec![0.25, 0.75], 3));
        let frame = request.to_framed_bytes();
        for chunk in 1..=frame.len() {
            let payloads = feed(&frame, chunk, 4096);
            assert_eq!(payloads.len(), 1, "chunk size {chunk}");
            let decoded = Request::from_wire_bytes(&payloads[0]).expect("payload decodes");
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn assembler_separates_pipelined_frames() {
        let mut bytes = Request::Ping.to_framed_bytes();
        bytes.extend_from_slice(&Request::Stats.to_framed_bytes());
        bytes.extend_from_slice(&Request::Ping.to_framed_bytes());
        for chunk in 1..=bytes.len() {
            let payloads = feed(&bytes, chunk, 4096);
            assert_eq!(payloads.len(), 3, "chunk size {chunk}");
            assert_eq!(Request::from_wire_bytes(&payloads[1]), Ok(Request::Stats));
        }
    }

    #[test]
    fn assembler_rejects_bad_frames_at_the_header() {
        // Oversized: rejected as soon as the header completes, before any
        // payload allocation.
        let mut assembler = FrameAssembler::new();
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        assembler.spare()[..10].copy_from_slice(&header);
        let err = assembler.advance(10, 64).unwrap_err();
        assert!(matches!(err, ServiceError::FrameTooLarge { limit: 64, .. }));

        // Bad magic.
        let mut assembler = FrameAssembler::new();
        let mut frame = Request::Ping.to_framed_bytes();
        frame[0] = b'X';
        assembler.spare()[..10].copy_from_slice(&frame[..10]);
        let err = assembler.advance(10, 4096).unwrap_err();
        assert!(matches!(err, ServiceError::Wire(WireError::BadMagic)));

        // Wrong version.
        let mut assembler = FrameAssembler::new();
        let mut frame = Request::Ping.to_framed_bytes();
        frame[4] = 9;
        assembler.spare()[..10].copy_from_slice(&frame[..10]);
        let err = assembler.advance(10, 4096).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Wire(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn assembler_tracks_mid_frame_state() {
        let mut assembler = FrameAssembler::new();
        assert!(!assembler.mid_frame());
        let frame = Request::Ping.to_framed_bytes();
        assembler.spare()[..3].copy_from_slice(&frame[..3]);
        assert!(matches!(
            assembler.advance(3, 4096).unwrap(),
            Assembled::NeedMore
        ));
        assert!(assembler.mid_frame(), "partial header is mid-frame");
        assembler.spare()[..7].copy_from_slice(&frame[3..10]);
        assert!(matches!(
            assembler.advance(7, 4096).unwrap(),
            Assembled::NeedMore
        ));
        assert!(assembler.mid_frame(), "header done, payload pending");
        let len = frame.len();
        assembler.spare()[..len - 10].copy_from_slice(&frame[10..]);
        assert!(matches!(
            assembler.advance(len - 10, 4096).unwrap(),
            Assembled::Frame(_)
        ));
        assert!(!assembler.mid_frame(), "frame complete resets the state");
    }

    /// A connected localhost TCP pair: (reactor side, peer side).
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (serving, _) = listener.accept().unwrap();
        serving.set_nonblocking(true).unwrap();
        (serving, peer)
    }

    #[test]
    fn pump_reads_buffers_frames_and_reports_clean_close() {
        let (serving, mut peer) = tcp_pair();
        let mut conn = Conn::new(serving);
        peer.write_all(&Request::Ping.to_framed_bytes()).unwrap();
        peer.write_all(&Request::Stats.to_framed_bytes()).unwrap();
        drop(peer);
        std::thread::sleep(Duration::from_millis(30));
        let mut consumed = 0u64;
        let pass = conn.pump_reads(4096, 128, &mut consumed);
        assert_eq!(pass.frames.len(), 2);
        assert!(pass.closed, "EOF at a frame boundary is a clean close");
        assert!(pass.error.is_none());
        assert!(consumed > 0);
        assert!(conn.reads_done);
    }

    #[test]
    fn pump_reads_reports_truncated_eof_as_an_error() {
        let (serving, mut peer) = tcp_pair();
        let mut conn = Conn::new(serving);
        let frame = Request::Ping.to_framed_bytes();
        peer.write_all(&frame[..frame.len() - 1]).unwrap();
        drop(peer);
        std::thread::sleep(Duration::from_millis(30));
        let mut consumed = 0u64;
        let pass = conn.pump_reads(4096, 128, &mut consumed);
        assert!(pass.frames.is_empty());
        assert!(!pass.closed);
        assert!(matches!(
            pass.error,
            Some(ServiceError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn pump_writes_flushes_queue_and_surfaces_traces_and_closes() {
        let (serving, mut peer) = tcp_pair();
        let mut conn = Conn::new(serving);
        let first = vec![1u8; 64];
        let second = vec![2u8; 32];
        assert!(conn.enqueue(
            first.clone(),
            Some(Trace::begin(Duration::ZERO)),
            false,
            1 << 20
        ));
        assert!(conn.enqueue(second.clone(), None, true, 1 << 20));
        assert_eq!(conn.queued_bytes(), 96);
        let pass = conn.pump_writes();
        assert_eq!(pass.bytes, 96);
        assert_eq!(pass.finished.len(), 1, "only traced frames finish requests");
        assert!(pass.close, "the close-after frame drained");
        assert_eq!(conn.queued_bytes(), 0, "flushed bytes leave the budget");
        let mut got = vec![0u8; 96];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got[..64], first.as_slice());
        assert_eq!(&got[64..], second.as_slice());
    }

    #[test]
    fn enqueue_rejects_frames_past_the_write_queue_budget() {
        let (serving, _peer) = tcp_pair();
        let mut conn = Conn::new(serving);
        assert!(conn.enqueue(vec![0u8; 48], None, false, 64), "fits budget");
        assert!(
            !conn.enqueue(vec![0u8; 32], None, false, 64),
            "48 + 32 > 64: rejected"
        );
        assert_eq!(conn.queued_bytes(), 48, "the rejected frame left no trace");
        // The typed goodbye that sheds the connection bypasses the budget.
        assert!(conn.enqueue(vec![0u8; 32], None, true, 64));
        assert_eq!(conn.queued_bytes(), 80);
    }

    #[test]
    fn drop_unwritten_keeps_a_partially_written_head_frame_aligned() {
        let (serving, mut peer) = tcp_pair();
        let mut conn = Conn::new(serving);
        let first = vec![7u8; 64];
        assert!(conn.enqueue(first.clone(), None, false, 1 << 20));
        assert!(conn.enqueue(vec![8u8; 128], None, false, 1 << 20));
        // Flush the head fully into the socket buffer, then pretend the
        // second frame is mid-write by splitting it manually: easier to
        // exercise via a fresh queue where nothing flushed at all.
        conn.drop_unwritten();
        assert_eq!(conn.queued_bytes(), 0, "nothing had started flushing");
        assert!(!conn.wants_write());
        // A close-after goodbye still goes out and drains cleanly.
        assert!(conn.enqueue(vec![9u8; 16], None, true, 1 << 20));
        let pass = conn.pump_writes();
        assert!(pass.close);
        let mut got = vec![0u8; 16];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(got, vec![9u8; 16]);
    }
}
