//! The running query service: TCP accept loop, worker pool, request
//! dispatch, response cache and graceful shutdown.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use vaq_authquery::Server;
use vaq_wire::{ErrorCode, ErrorReply, Request, Response, StatsSnapshot, WireDecode, WireEncode};

use crate::cache::LruCache;
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::frame::{read_frame, FrameRead};
use crate::metrics::{Metrics, RequestKind};
use crate::pool::WorkerPool;

/// State shared between the accept loop and every worker.
struct Shared {
    server: Server,
    config: ServiceConfig,
    metrics: Metrics,
    cache: Mutex<LruCache>,
    shutdown: AtomicBool,
}

/// A running networked query service over one [`Server`].
///
/// Binds a TCP listener, accepts connections on an accept thread and serves
/// them on a fixed-size worker pool. Each connection carries any number of
/// framed [`Request`]s, answered in order with framed [`Response`]s.
/// Dropping the service (or calling [`QueryService::shutdown`]) stops the
/// listener, drains the workers and joins every thread.
pub struct QueryService {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    workers: usize,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers)
            .finish()
    }
}

impl QueryService {
    /// Binds the configured address and starts serving `server`'s dataset.
    ///
    /// Each worker thread owns one connection at a time, so size
    /// [`ServiceConfig::workers`] to the number of concurrent persistent
    /// connections expected. Up to `2 * workers` further connections queue
    /// for a free worker; beyond that the accept loop sheds new connections
    /// (closing them immediately) rather than buffering without bound.
    pub fn bind(mut config: ServiceConfig, server: Server) -> Result<QueryService, ServiceError> {
        let listener = TcpListener::bind(config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        // Clamp once so every consumer (pool sizing, stats) agrees.
        config.workers = config.workers.max(1);
        let workers = config.workers;
        let shared = Arc::new(Shared {
            cache: Mutex::new(LruCache::with_byte_budget(
                config.cache_capacity,
                config.cache_max_bytes,
            )),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            server,
            config,
        });

        let worker_shared = Arc::clone(&shared);
        let (pool, sender) = WorkerPool::spawn(workers, move |stream: TcpStream| {
            handle_connection(&worker_shared, stream);
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("vaq-service-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, sender))
            .expect("spawning the accept thread");

        Ok(QueryService {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
            workers,
        })
    }

    /// The address the service actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot(self.workers)
    }

    /// Stops accepting connections, drains in-flight work, joins every
    /// thread and returns the final counter snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.shared.metrics.snapshot(self.workers)
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread blocks inside `accept`; a connect-to-self wakes
        // it so it can observe the flag. The connection is dropped
        // immediately — workers see a clean close and move on.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // The accept thread owned the only work sender, so once it exits the
        // workers drain the queue and stop.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, sender: SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                // Bounded hand-off: when every worker is busy and the queue
                // is full, shed the connection instead of buffering
                // unboundedly (the drop closes the socket — an immediate,
                // unambiguous signal to the client). `try_send` also keeps
                // this loop non-blocking so the connect-to-self shutdown
                // wakeup always gets through.
                match sender.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(rejected)) => drop(rejected),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the service; back off briefly so a persistent
            // error (fd exhaustion) cannot pin this thread in a hot loop.
            Err(_) => {
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        }
    }
    // `sender` drops here; workers exit after draining the queue.
}

/// How often a worker wakes from a blocking read to check the shutdown
/// flag and the connection's idle budget.
const POLL_INTERVAL: std::time::Duration = std::time::Duration::from_millis(100);

/// Serves one connection: a loop of framed requests answered in order.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A short poll timeout (instead of one long read timeout) keeps
    // graceful shutdown prompt even while a client holds its connection
    // open; the configured read timeout becomes an idle budget.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut idle = std::time::Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let reply = error_response(
                shared,
                ErrorCode::ShuttingDown,
                "service is shutting down".into(),
            );
            let _ = write_frame_counted(shared, &mut stream, &reply);
            break;
        }
        let payload = match read_frame(&mut stream, shared.config.max_frame_bytes) {
            Ok(FrameRead::Payload(payload)) => {
                idle = std::time::Duration::ZERO;
                payload
            }
            Ok(FrameRead::Closed) => break,
            Ok(FrameRead::Idle) => {
                idle += POLL_INTERVAL;
                match shared.config.read_timeout {
                    Some(limit) if idle >= limit => break,
                    _ => continue,
                }
            }
            Err(ServiceError::FrameTooLarge { declared, limit }) => {
                let reply = error_response(
                    shared,
                    ErrorCode::FrameTooLarge,
                    format!("frame of {declared} bytes exceeds the {limit}-byte limit"),
                );
                // These error replies answer a received (if unusable) request,
                // so they count as served — the documented contract is that
                // `requests_served` includes error replies.
                if write_frame_counted(shared, &mut stream, &reply).is_ok() {
                    Metrics::add(&shared.metrics.requests_served, 1);
                }
                break;
            }
            Err(ServiceError::Wire(e)) => {
                // After a corrupt header the stream offset is unknown; reply
                // if possible, then drop the connection.
                let reply = error_response(shared, ErrorCode::Malformed, format!("bad frame: {e}"));
                if write_frame_counted(shared, &mut stream, &reply).is_ok() {
                    Metrics::add(&shared.metrics.requests_served, 1);
                }
                break;
            }
            Err(_) => break,
        };
        Metrics::add(&shared.metrics.bytes_in, (10 + payload.len()) as u64);

        let response_frame = handle_request(shared, &payload);
        if write_raw_counted(shared, &mut stream, &response_frame).is_err() {
            break;
        }
        Metrics::add(&shared.metrics.requests_served, 1);
    }
}

/// Decodes and dispatches one request, returning the framed response bytes.
fn handle_request(shared: &Shared, payload: &[u8]) -> Vec<u8> {
    let request = match Request::from_wire_bytes(payload) {
        Ok(request) => request,
        Err(e) => {
            return error_response(shared, ErrorCode::Malformed, format!("bad request: {e}"))
                .to_framed_bytes()
        }
    };

    match request {
        Request::Ping => Response::Pong.to_framed_bytes(),
        Request::Stats => {
            Response::Stats(shared.metrics.snapshot(shared.config.workers)).to_framed_bytes()
        }
        Request::Query(query) => {
            // The decoded payload *is* the canonical encoding (decoding
            // consumes every byte and the format is bijective), so it serves
            // as the cache key without a re-encode.
            let key = payload.to_vec();
            if let Some(frame) = shared.cache.lock().expect("cache lock").get(&key) {
                Metrics::add(&shared.metrics.cache_hits, 1);
                return frame.as_ref().clone();
            }
            let kind = match query.kind() {
                vaq_authquery::QueryKind::TopK => RequestKind::TopK,
                vaq_authquery::QueryKind::Range => RequestKind::Range,
                vaq_authquery::QueryKind::Knn => RequestKind::Knn,
            };
            let frame = match process_queries(shared, std::slice::from_ref(&query), kind) {
                Ok(mut responses) => {
                    let response = responses.pop().expect("one response per query");
                    Response::Query(response).to_framed_bytes()
                }
                Err(reply) => return Response::Error(reply).to_framed_bytes(),
            };
            Metrics::add(&shared.metrics.cache_misses, 1);
            shared
                .cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::new(frame.clone()));
            frame
        }
        Request::Batch(queries) => {
            if queries.len() > shared.config.max_batch_len {
                return error_response(
                    shared,
                    ErrorCode::BadQuery,
                    format!(
                        "batch of {} queries exceeds the limit of {}",
                        queries.len(),
                        shared.config.max_batch_len
                    ),
                )
                .to_framed_bytes();
            }
            let key = payload.to_vec();
            if let Some(frame) = shared.cache.lock().expect("cache lock").get(&key) {
                Metrics::add(&shared.metrics.cache_hits, 1);
                return frame.as_ref().clone();
            }
            let frame = match process_queries(shared, &queries, RequestKind::Batch) {
                Ok(responses) => Response::Batch(responses).to_framed_bytes(),
                Err(reply) => return Response::Error(reply).to_framed_bytes(),
            };
            Metrics::add(&shared.metrics.cache_misses, 1);
            shared
                .cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::new(frame.clone()));
            frame
        }
    }
}

/// Validates and processes queries, timing the whole run under `kind`.
fn process_queries(
    shared: &Shared,
    queries: &[vaq_authquery::Query],
    kind: RequestKind,
) -> Result<Vec<vaq_authquery::QueryResponse>, ErrorReply> {
    let dims = shared.server.dataset().dims();
    for query in queries {
        if query.weights().len() != dims {
            return Err(error_reply(
                shared,
                ErrorCode::BadQuery,
                format!(
                    "query weight vector has {} dims, dataset has {dims}",
                    query.weights().len()
                ),
            ));
        }
    }
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        queries
            .iter()
            .map(|query| shared.server.process(query))
            .collect::<Vec<_>>()
    }));
    shared.metrics.observe_latency(kind, start.elapsed());
    result.map_err(|_| {
        error_reply(
            shared,
            ErrorCode::Internal,
            "query processing failed".into(),
        )
    })
}

/// Builds a typed error reply, bumping the error counter.
fn error_reply(shared: &Shared, code: ErrorCode, message: String) -> ErrorReply {
    Metrics::add(&shared.metrics.errors, 1);
    ErrorReply { code, message }
}

/// Builds a typed error response, bumping the error counter.
fn error_response(shared: &Shared, code: ErrorCode, message: String) -> Response {
    Response::Error(error_reply(shared, code, message))
}

fn write_frame_counted(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
) -> Result<(), ServiceError> {
    write_raw_counted(shared, stream, &response.to_framed_bytes())
}

fn write_raw_counted(
    shared: &Shared,
    stream: &mut TcpStream,
    frame: &[u8],
) -> Result<(), ServiceError> {
    use std::io::Write;
    stream.write_all(frame)?;
    Metrics::add(&shared.metrics.bytes_out, frame.len() as u64);
    Ok(())
}
