//! The running query service: TCP accept loop, worker pool, request
//! dispatch, response cache and graceful shutdown.

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vaq_authquery::Server;
use vaq_wire::epoch;
use vaq_wire::{
    ErrorCode, ErrorReply, Request, Response, ShardInfo, SignedShardMap, StatsDeep, StatsSnapshot,
    WireDecode, WireEncode,
};

use crate::cache::LruCache;
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::frame::{read_frame_counted, FrameRead};
use crate::metrics::{CacheGauges, Metrics, RequestKind, Stage};
use crate::pool::WorkerPool;
use crate::sync::{rank, OrderedCondvar, OrderedMutex};
use crate::trace::Trace;

/// State shared between the accept loop and every worker.
struct Shared {
    /// The currently serving dataset + authenticated structure. Swapped
    /// atomically by [`QueryService::republish`]: every request resolves
    /// this `Arc` exactly once, so a single response can never mix records
    /// from one epoch with signatures (or an envelope stamp) from another.
    serving: OrderedMutex<Arc<Server>>,
    /// The owner-signed shard map this service publishes to clients (reply
    /// to [`Request::ShardMap`]); `None` on a standalone service.
    shard_map: OrderedMutex<Option<Arc<SignedShardMap>>>,
    config: ServiceConfig,
    metrics: Metrics,
    cache: OrderedMutex<LruCache>,
    flight: SingleFlight,
    shutdown: AtomicBool,
}

impl Shared {
    /// The serving snapshot: one clone of the `Arc`, taken once per request.
    fn serving(&self) -> Arc<Server> {
        Arc::clone(&self.serving.lock())
    }

    /// Samples the response cache's occupancy gauges.
    fn cache_gauges(&self) -> CacheGauges {
        self.cache.lock().gauges()
    }

    /// Flat counter snapshot including sampled cache gauges.
    fn snapshot(&self, epoch: u64) -> StatsSnapshot {
        self.metrics
            .snapshot(self.config.workers, epoch, self.cache_gauges())
    }

    /// Deep snapshot: flat counters plus per-stage breakdowns.
    fn deep_snapshot(&self, epoch: u64) -> StatsDeep {
        self.metrics
            .deep_snapshot(self.config.workers, epoch, self.cache_gauges())
    }
}

/// The response-cache (and single-flight) key: the serving epoch prepended
/// to the canonical query bytes. Keys from superseded epochs can never
/// collide with current ones, so an in-flight computation started before a
/// republication publishes under its own epoch's key and cannot poison the
/// new epoch's cache.
fn epoch_cache_key(epoch: u64, canonical: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(8 + canonical.len());
    key.extend_from_slice(&epoch.to_be_bytes());
    key.extend_from_slice(canonical);
    key
}

/// A running networked query service over one [`Server`].
///
/// Binds a TCP listener, accepts connections on an accept thread and serves
/// them on a fixed-size worker pool. Each connection carries any number of
/// framed [`Request`]s, answered in order with framed [`Response`]s.
/// Dropping the service (or calling [`QueryService::shutdown`]) stops the
/// listener, drains the workers and joins every thread.
pub struct QueryService {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    workers: usize,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers)
            .finish()
    }
}

impl QueryService {
    /// Binds the configured address and starts serving `server`'s dataset.
    ///
    /// Each worker thread owns one connection at a time, so size
    /// [`ServiceConfig::workers`] to the number of concurrent persistent
    /// connections expected. Up to `2 * workers` further connections queue
    /// for a free worker; beyond that the accept loop sheds new connections
    /// (closing them immediately) rather than buffering without bound.
    pub fn bind(mut config: ServiceConfig, server: Server) -> Result<QueryService, ServiceError> {
        let listener = TcpListener::bind(config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        // The accept loop polls a non-blocking listener so it can observe the
        // shutdown flag even when the best-effort loopback wakeup connect
        // cannot reach the socket — a blocking `accept` has no portable,
        // std-only interruption mechanism.
        listener.set_nonblocking(true)?;
        // Clamp once so every consumer (pool sizing, stats) agrees.
        config.workers = config.workers.max(1);
        let workers = config.workers;
        let shared = Arc::new(Shared {
            cache: OrderedMutex::new(
                rank::CACHE,
                "cache",
                LruCache::with_byte_budget(config.cache_capacity, config.cache_max_bytes),
            ),
            flight: SingleFlight::default(),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            serving: OrderedMutex::new(rank::SERVING, "serving", Arc::new(server)),
            shard_map: OrderedMutex::new(rank::SHARD_MAP, "shard_map", None),
            config,
        });

        let worker_shared = Arc::clone(&shared);
        let (pool, sender) =
            WorkerPool::spawn(workers, move |(stream, accepted): (TcpStream, Instant)| {
                handle_connection(&worker_shared, stream, accepted);
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("vaq-service-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, sender))?;

        Ok(QueryService {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
            workers,
        })
    }

    /// The address the service actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The publication epoch the service currently serves.
    pub fn epoch(&self) -> u64 {
        self.shared.serving().epoch()
    }

    /// Hot-swaps the served dataset + authenticated structure for a
    /// republication, without dropping a single connection.
    ///
    /// The new [`Server`]'s epoch (bound into its signatures by
    /// [`vaq_authquery::IfmhTree::build_at_epoch`]) must be strictly greater
    /// than the currently served epoch — a republication can never roll the
    /// service back. On success the response cache is flushed; in-flight
    /// requests that already resolved the old structure finish against it
    /// (and stamp their envelope with the *old* epoch, which their
    /// signatures also bind), while every request arriving after the swap
    /// sees only the new epoch. Epoch-prefixed cache keys keep the two
    /// generations apart even while both are briefly in flight.
    pub fn republish(&self, server: Server) -> Result<u64, ServiceError> {
        let new_epoch = server.epoch();
        {
            let mut serving = self.shared.serving.lock();
            let current = serving.epoch();
            if !epoch::advances(current, new_epoch) {
                return Err(ServiceError::StaleEpoch {
                    expected: epoch::next(current),
                    got: new_epoch,
                });
            }
            *serving = Arc::new(server);
        }
        // Flush after the swap: every response cached from here on belongs
        // to a visible epoch. Old-epoch in-flight leaders may still insert
        // under their epoch-prefixed keys, which no new request can hit.
        self.shared.cache.lock().clear();
        Ok(new_epoch)
    }

    /// Publishes (or replaces) the owner-signed shard map this service
    /// serves in reply to [`Request::ShardMap`].
    ///
    /// Rejects rollback: once a map with epoch `e` is published, only maps
    /// with a strictly greater epoch are accepted — a replayed older signed
    /// map cannot displace the current one.
    pub fn set_shard_map(&self, map: SignedShardMap) -> Result<(), ServiceError> {
        let mut slot = self.shared.shard_map.lock();
        if let Some(current) = slot.as_ref() {
            if !epoch::advances(current.map.epoch, map.map.epoch) {
                return Err(ServiceError::StaleEpoch {
                    expected: epoch::next(current.map.epoch),
                    got: map.map.epoch,
                });
            }
        }
        *slot = Some(Arc::new(map));
        Ok(())
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot(self.epoch())
    }

    /// A point-in-time deep snapshot: the flat counters plus per-stage
    /// latency histograms and per-kind stage attribution.
    pub fn stats_deep(&self) -> StatsDeep {
        self.shared.deep_snapshot(self.epoch())
    }

    /// Stops accepting connections, drains in-flight work, joins every
    /// thread and returns the final counter snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let epoch = self.epoch();
        self.shutdown_inner();
        self.shared.snapshot(epoch)
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread promptly with a connect-to-self. The
        // connect must target a *loopback* address with the bound port:
        // when the service is bound to a wildcard address (`0.0.0.0`/`::`),
        // connecting to the unspecified address itself is platform-dependent
        // and can fail outright — which used to leave `accept` blocked and
        // this join deadlocked. The connect stays best-effort (hence the
        // ignored result): the accept loop also polls the shutdown flag, so
        // a failed wakeup only delays shutdown by one poll interval.
        let _ = TcpStream::connect_timeout(&wake_addr(self.local_addr), Duration::from_millis(250));
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // The accept thread owned the only work sender, so once it exits the
        // workers drain the queue and stop.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The address the shutdown wakeup connects to: the bound port on loopback
/// when the service listens on a wildcard address, the bound address itself
/// otherwise.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    match bound {
        SocketAddr::V4(a) if a.ip().is_unspecified() => (Ipv4Addr::LOCALHOST, a.port()).into(),
        SocketAddr::V6(a) if a.ip().is_unspecified() => (Ipv6Addr::LOCALHOST, a.port()).into(),
        other => other,
    }
}

/// How long the accept loop sleeps when no connection is pending. Bounds
/// both shutdown latency (when the loopback wakeup cannot connect) and the
/// worst-case accept delay for a connection arriving on an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sender: SyncSender<(TcpStream, Instant)>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Bounded hand-off: when every worker is busy and the queue
                // is full, shed the connection instead of buffering
                // unboundedly (the drop closes the socket — an immediate,
                // unambiguous signal to the client). `try_send` also keeps
                // this loop non-blocking so shutdown is never delayed behind
                // a full queue. The accept instant rides along so the first
                // request can attribute its queue wait.
                match sender.try_send((stream, Instant::now())) {
                    Ok(()) => {}
                    Err(TrySendError::Full((rejected, _))) => drop(rejected),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the service; back off briefly so a persistent
            // error (fd exhaustion) cannot pin this thread in a hot loop.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // `sender` drops here; workers exit after draining the queue.
}

/// How often a worker wakes from a blocking read to check the shutdown
/// flag and the connection's idle budget.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Serves one connection: a loop of framed requests answered in order.
fn handle_connection(shared: &Shared, mut stream: TcpStream, accepted: Instant) {
    // Accept-to-pickup delay: charged as queue wait to the connection's
    // first request (later requests on the persistent connection never
    // queued, so they see zero).
    let mut queue_wait = Some(accepted.elapsed());
    // On BSD-derived platforms an accepted socket inherits the listener's
    // non-blocking flag (the listener polls non-blocking for shutdown);
    // reads on this connection must block up to the poll timeout below, not
    // spin through the idle budget in microseconds.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // A short poll timeout (instead of one long read timeout) keeps
    // graceful shutdown prompt even while a client holds its connection
    // open; the configured read timeout becomes an idle budget.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut idle = Duration::ZERO;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            let reply = error_response(
                shared,
                ErrorCode::ShuttingDown,
                "service is shutting down".into(),
            );
            let _ = write_frame_counted(shared, &mut stream, &reply);
            break;
        }
        // Count every byte consumed off the wire — including the header and
        // partial payload of frames that are then rejected as oversized,
        // malformed or truncated. Error paths are still inbound traffic.
        let mut consumed = 0u64;
        let outcome = read_frame_counted(&mut stream, shared.config.max_frame_bytes, &mut consumed);
        if consumed > 0 {
            Metrics::add(&shared.metrics.bytes_in, consumed);
        }
        let payload = match outcome {
            Ok(FrameRead::Payload(payload)) => {
                idle = Duration::ZERO;
                payload
            }
            Ok(FrameRead::Closed) => break,
            Ok(FrameRead::Idle) => {
                idle += POLL_INTERVAL;
                match shared.config.read_timeout {
                    Some(limit) if idle >= limit => break,
                    _ => continue,
                }
            }
            Err(ServiceError::FrameTooLarge { declared, limit }) => {
                let mut trace = Trace::begin(queue_wait.take().unwrap_or_default());
                let reply = error_response(
                    shared,
                    ErrorCode::FrameTooLarge,
                    format!("frame of {declared} bytes exceeds the {limit}-byte limit"),
                );
                // These error replies answer a received (if unusable) request,
                // so they count as served — the documented contract is that
                // `requests_served` includes error replies.
                let written = trace.time(Stage::Write, || {
                    write_frame_counted(shared, &mut stream, &reply)
                });
                if written.is_ok() {
                    finish_request(shared, &trace);
                }
                break;
            }
            Err(ServiceError::Wire(e)) => {
                // After a corrupt header the stream offset is unknown; reply
                // if possible, then drop the connection.
                let mut trace = Trace::begin(queue_wait.take().unwrap_or_default());
                let reply = error_response(shared, ErrorCode::Malformed, format!("bad frame: {e}"));
                let written = trace.time(Stage::Write, || {
                    write_frame_counted(shared, &mut stream, &reply)
                });
                if written.is_ok() {
                    finish_request(shared, &trace);
                }
                break;
            }
            Err(_) => break,
        };

        let mut trace = Trace::begin(queue_wait.take().unwrap_or_default());
        let response_frame = handle_request(shared, &payload, &mut trace);
        let written = trace.time(Stage::Write, || {
            write_raw_counted(shared, &mut stream, &response_frame)
        });
        if written.is_err() {
            break;
        }
        finish_request(shared, &trace);
    }
}

/// Counts one fully served request and folds its trace into the metrics;
/// emits a slow-request log line when the request crossed the configured
/// threshold.
fn finish_request(shared: &Shared, trace: &Trace) {
    Metrics::add(&shared.metrics.requests_served, 1);
    let total = trace.total();
    shared
        .metrics
        .observe_request(&trace.stage_micros(), trace.kind(), total);
    if let Some(threshold) = shared.config.slow_request_micros {
        if total.as_micros() >= u128::from(threshold) {
            let epoch = shared.serving().epoch();
            shared
                .config
                .slow_log
                .write_line(&trace.slow_log_line(epoch, total));
        }
    }
}

/// Decodes and dispatches one request, returning the framed response bytes.
fn handle_request(shared: &Shared, payload: &[u8], trace: &mut Trace) -> Vec<u8> {
    let request = match trace.time(Stage::Decode, || Request::from_wire_bytes(payload)) {
        Ok(request) => request,
        Err(e) => {
            return error_response(shared, ErrorCode::Malformed, format!("bad request: {e}"))
                .to_framed_bytes()
        }
    };

    // Resolve the serving snapshot exactly once per request: records,
    // signatures and the envelope epoch stamp all come from this one `Arc`,
    // so a republication racing this request can never produce a
    // mixed-epoch response.
    let serving = shared.serving();
    let epoch = serving.epoch();

    match request {
        Request::Ping => Response::Pong.to_framed_bytes(),
        Request::Stats => Response::Stats(shared.snapshot(epoch)).to_framed_bytes(),
        Request::StatsDeep => Response::StatsDeep(shared.deep_snapshot(epoch)).to_framed_bytes(),
        Request::ShardInfo => match shared.config.shard {
            Some(role) => Response::ShardInfo(ShardInfo {
                shard_id: role.shard_id,
                shard_count: role.shard_count,
                records: serving.dataset().len() as u64,
                epoch,
            })
            .to_framed_bytes(),
            None => error_response(
                shared,
                ErrorCode::NotSharded,
                "service is not part of a sharded deployment".into(),
            )
            .to_framed_bytes(),
        },
        Request::ShardMap => {
            let map = shared.shard_map.lock().clone();
            match map {
                Some(map) => Response::ShardMap(map.as_ref().clone()).to_framed_bytes(),
                None => error_response(
                    shared,
                    ErrorCode::NotSharded,
                    "service has no published shard map".into(),
                )
                .to_framed_bytes(),
            }
        }
        // The decoded payload *is* the canonical encoding (decoding consumes
        // every byte and the format is bijective), so — prefixed with the
        // serving epoch — it serves as the cache and single-flight key
        // without a re-encode.
        Request::Query(query) => query_response(
            shared,
            &serving,
            epoch_cache_key(epoch, payload),
            query,
            trace,
        ),
        Request::QueryAt {
            epoch: pinned,
            query,
        } => {
            if let Some(rejection) = reject_stale_pin(shared, epoch, pinned) {
                return rejection;
            }
            // Key on the canonical bytes of the *equivalent plain query*,
            // so pinned and unpinned requests for the same query at the
            // same epoch share one cache entry and one flight.
            let canonical = Request::Query(query.clone()).canonical_bytes();
            query_response(
                shared,
                &serving,
                epoch_cache_key(epoch, &canonical),
                query,
                trace,
            )
        }
        Request::Batch(queries) => batch_response(shared, &serving, epoch, &queries, trace),
        Request::BatchAt {
            epoch: pinned,
            queries,
        } => {
            if let Some(rejection) = reject_stale_pin(shared, epoch, pinned) {
                return rejection;
            }
            batch_response(shared, &serving, epoch, &queries, trace)
        }
    }
}

/// The framed [`ErrorCode::StaleEpoch`] rejection for a request pinned to an
/// epoch the service does not currently serve (`None` when the pin matches)
/// — one reply for every pinned request shape.
fn reject_stale_pin(shared: &Shared, serving: u64, pinned: u64) -> Option<Vec<u8>> {
    if pinned == serving {
        return None;
    }
    Some(
        error_response(
            shared,
            ErrorCode::StaleEpoch,
            format!("service serves publication epoch {serving}, request pinned {pinned}"),
        )
        .to_framed_bytes(),
    )
}

/// Serves a batch through **per-item** epoch-keyed cache lookups: each query
/// resolves exactly as the equivalent single [`Request::Query`] would —
/// same cache key, same single-flight entry — so a batch sharing items with
/// past (or concurrent) singles and batches recomputes only the cold items,
/// and a repeated batch with one changed query pays exactly one miss. A
/// per-item error (bad dimensionality, internal failure) fails the whole
/// batch with that item's typed reply, like the whole-batch path always did.
fn batch_response(
    shared: &Shared,
    serving: &Arc<Server>,
    epoch: u64,
    queries: &[vaq_authquery::Query],
    trace: &mut Trace,
) -> Vec<u8> {
    if queries.is_empty() {
        // An empty batch used to sail under the max-batch check and cache a
        // useless empty response; it carries no work and is a client bug.
        return error_response(shared, ErrorCode::BadQuery, "batch holds no queries".into())
            .to_framed_bytes();
    }
    if queries.len() > shared.config.max_batch_len {
        return error_response(
            shared,
            ErrorCode::BadQuery,
            format!(
                "batch of {} queries exceeds the limit of {}",
                queries.len(),
                shared.config.max_batch_len
            ),
        )
        .to_framed_bytes();
    }
    let mut responses = Vec::with_capacity(queries.len());
    for query in queries {
        // Key every item on the canonical bytes of the equivalent plain
        // query, so batch items, pinned batches and singles for the same
        // query at the same epoch share one cache entry and one flight.
        let canonical = Request::Query(query.clone()).canonical_bytes();
        let frame = match query_frame(
            shared,
            serving,
            epoch_cache_key(epoch, &canonical),
            query.clone(),
            trace,
        ) {
            Ok(frame) => frame,
            Err(reply) => return Response::Error(reply).to_framed_bytes(),
        };
        // Decoding the cached single-query frame back into a QueryResponse
        // costs one deserialization per item — the deliberate price of
        // storing exactly one representation per item (the framed single
        // response) in one unified cache; the expensive work (query
        // processing and VO assembly) is what the shared entries dedupe.
        match Response::from_framed_bytes(&frame) {
            Ok(Response::Query { response, .. }) => responses.push(response),
            Ok(Response::Error(_)) => return frame,
            _ => {
                return error_response(
                    shared,
                    ErrorCode::Internal,
                    "batch item produced an unexpected frame".into(),
                )
                .to_framed_bytes()
            }
        }
    }
    let frame = trace.time(Stage::Encode, || {
        Response::Batch { epoch, responses }.to_framed_bytes()
    });
    trace.set_kind(RequestKind::Batch);
    frame
}

/// Serves one analytic query against a resolved serving snapshot through
/// the epoch-keyed cache, tagging the trace with the query's kind on
/// success so the whole request is attributed to it.
fn query_response(
    shared: &Shared,
    serving: &Arc<Server>,
    key: Vec<u8>,
    query: vaq_authquery::Query,
    trace: &mut Trace,
) -> Vec<u8> {
    let kind = query_kind(&query);
    match query_frame(shared, serving, key, query, trace) {
        Ok(frame) => {
            trace.set_kind(kind);
            frame
        }
        Err(reply) => Response::Error(reply).to_framed_bytes(),
    }
}

/// Maps a wire query to the request kind its latency is tracked under.
fn query_kind(query: &vaq_authquery::Query) -> RequestKind {
    match query.kind() {
        vaq_authquery::QueryKind::TopK => RequestKind::TopK,
        vaq_authquery::QueryKind::Range => RequestKind::Range,
        vaq_authquery::QueryKind::Knn => RequestKind::Knn,
    }
}

/// Serves one analytic query through the epoch-keyed cache, returning the
/// framed single-query response or the typed error reply.
fn query_frame(
    shared: &Shared,
    serving: &Arc<Server>,
    key: Vec<u8>,
    query: vaq_authquery::Query,
    trace: &mut Trace,
) -> Result<Vec<u8>, ErrorReply> {
    let epoch = serving.epoch();
    cached_response(shared, &key, trace, |shared, trace| {
        let mut responses = process_queries(shared, serving, std::slice::from_ref(&query), trace)?;
        match responses.pop() {
            Some(response) => Ok(trace.time(Stage::Encode, || {
                Response::Query { epoch, response }.to_framed_bytes()
            })),
            // One query in, one response out is the processing contract;
            // answer a typed Internal error rather than trusting it with a
            // panic on the hot path.
            None => Err(error_reply(
                shared,
                ErrorCode::Internal,
                "query produced no response".into(),
            )),
        }
    })
}

/// The caller's role for one single-flight key.
enum Flight {
    /// This worker computes; it must publish an outcome via [`FlightGuard`].
    Leader,
    /// Another worker was computing when we arrived; this is its published
    /// frame (`None` when the leader failed and waiters should retry).
    Follower(Option<Arc<Vec<u8>>>),
}

/// One in-flight computation: waiters block on `done` until the leader
/// publishes its outcome into `result`.
struct FlightSlot {
    /// `None` while the computation is pending; `Some(outcome)` once the
    /// leader finished (`Some(frame)` on success, `Some(None)` on failure).
    result: OrderedMutex<Option<Option<Arc<Vec<u8>>>>>,
    done: OrderedCondvar,
}

impl Default for FlightSlot {
    fn default() -> Self {
        FlightSlot {
            result: OrderedMutex::new(rank::RESULT, "result", None),
            done: OrderedCondvar::new(),
        }
    }
}

/// Single-flight deduplication of identical concurrent computations: when N
/// workers miss the cache on the same canonical key, exactly one computes
/// and hands the frame to the rest directly — so even responses too large
/// for the cache's byte budget are computed once per concurrent burst
/// instead of N times (or, worse, N times serialized).
struct SingleFlight {
    slots: OrderedMutex<HashMap<Vec<u8>, Arc<FlightSlot>>>,
}

impl Default for SingleFlight {
    fn default() -> Self {
        SingleFlight {
            slots: OrderedMutex::new(rank::SLOTS, "slots", HashMap::new()),
        }
    }
}

impl SingleFlight {
    /// Joins the flight for `key`: the first caller becomes the leader,
    /// every later caller blocks until the leader publishes and receives
    /// the published frame.
    fn join(&self, key: &[u8]) -> Flight {
        let slot = {
            let mut slots = self.slots.lock();
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    slots.insert(key.to_vec(), Arc::new(FlightSlot::default()));
                    return Flight::Leader;
                }
            }
        };
        let mut result = slot.result.lock();
        while result.is_none() {
            result = slot.done.wait(result);
        }
        Flight::Follower(result.as_ref().and_then(Clone::clone))
    }

    /// Publishes the leader's outcome and wakes every waiter.
    fn finish(&self, key: &[u8], outcome: Option<Arc<Vec<u8>>>) {
        let slot = {
            let mut slots = self.slots.lock();
            slots.remove(key)
        };
        if let Some(slot) = slot {
            *slot.result.lock() = Some(outcome);
            slot.done.notify_all();
        }
    }
}

/// Publishes the leader's outcome on drop, so waiters are woken (with a
/// retry signal) even when the computation errors or panics.
struct FlightGuard<'a> {
    flight: &'a SingleFlight,
    key: &'a [u8],
    outcome: Option<Arc<Vec<u8>>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flight.finish(self.key, self.outcome.take());
    }
}

/// Serves a cacheable request through the response cache with single-flight
/// deduplication, keyed by the caller-built epoch-prefixed key. `compute`
/// produces the framed response bytes to cache; an error reply is returned
/// to the requester but never cached or shared (the next requester retries
/// the computation). Cache probes and single-flight waits are charged to
/// the request's trace.
fn cached_response<F>(
    shared: &Shared,
    key: &[u8],
    trace: &mut Trace,
    mut compute: F,
) -> Result<Vec<u8>, ErrorReply>
where
    F: FnMut(&Shared, &mut Trace) -> Result<Vec<u8>, ErrorReply>,
{
    let caching = shared.config.cache_capacity > 0 && shared.config.cache_max_bytes > 0;
    if !caching {
        // With caching disabled there is no dedup contract to honour, so
        // concurrent identical queries stay fully parallel.
        let frame = compute(shared, trace)?;
        Metrics::add(&shared.metrics.cache_misses, 1);
        return Ok(frame);
    }
    loop {
        let cached = trace.time(Stage::CacheLookup, || shared.cache.lock().get(key));
        if let Some(frame) = cached {
            Metrics::add(&shared.metrics.cache_hits, 1);
            return Ok(frame.as_ref().clone());
        }
        let mut guard = match trace.time(Stage::FlightWait, || shared.flight.join(key)) {
            Flight::Leader => FlightGuard {
                flight: &shared.flight,
                key,
                outcome: None,
            },
            Flight::Follower(Some(frame)) => {
                // Served from the leader's shared computation — a hit for
                // accounting purposes even when the frame itself was too
                // large for the cache's byte budget.
                Metrics::add(&shared.metrics.cache_hits, 1);
                return Ok(frame.as_ref().clone());
            }
            // The leader failed; retry (and possibly lead) after re-checking
            // the cache.
            Flight::Follower(None) => continue,
        };
        // Re-check under leadership: a previous leader may have filled the
        // cache between this worker's miss and it winning the key.
        let cached = trace.time(Stage::CacheLookup, || shared.cache.lock().get(key));
        if let Some(frame) = cached {
            Metrics::add(&shared.metrics.cache_hits, 1);
            guard.outcome = Some(frame.clone());
            return Ok(frame.as_ref().clone());
        }
        let frame = compute(shared, trace)?;
        Metrics::add(&shared.metrics.cache_misses, 1);
        let frame = Arc::new(frame);
        shared.cache.lock().insert(key.to_vec(), Arc::clone(&frame));
        guard.outcome = Some(Arc::clone(&frame));
        drop(guard);
        return Ok(frame.as_ref().clone());
    }
}

/// Validates and processes queries against one resolved serving snapshot,
/// charging execution and VO-construction time to the request's trace.
fn process_queries(
    shared: &Shared,
    serving: &Arc<Server>,
    queries: &[vaq_authquery::Query],
    trace: &mut Trace,
) -> Result<Vec<vaq_authquery::QueryResponse>, ErrorReply> {
    let dims = serving.dataset().dims();
    for query in queries {
        if query.weights().len() != dims {
            return Err(error_reply(
                shared,
                ErrorCode::BadQuery,
                format!(
                    "query weight vector has {} dims, dataset has {dims}",
                    query.weights().len()
                ),
            ));
        }
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut execute = Duration::ZERO;
        let mut vo_build = Duration::ZERO;
        let responses = queries
            .iter()
            .map(|query| {
                let (response, timing) = serving.process_timed(query);
                execute += timing.execute;
                vo_build += timing.vo_build;
                response
            })
            .collect::<Vec<_>>();
        (responses, execute, vo_build)
    }));
    match result {
        Ok((responses, execute, vo_build)) => {
            trace.add(Stage::Execute, execute);
            trace.add(Stage::VoBuild, vo_build);
            Ok(responses)
        }
        Err(_) => Err(error_reply(
            shared,
            ErrorCode::Internal,
            "query processing failed".into(),
        )),
    }
}

/// Builds a typed error reply, bumping the flat and per-code error
/// counters.
fn error_reply(shared: &Shared, code: ErrorCode, message: String) -> ErrorReply {
    shared.metrics.record_error(code);
    ErrorReply { code, message }
}

/// Builds a typed error response, bumping the error counter.
fn error_response(shared: &Shared, code: ErrorCode, message: String) -> Response {
    Response::Error(error_reply(shared, code, message))
}

fn write_frame_counted(
    shared: &Shared,
    stream: &mut TcpStream,
    response: &Response,
) -> Result<(), ServiceError> {
    write_raw_counted(shared, stream, &response.to_framed_bytes())
}

fn write_raw_counted(
    shared: &Shared,
    stream: &mut TcpStream,
    frame: &[u8],
) -> Result<(), ServiceError> {
    use std::io::Write;
    stream.write_all(frame)?;
    Metrics::add(&shared.metrics.bytes_out, frame.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_hands_the_frame_to_waiters_directly() {
        // The frame reaches waiters through the flight slot itself, so
        // deduplication works even for frames the cache cannot hold.
        let flight = Arc::new(SingleFlight::default());
        assert!(matches!(flight.join(b"k"), Flight::Leader));

        let (joined_tx, joined_rx) = std::sync::mpsc::channel();
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                joined_tx.send(()).unwrap();
                match flight.join(b"k") {
                    Flight::Follower(frame) => frame,
                    Flight::Leader => panic!("second joiner must not lead"),
                }
            })
        };
        joined_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        flight.finish(b"k", Some(Arc::new(vec![7u8; 3])));
        let got = waiter.join().unwrap();
        assert_eq!(got.expect("waiter gets the frame").as_slice(), &[7, 7, 7]);

        // The key is free again: the next joiner leads.
        assert!(matches!(flight.join(b"k"), Flight::Leader));

        // A failing leader wakes waiters with a retry signal (None).
        let (joined_tx, joined_rx) = std::sync::mpsc::channel();
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                joined_tx.send(()).unwrap();
                matches!(flight.join(b"k"), Flight::Follower(None))
            })
        };
        joined_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        flight.finish(b"k", None);
        assert!(waiter.join().unwrap(), "waiter must see the failure signal");
    }

    #[test]
    fn wake_addr_targets_loopback_for_wildcard_binds() {
        let v4: SocketAddr = "0.0.0.0:4070".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:4070".parse().unwrap());
        let v6: SocketAddr = "[::]:4071".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:4071".parse().unwrap());
        let concrete: SocketAddr = "127.0.0.1:4072".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
    }
}
