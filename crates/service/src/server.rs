//! The running query service: evented reactor core, accept/shed loop,
//! worker pool, request dispatch, response cache and graceful shutdown.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use vaq_authquery::Server;
use vaq_wire::epoch;
use vaq_wire::{
    ErrorCode, ErrorReply, Request, Response, ShardInfo, SignedShardMap, StatsDeep, StatsSnapshot,
    WireDecode, WireEncode,
};

use crate::cache::LruCache;
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::metrics::{CacheGauges, Metrics, RequestKind, Stage};
use crate::pool::WorkerPool;
use crate::reactor::{self, Job};
use crate::sync::{rank, OrderedCondvar, OrderedMutex};
use crate::trace::Trace;

/// State shared between the accept thread, the reactor and every worker.
pub(crate) struct Shared {
    /// The currently serving dataset + authenticated structure. Swapped
    /// atomically by [`QueryService::republish`]: every request resolves
    /// this `Arc` exactly once, so a single response can never mix records
    /// from one epoch with signatures (or an envelope stamp) from another.
    serving: OrderedMutex<Arc<Server>>,
    /// The owner-signed shard map this service publishes to clients (reply
    /// to [`Request::ShardMap`]); `None` on a standalone service.
    shard_map: OrderedMutex<Option<Arc<SignedShardMap>>>,
    pub(crate) config: ServiceConfig,
    pub(crate) metrics: Metrics,
    cache: OrderedMutex<LruCache>,
    flight: SingleFlight,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    /// The serving snapshot: one clone of the `Arc`, taken once per request.
    fn serving(&self) -> Arc<Server> {
        Arc::clone(&self.serving.lock())
    }

    /// Samples the response cache's occupancy gauges.
    fn cache_gauges(&self) -> CacheGauges {
        self.cache.lock().gauges()
    }

    /// Flat counter snapshot including sampled cache gauges.
    fn snapshot(&self, epoch: u64) -> StatsSnapshot {
        self.metrics
            .snapshot(self.config.workers, epoch, self.cache_gauges())
    }

    /// Deep snapshot: flat counters plus per-stage breakdowns.
    fn deep_snapshot(&self, epoch: u64) -> StatsDeep {
        self.metrics
            .deep_snapshot(self.config.workers, epoch, self.cache_gauges())
    }
}

/// The response-cache (and single-flight) key: the serving epoch prepended
/// to the canonical query bytes. Keys from superseded epochs can never
/// collide with current ones, so an in-flight computation started before a
/// republication publishes under its own epoch's key and cannot poison the
/// new epoch's cache.
fn epoch_cache_key(epoch: u64, canonical: &[u8]) -> Vec<u8> {
    let mut key = Vec::with_capacity(8 + canonical.len());
    key.extend_from_slice(&epoch.to_be_bytes());
    key.extend_from_slice(canonical);
    key
}

thread_local! {
    /// Per-worker frame-assembly scratch. Response encoding on the hot path
    /// runs through [`WireEncode::to_framed_bytes_reusing`] with this
    /// buffer, so a warm worker frames each response with one exact-size
    /// allocation instead of growing a fresh payload vector per request.
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Frames one response through the calling worker's reusable encode scratch.
fn encode_frame<T: WireEncode>(response: &T) -> Vec<u8> {
    ENCODE_SCRATCH.with(|scratch| response.to_framed_bytes_reusing(&mut scratch.borrow_mut()))
}

/// A running networked query service over one [`Server`].
///
/// Binds a TCP listener and multiplexes every accepted connection on one
/// evented reactor thread (non-blocking sockets behind an O(n) readiness
/// sweep); request execution runs on a fixed-size worker pool, so thousands
/// of open connections cost no worker. Each connection carries any number
/// of framed [`Request`]s: untagged requests are answered strictly in
/// order, while [`Request::Tagged`] requests pipeline and complete out of
/// order, re-associated by their correlation tag. Dropping the service (or
/// calling [`QueryService::shutdown`]) stops the listener, drains in-flight
/// work and joins every thread.
pub struct QueryService {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    reactor_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    workers: usize,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers)
            .finish()
    }
}

impl QueryService {
    /// Binds the configured address and starts serving `server`'s dataset.
    ///
    /// Connections are multiplexed by one evented reactor thread, so
    /// [`ServiceConfig::workers`] sizes concurrent request *execution*, not
    /// concurrent connections — [`ServiceConfig::max_connections`] bounds
    /// those, and a connection beyond the limit is shed with a best-effort
    /// typed [`ErrorCode::Overloaded`] reply instead of a silent close.
    pub fn bind(mut config: ServiceConfig, server: Server) -> Result<QueryService, ServiceError> {
        let listener = TcpListener::bind(config.bind_addr)?;
        let local_addr = listener.local_addr()?;
        // The accept loop polls a non-blocking listener so it can observe the
        // shutdown flag even when the best-effort loopback wakeup connect
        // cannot reach the socket — a blocking `accept` has no portable,
        // std-only interruption mechanism.
        listener.set_nonblocking(true)?;
        // Clamp once so every consumer (pool sizing, stats) agrees.
        config.workers = config.workers.max(1);
        let workers = config.workers;
        let shared = Arc::new(Shared {
            cache: OrderedMutex::new(
                rank::CACHE,
                "cache",
                LruCache::with_byte_budget(config.cache_capacity, config.cache_max_bytes),
            ),
            flight: SingleFlight::default(),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            serving: OrderedMutex::new(rank::SERVING, "serving", Arc::new(server)),
            shard_map: OrderedMutex::new(rank::SHARD_MAP, "shard_map", None),
            config,
        });

        let worker_shared = Arc::clone(&shared);
        let (completions_tx, completions_rx) = mpsc::channel();
        let (pool, jobs) = WorkerPool::spawn(workers, move |job: Job| {
            reactor::run_job(&worker_shared, job);
        })?;

        let conn_count = Arc::new(AtomicUsize::new(0));
        let (register_tx, register_rx) = mpsc::channel();
        let reactor_shared = Arc::clone(&shared);
        let reactor_count = Arc::clone(&conn_count);
        let reactor_thread = std::thread::Builder::new()
            .name("vaq-service-reactor".into())
            .spawn(move || {
                reactor::run(
                    reactor_shared,
                    register_rx,
                    jobs,
                    completions_tx,
                    completions_rx,
                    reactor_count,
                )
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept_thread = match std::thread::Builder::new()
            .name("vaq-service-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, register_tx, conn_count))
        {
            Ok(handle) => handle,
            Err(e) => {
                // The reactor is already running; tell it to exit before
                // reporting the failure, or its thread would leak.
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = reactor_thread.join();
                return Err(ServiceError::Io(e));
            }
        };

        Ok(QueryService {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            reactor_thread: Some(reactor_thread),
            pool: Some(pool),
            workers,
        })
    }

    /// The address the service actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The publication epoch the service currently serves.
    pub fn epoch(&self) -> u64 {
        self.shared.serving().epoch()
    }

    /// Hot-swaps the served dataset + authenticated structure for a
    /// republication, without dropping a single connection.
    ///
    /// The new [`Server`]'s epoch (bound into its signatures by
    /// [`vaq_authquery::IfmhTree::build_at_epoch`]) must be strictly greater
    /// than the currently served epoch — a republication can never roll the
    /// service back. On success the response cache is flushed; in-flight
    /// requests that already resolved the old structure finish against it
    /// (and stamp their envelope with the *old* epoch, which their
    /// signatures also bind), while every request arriving after the swap
    /// sees only the new epoch. Epoch-prefixed cache keys keep the two
    /// generations apart even while both are briefly in flight.
    pub fn republish(&self, server: Server) -> Result<u64, ServiceError> {
        let new_epoch = server.epoch();
        {
            let mut serving = self.shared.serving.lock();
            let current = serving.epoch();
            if !epoch::advances(current, new_epoch) {
                return Err(ServiceError::StaleEpoch {
                    expected: epoch::next(current),
                    got: new_epoch,
                });
            }
            *serving = Arc::new(server);
        }
        // Flush after the swap: every response cached from here on belongs
        // to a visible epoch. Old-epoch in-flight leaders may still insert
        // under their epoch-prefixed keys, which no new request can hit.
        self.shared.cache.lock().clear();
        Ok(new_epoch)
    }

    /// Publishes (or replaces) the owner-signed shard map this service
    /// serves in reply to [`Request::ShardMap`].
    ///
    /// Rejects rollback: once a map with epoch `e` is published, only maps
    /// with a strictly greater epoch are accepted — a replayed older signed
    /// map cannot displace the current one.
    pub fn set_shard_map(&self, map: SignedShardMap) -> Result<(), ServiceError> {
        let mut slot = self.shared.shard_map.lock();
        if let Some(current) = slot.as_ref() {
            if !epoch::advances(current.map.epoch, map.map.epoch) {
                return Err(ServiceError::StaleEpoch {
                    expected: epoch::next(current.map.epoch),
                    got: map.map.epoch,
                });
            }
        }
        *slot = Some(Arc::new(map));
        Ok(())
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot(self.epoch())
    }

    /// Connections shed so far at the [`ServiceConfig::max_connections`]
    /// limit; each also shows up as an [`ErrorCode::Overloaded`] entry in
    /// the per-code error breakdown.
    pub fn connections_shed(&self) -> u64 {
        Metrics::get(&self.shared.metrics.connections_shed)
    }

    /// Slow readers shed so far at the
    /// [`ServiceConfig::write_queue_budget_bytes`] budget; each also shows
    /// up as an [`ErrorCode::Overloaded`] entry in the per-code error
    /// breakdown.
    pub fn slow_readers_shed(&self) -> u64 {
        Metrics::get(&self.shared.metrics.slow_readers_shed)
    }

    /// Reactor sweeps that ran past the
    /// [`ServiceConfig::reactor_stall_micros`] watchdog threshold.
    pub fn reactor_stalls(&self) -> u64 {
        Metrics::get(&self.shared.metrics.reactor_stalls)
    }

    /// A point-in-time deep snapshot: the flat counters plus per-stage
    /// latency histograms and per-kind stage attribution.
    pub fn stats_deep(&self) -> StatsDeep {
        self.shared.deep_snapshot(self.epoch())
    }

    /// Stops accepting connections, drains in-flight work, joins every
    /// thread and returns the final counter snapshot.
    pub fn shutdown(mut self) -> StatsSnapshot {
        let epoch = self.epoch();
        self.shutdown_inner();
        self.shared.snapshot(epoch)
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept thread promptly with a connect-to-self. The
        // connect must target a *loopback* address with the bound port:
        // when the service is bound to a wildcard address (`0.0.0.0`/`::`),
        // connecting to the unspecified address itself is platform-dependent
        // and can fail outright — which used to leave `accept` blocked and
        // this join deadlocked. The connect stays best-effort (hence the
        // ignored result): the accept loop also polls the shutdown flag, so
        // a failed wakeup only delays shutdown by one poll interval.
        let _ = TcpStream::connect_timeout(&wake_addr(self.local_addr), Duration::from_millis(250));
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        // The reactor sees the flag, bounded-drains in-flight requests,
        // answers every surviving connection with a typed ShuttingDown
        // reply and exits — dropping the only job sender…
        if let Some(thread) = self.reactor_thread.take() {
            let _ = thread.join();
        }
        // …so the workers drain the queue and stop.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The address the shutdown wakeup connects to: the bound port on loopback
/// when the service listens on a wildcard address, the bound address itself
/// otherwise.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    match bound {
        SocketAddr::V4(a) if a.ip().is_unspecified() => (Ipv4Addr::LOCALHOST, a.port()).into(),
        SocketAddr::V6(a) if a.ip().is_unspecified() => (Ipv6Addr::LOCALHOST, a.port()).into(),
        other => other,
    }
}

/// The accept loop's *idle* nap ceiling. Bounds both shutdown latency
/// (when the loopback wakeup cannot connect) and the worst-case accept
/// delay for a connection arriving on an idle listener.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// The accept loop's nap floor once it falls back to sleeping. Doubling
/// from here toward [`ACCEPT_POLL`] goes quiet quickly on an idle
/// listener while staying responsive to a trickle of connects.
const ACCEPT_POLL_MIN: Duration = Duration::from_micros(200);

/// How many times the accept loop *yields* its timeslice — staying
/// runnable — on a drained backlog before it starts sleeping. A connect
/// storm (the load generator opens thousands of sockets back-to-back)
/// overflows the kernel's fixed listen backlog if the acceptor ever
/// sleeps mid-storm: a sleeping thread leaves the run queue, and on a
/// saturated core it wakes behind every connect-spinning client thread —
/// a gap long enough to queue more connections than the backlog holds,
/// and each dropped SYN stalls its client on a ~1s retransmit. Yielding
/// keeps the thread schedulable at its fair share for the whole storm, so
/// the backlog drains every few timeslices; only after this many empty
/// polls in a row does the loop conclude the storm is over and back off
/// to sleeping.
const ACCEPT_YIELD_BURST: u32 = 64;

/// How long the shed path's best-effort blocking write of the typed
/// `Overloaded` reply may take before the connection is dropped anyway.
const SHED_REPLY_BUDGET: Duration = Duration::from_millis(250);

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    register: Sender<TcpStream>,
    conn_count: Arc<AtomicUsize>,
) {
    let mut nap = ACCEPT_POLL_MIN;
    let mut empty_polls = 0u32;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                nap = ACCEPT_POLL_MIN;
                empty_polls = 0;
                // Bounded connection table: at the limit the connection is
                // shed with a typed reply — an unambiguous signal to the
                // client — instead of the silent close it used to get.
                if conn_count.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shed(&shared, stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                // The reactor multiplexes this socket; it must never block.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conn_count.fetch_add(1, Ordering::SeqCst);
                if register.send(stream).is_err() {
                    conn_count.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if empty_polls < ACCEPT_YIELD_BURST {
                    // Mid-storm (or just after one): stay runnable so the
                    // scheduler keeps this thread in the rotation and the
                    // listen backlog cannot overflow behind a sleep.
                    empty_polls += 1;
                    std::thread::yield_now();
                } else {
                    // Idle: exponential backoff toward the nap ceiling.
                    std::thread::sleep(nap);
                    nap = (nap * 2).min(ACCEPT_POLL);
                }
            }
            // Transient accept errors (e.g. a peer resetting mid-handshake)
            // must not kill the service; back off briefly so a persistent
            // error (fd exhaustion) cannot pin this thread in a hot loop.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // `register` drops here; the reactor stops seeing new connections.
}

/// Sheds one over-limit connection: counted, answered with a best-effort
/// typed [`ErrorCode::Overloaded`] reply, then closed.
fn shed(shared: &Shared, mut stream: TcpStream) {
    Metrics::add(&shared.metrics.connections_shed, 1);
    let reply = error_response(
        shared,
        ErrorCode::Overloaded,
        "service is at its connection limit; retry later".into(),
    );
    let frame = reply.to_framed_bytes();
    // The accepted socket inherits the listener's non-blocking flag on some
    // platforms; the one-shot reply below wants a short blocking write.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(SHED_REPLY_BUDGET));
    if stream.write_all(&frame).is_ok() {
        Metrics::add(&shared.metrics.bytes_out, frame.len() as u64);
    }
}

/// Counts one fully served request and folds its trace into the metrics;
/// emits a slow-request log line when the request crossed the configured
/// threshold. The reactor calls this once the response frame fully drains
/// to the socket, with the measured write time already charged.
pub(crate) fn finish_request(shared: &Shared, trace: &Trace) {
    Metrics::add(&shared.metrics.requests_served, 1);
    let total = trace.total();
    shared
        .metrics
        .observe_request(&trace.stage_micros(), trace.kind(), total);
    if let Some(threshold) = shared.config.slow_request_micros {
        if total.as_micros() >= u128::from(threshold) {
            let epoch = shared.serving().epoch();
            shared
                .config
                .slow_log
                .write_line(&trace.slow_log_line(epoch, total));
        }
    }
}

/// Decodes and dispatches one request, returning the framed response bytes.
///
/// Runs on a worker thread; `payload` is the request's wire encoding with
/// any tag envelope already stripped by the reactor, which also re-wraps
/// the returned frame for tagged requests — so the response cache holds one
/// shared entry per query regardless of how it was enveloped.
pub(crate) fn handle_request(shared: &Shared, payload: &[u8], trace: &mut Trace) -> Vec<u8> {
    let request = match trace.time(Stage::Decode, || Request::from_wire_bytes(payload)) {
        Ok(request) => request,
        Err(e) => {
            return error_response(shared, ErrorCode::Malformed, format!("bad request: {e}"))
                .to_framed_bytes()
        }
    };

    // Resolve the serving snapshot exactly once per request: records,
    // signatures and the envelope epoch stamp all come from this one `Arc`,
    // so a republication racing this request can never produce a
    // mixed-epoch response.
    let serving = shared.serving();
    let epoch = serving.epoch();

    match request {
        Request::Ping => Response::Pong.to_framed_bytes(),
        Request::Stats => Response::Stats(shared.snapshot(epoch)).to_framed_bytes(),
        Request::StatsDeep => Response::StatsDeep(shared.deep_snapshot(epoch)).to_framed_bytes(),
        Request::ShardInfo => match shared.config.shard {
            Some(role) => Response::ShardInfo(ShardInfo {
                shard_id: role.shard_id,
                shard_count: role.shard_count,
                records: serving.dataset().len() as u64,
                epoch,
            })
            .to_framed_bytes(),
            None => error_response(
                shared,
                ErrorCode::NotSharded,
                "service is not part of a sharded deployment".into(),
            )
            .to_framed_bytes(),
        },
        Request::ShardMap => {
            let map = shared.shard_map.lock().clone();
            match map {
                Some(map) => Response::ShardMap(map.as_ref().clone()).to_framed_bytes(),
                None => error_response(
                    shared,
                    ErrorCode::NotSharded,
                    "service has no published shard map".into(),
                )
                .to_framed_bytes(),
            }
        }
        // The decoded payload *is* the canonical encoding (decoding consumes
        // every byte and the format is bijective), so — prefixed with the
        // serving epoch — it serves as the cache and single-flight key
        // without a re-encode.
        Request::Query(query) => query_response(
            shared,
            &serving,
            epoch_cache_key(epoch, payload),
            query,
            trace,
        ),
        Request::QueryAt {
            epoch: pinned,
            query,
        } => {
            if let Some(rejection) = reject_stale_pin(shared, epoch, pinned) {
                return rejection;
            }
            // Key on the canonical bytes of the *equivalent plain query*,
            // so pinned and unpinned requests for the same query at the
            // same epoch share one cache entry and one flight.
            let canonical = Request::Query(query.clone()).canonical_bytes();
            query_response(
                shared,
                &serving,
                epoch_cache_key(epoch, &canonical),
                query,
                trace,
            )
        }
        Request::Batch(queries) => batch_response(shared, &serving, epoch, &queries, trace),
        Request::BatchAt {
            epoch: pinned,
            queries,
        } => {
            if let Some(rejection) = reject_stale_pin(shared, epoch, pinned) {
                return rejection;
            }
            batch_response(shared, &serving, epoch, &queries, trace)
        }
        // The reactor strips the tag envelope before dispatch, so a payload
        // that still decodes as `Tagged` here was wrapped twice — a client
        // bug the wire format itself also rejects one level deeper.
        Request::Tagged { tag, .. } => error_response(
            shared,
            ErrorCode::Malformed,
            format!("tagged envelope cannot nest (tag {tag})"),
        )
        .to_framed_bytes(),
    }
}

/// The framed [`ErrorCode::StaleEpoch`] rejection for a request pinned to an
/// epoch the service does not currently serve (`None` when the pin matches)
/// — one reply for every pinned request shape.
fn reject_stale_pin(shared: &Shared, serving: u64, pinned: u64) -> Option<Vec<u8>> {
    if pinned == serving {
        return None;
    }
    Some(
        error_response(
            shared,
            ErrorCode::StaleEpoch,
            format!("service serves publication epoch {serving}, request pinned {pinned}"),
        )
        .to_framed_bytes(),
    )
}

/// Serves a batch through **per-item** epoch-keyed cache lookups: each query
/// resolves exactly as the equivalent single [`Request::Query`] would —
/// same cache key, same single-flight entry — so a batch sharing items with
/// past (or concurrent) singles and batches recomputes only the cold items,
/// and a repeated batch with one changed query pays exactly one miss. A
/// per-item error (bad dimensionality, internal failure) fails the whole
/// batch with that item's typed reply, like the whole-batch path always did.
fn batch_response(
    shared: &Shared,
    serving: &Arc<Server>,
    epoch: u64,
    queries: &[vaq_authquery::Query],
    trace: &mut Trace,
) -> Vec<u8> {
    if queries.is_empty() {
        // An empty batch used to sail under the max-batch check and cache a
        // useless empty response; it carries no work and is a client bug.
        return error_response(shared, ErrorCode::BadQuery, "batch holds no queries".into())
            .to_framed_bytes();
    }
    if queries.len() > shared.config.max_batch_len {
        return error_response(
            shared,
            ErrorCode::BadQuery,
            format!(
                "batch of {} queries exceeds the limit of {}",
                queries.len(),
                shared.config.max_batch_len
            ),
        )
        .to_framed_bytes();
    }
    let mut responses = Vec::with_capacity(queries.len());
    for query in queries {
        // Key every item on the canonical bytes of the equivalent plain
        // query, so batch items, pinned batches and singles for the same
        // query at the same epoch share one cache entry and one flight.
        let canonical = Request::Query(query.clone()).canonical_bytes();
        let frame = match query_frame(
            shared,
            serving,
            epoch_cache_key(epoch, &canonical),
            query.clone(),
            trace,
        ) {
            Ok(frame) => frame,
            Err(reply) => return Response::Error(reply).to_framed_bytes(),
        };
        // Decoding the cached single-query frame back into a QueryResponse
        // costs one deserialization per item — the deliberate price of
        // storing exactly one representation per item (the framed single
        // response) in one unified cache; the expensive work (query
        // processing and VO assembly) is what the shared entries dedupe.
        match Response::from_framed_bytes(&frame) {
            Ok(Response::Query { response, .. }) => responses.push(response),
            Ok(Response::Error(_)) => return frame,
            _ => {
                return error_response(
                    shared,
                    ErrorCode::Internal,
                    "batch item produced an unexpected frame".into(),
                )
                .to_framed_bytes()
            }
        }
    }
    let frame = trace.time(Stage::Encode, || {
        encode_frame(&Response::Batch { epoch, responses })
    });
    trace.set_kind(RequestKind::Batch);
    frame
}

/// Serves one analytic query against a resolved serving snapshot through
/// the epoch-keyed cache, tagging the trace with the query's kind on
/// success so the whole request is attributed to it.
fn query_response(
    shared: &Shared,
    serving: &Arc<Server>,
    key: Vec<u8>,
    query: vaq_authquery::Query,
    trace: &mut Trace,
) -> Vec<u8> {
    let kind = query_kind(&query);
    match query_frame(shared, serving, key, query, trace) {
        Ok(frame) => {
            trace.set_kind(kind);
            frame
        }
        Err(reply) => Response::Error(reply).to_framed_bytes(),
    }
}

/// Maps a wire query to the request kind its latency is tracked under.
fn query_kind(query: &vaq_authquery::Query) -> RequestKind {
    match query.kind() {
        vaq_authquery::QueryKind::TopK => RequestKind::TopK,
        vaq_authquery::QueryKind::Range => RequestKind::Range,
        vaq_authquery::QueryKind::Knn => RequestKind::Knn,
    }
}

/// Serves one analytic query through the epoch-keyed cache, returning the
/// framed single-query response or the typed error reply.
fn query_frame(
    shared: &Shared,
    serving: &Arc<Server>,
    key: Vec<u8>,
    query: vaq_authquery::Query,
    trace: &mut Trace,
) -> Result<Vec<u8>, ErrorReply> {
    let epoch = serving.epoch();
    cached_response(shared, &key, trace, |shared, trace| {
        let mut responses = process_queries(shared, serving, std::slice::from_ref(&query), trace)?;
        match responses.pop() {
            Some(response) => Ok(trace.time(Stage::Encode, || {
                encode_frame(&Response::Query { epoch, response })
            })),
            // One query in, one response out is the processing contract;
            // answer a typed Internal error rather than trusting it with a
            // panic on the hot path.
            None => Err(error_reply(
                shared,
                ErrorCode::Internal,
                "query produced no response".into(),
            )),
        }
    })
}

/// The caller's role for one single-flight key.
enum Flight {
    /// This worker computes; it must publish an outcome via [`FlightGuard`].
    Leader,
    /// Another worker was computing when we arrived; this is its published
    /// frame (`None` when the leader failed and waiters should retry).
    Follower(Option<Arc<Vec<u8>>>),
}

/// One in-flight computation: waiters block on `done` until the leader
/// publishes its outcome into `result`.
struct FlightSlot {
    /// `None` while the computation is pending; `Some(outcome)` once the
    /// leader finished (`Some(frame)` on success, `Some(None)` on failure).
    result: OrderedMutex<Option<Option<Arc<Vec<u8>>>>>,
    done: OrderedCondvar,
}

impl Default for FlightSlot {
    fn default() -> Self {
        FlightSlot {
            result: OrderedMutex::new(rank::RESULT, "result", None),
            done: OrderedCondvar::new(),
        }
    }
}

/// Single-flight deduplication of identical concurrent computations: when N
/// workers miss the cache on the same canonical key, exactly one computes
/// and hands the frame to the rest directly — so even responses too large
/// for the cache's byte budget are computed once per concurrent burst
/// instead of N times (or, worse, N times serialized).
struct SingleFlight {
    slots: OrderedMutex<HashMap<Vec<u8>, Arc<FlightSlot>>>,
}

impl Default for SingleFlight {
    fn default() -> Self {
        SingleFlight {
            slots: OrderedMutex::new(rank::SLOTS, "slots", HashMap::new()),
        }
    }
}

impl SingleFlight {
    /// Joins the flight for `key`: the first caller becomes the leader,
    /// every later caller blocks until the leader publishes and receives
    /// the published frame.
    fn join(&self, key: &[u8]) -> Flight {
        let slot = {
            let mut slots = self.slots.lock();
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    slots.insert(key.to_vec(), Arc::new(FlightSlot::default()));
                    return Flight::Leader;
                }
            }
        };
        let mut result = slot.result.lock();
        while result.is_none() {
            result = slot.done.wait(result);
        }
        Flight::Follower(result.as_ref().and_then(Clone::clone))
    }

    /// Publishes the leader's outcome and wakes every waiter.
    fn finish(&self, key: &[u8], outcome: Option<Arc<Vec<u8>>>) {
        let slot = {
            let mut slots = self.slots.lock();
            slots.remove(key)
        };
        if let Some(slot) = slot {
            *slot.result.lock() = Some(outcome);
            slot.done.notify_all();
        }
    }
}

/// Publishes the leader's outcome on drop, so waiters are woken (with a
/// retry signal) even when the computation errors or panics.
struct FlightGuard<'a> {
    flight: &'a SingleFlight,
    key: &'a [u8],
    outcome: Option<Arc<Vec<u8>>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.flight.finish(self.key, self.outcome.take());
    }
}

/// Serves a cacheable request through the response cache with single-flight
/// deduplication, keyed by the caller-built epoch-prefixed key. `compute`
/// produces the framed response bytes to cache; an error reply is returned
/// to the requester but never cached or shared (the next requester retries
/// the computation). Cache probes and single-flight waits are charged to
/// the request's trace.
fn cached_response<F>(
    shared: &Shared,
    key: &[u8],
    trace: &mut Trace,
    mut compute: F,
) -> Result<Vec<u8>, ErrorReply>
where
    F: FnMut(&Shared, &mut Trace) -> Result<Vec<u8>, ErrorReply>,
{
    let caching = shared.config.cache_capacity > 0 && shared.config.cache_max_bytes > 0;
    if !caching {
        // With caching disabled there is no dedup contract to honour, so
        // concurrent identical queries stay fully parallel.
        let frame = compute(shared, trace)?;
        Metrics::add(&shared.metrics.cache_misses, 1);
        return Ok(frame);
    }
    loop {
        let cached = trace.time(Stage::CacheLookup, || shared.cache.lock().get(key));
        if let Some(frame) = cached {
            Metrics::add(&shared.metrics.cache_hits, 1);
            return Ok(frame.as_ref().clone());
        }
        let mut guard = match trace.time(Stage::FlightWait, || shared.flight.join(key)) {
            Flight::Leader => FlightGuard {
                flight: &shared.flight,
                key,
                outcome: None,
            },
            Flight::Follower(Some(frame)) => {
                // Served from the leader's shared computation — a hit for
                // accounting purposes even when the frame itself was too
                // large for the cache's byte budget.
                Metrics::add(&shared.metrics.cache_hits, 1);
                return Ok(frame.as_ref().clone());
            }
            // The leader failed; retry (and possibly lead) after re-checking
            // the cache.
            Flight::Follower(None) => continue,
        };
        // Re-check under leadership: a previous leader may have filled the
        // cache between this worker's miss and it winning the key.
        let cached = trace.time(Stage::CacheLookup, || shared.cache.lock().get(key));
        if let Some(frame) = cached {
            Metrics::add(&shared.metrics.cache_hits, 1);
            guard.outcome = Some(frame.clone());
            return Ok(frame.as_ref().clone());
        }
        let frame = compute(shared, trace)?;
        Metrics::add(&shared.metrics.cache_misses, 1);
        let frame = Arc::new(frame);
        shared.cache.lock().insert(key.to_vec(), Arc::clone(&frame));
        guard.outcome = Some(Arc::clone(&frame));
        drop(guard);
        return Ok(frame.as_ref().clone());
    }
}

/// Validates and processes queries against one resolved serving snapshot,
/// charging execution and VO-construction time to the request's trace.
fn process_queries(
    shared: &Shared,
    serving: &Arc<Server>,
    queries: &[vaq_authquery::Query],
    trace: &mut Trace,
) -> Result<Vec<vaq_authquery::QueryResponse>, ErrorReply> {
    let dims = serving.dataset().dims();
    for query in queries {
        if query.weights().len() != dims {
            return Err(error_reply(
                shared,
                ErrorCode::BadQuery,
                format!(
                    "query weight vector has {} dims, dataset has {dims}",
                    query.weights().len()
                ),
            ));
        }
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut execute = Duration::ZERO;
        let mut vo_build = Duration::ZERO;
        let responses = queries
            .iter()
            .map(|query| {
                let (response, timing) = serving.process_timed(query);
                execute += timing.execute;
                vo_build += timing.vo_build;
                response
            })
            .collect::<Vec<_>>();
        (responses, execute, vo_build)
    }));
    match result {
        Ok((responses, execute, vo_build)) => {
            trace.add(Stage::Execute, execute);
            trace.add(Stage::VoBuild, vo_build);
            Ok(responses)
        }
        Err(_) => Err(error_reply(
            shared,
            ErrorCode::Internal,
            "query processing failed".into(),
        )),
    }
}

/// Builds a typed error reply, bumping the flat and per-code error
/// counters.
fn error_reply(shared: &Shared, code: ErrorCode, message: String) -> ErrorReply {
    shared.metrics.record_error(code);
    ErrorReply { code, message }
}

/// Builds a typed error response, bumping the error counter.
pub(crate) fn error_response(shared: &Shared, code: ErrorCode, message: String) -> Response {
    Response::Error(error_reply(shared, code, message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_hands_the_frame_to_waiters_directly() {
        // The frame reaches waiters through the flight slot itself, so
        // deduplication works even for frames the cache cannot hold.
        let flight = Arc::new(SingleFlight::default());
        assert!(matches!(flight.join(b"k"), Flight::Leader));

        let (joined_tx, joined_rx) = std::sync::mpsc::channel();
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                joined_tx.send(()).unwrap();
                match flight.join(b"k") {
                    Flight::Follower(frame) => frame,
                    Flight::Leader => panic!("second joiner must not lead"),
                }
            })
        };
        joined_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        flight.finish(b"k", Some(Arc::new(vec![7u8; 3])));
        let got = waiter.join().unwrap();
        assert_eq!(got.expect("waiter gets the frame").as_slice(), &[7, 7, 7]);

        // The key is free again: the next joiner leads.
        assert!(matches!(flight.join(b"k"), Flight::Leader));

        // A failing leader wakes waiters with a retry signal (None).
        let (joined_tx, joined_rx) = std::sync::mpsc::channel();
        let waiter = {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                joined_tx.send(()).unwrap();
                matches!(flight.join(b"k"), Flight::Follower(None))
            })
        };
        joined_rx.recv().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        flight.finish(b"k", None);
        assert!(waiter.join().unwrap(), "waiter must see the failure signal");
    }

    #[test]
    fn wake_addr_targets_loopback_for_wildcard_binds() {
        let v4: SocketAddr = "0.0.0.0:4070".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:4070".parse().unwrap());
        let v6: SocketAddr = "[::]:4071".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:4071".parse().unwrap());
        let concrete: SocketAddr = "127.0.0.1:4072".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
    }
}
