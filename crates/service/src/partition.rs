//! Owner-side partitioning of one logical dataset into disjoint shards.
//!
//! The paper's owner outsources one function database to one untrusted
//! server; this module is the owner-side half of scaling that model out
//! horizontally. The owner splits the records into `S` disjoint shards,
//! builds an independent authenticated structure (IFMH-tree) over each shard
//! **under a per-shard signing key**, and publishes a [`ShardMap`] attested
//! by a master signature. The per-shard keys are what stop a compromised
//! shard server from answering with another shard's (equally well-signed)
//! data; the attested map is what stops a front-end from silently dropping a
//! shard — the client knows exactly how many shards exist, how many records
//! each holds and which key each must verify under.

use vaq_crypto::sha256::Digest;
use vaq_crypto::{PublicKey, Signer};
use vaq_funcdb::Dataset;
use vaq_wire::{ShardEntry, ShardMap, SignedShardMap};

use crate::error::ServiceError;

/// How records are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Record `i` goes to shard `i % S`. Keeps shard sizes within one record
    /// of each other and spreads any ordering structure in the source table
    /// across all shards.
    RoundRobin,
    /// Consecutive runs of records per shard, balanced to within one record
    /// (the first `n % S` shards take one extra). Preserves record locality
    /// (useful when the source table is already grouped by tenant or time).
    Contiguous,
}

/// Splits `dataset` into `shards` disjoint datasets that together cover
/// every record exactly once. Each shard keeps the full template and weight
/// domain — a shard answers the same queries as the whole dataset, just over
/// fewer records.
///
/// # Panics
///
/// Panics when `shards` is zero, when the dataset has fewer records than
/// shards (an empty shard cannot carry an authenticated structure), or when
/// record ids are not strictly increasing. Strictly increasing ids make the
/// dataset's tie-break order (by in-dataset index) and the merge tie-break
/// order (by record id) agree, which is what lets a scatter-gather merge
/// reproduce a single server's result ordering exactly.
pub fn partition_dataset(
    dataset: &Dataset,
    shards: usize,
    strategy: PartitionStrategy,
) -> Vec<Dataset> {
    assert!(shards > 0, "cannot partition into zero shards");
    assert!(
        dataset.len() >= shards,
        "dataset of {} records cannot fill {} shards",
        dataset.len(),
        shards
    );
    for pair in dataset.records.windows(2) {
        assert!(
            pair[0].id < pair[1].id,
            "record ids must be strictly increasing for deterministic merges \
             (got {} before {})",
            pair[0].id,
            pair[1].id
        );
    }
    let mut parts: Vec<Vec<vaq_funcdb::Record>> = vec![Vec::new(); shards];
    match strategy {
        PartitionStrategy::RoundRobin => {
            for (i, record) in dataset.records.iter().enumerate() {
                parts[i % shards].push(record.clone());
            }
        }
        PartitionStrategy::Contiguous => {
            // Balanced chunking: the first `n % S` shards take one extra
            // record. A naive `ceil(n/S)`-sized chunking can starve the last
            // shard entirely (e.g. 9 records / 4 shards -> [3, 3, 3, 0]),
            // and an empty shard cannot carry an authenticated structure.
            let base = dataset.len() / shards;
            let extra = dataset.len() % shards;
            let mut next = 0usize;
            for (shard, part) in parts.iter_mut().enumerate() {
                let take = base + usize::from(shard < extra);
                part.extend(dataset.records[next..next + take].iter().cloned());
                next += take;
            }
        }
    }
    parts
        .into_iter()
        .map(|records| Dataset::new(records, dataset.template.clone(), dataset.domain.clone()))
        .collect()
}

/// Builds the owner's attested shard map over already partitioned shards:
/// one [`ShardEntry`] per shard carrying its record count, per-shard public
/// key and serving addresses (primary first, standbys after), the whole map
/// — including the publication `epoch` — signed by the owner's master key.
///
/// `addrs` holds one address list per shard; pass an empty slice when the
/// deployment topology is distributed out of band. The epoch is what makes
/// republication safe: clients never replace a verified map with one whose
/// epoch is not strictly greater, so a replayed older signed map cannot
/// roll anyone back.
pub fn attest_shard_map(
    shards: &[Dataset],
    shard_keys: &[PublicKey],
    master: &dyn Signer,
    epoch: u64,
    addrs: &[Vec<std::net::SocketAddr>],
) -> SignedShardMap {
    assert_eq!(
        shards.len(),
        shard_keys.len(),
        "one public key per shard is required"
    );
    assert!(
        addrs.is_empty() || addrs.len() == shards.len(),
        "one address list per shard (or none at all) is required"
    );
    assert!(!shards.is_empty(), "a shard map needs at least one shard");
    let dims = shards[0].dims();
    let map = ShardMap {
        epoch,
        shard_count: shards.len() as u32,
        total_records: shards.iter().map(|s| s.len() as u64).sum(),
        dims: dims as u32,
        shards: shards
            .iter()
            .zip(shard_keys)
            .enumerate()
            .map(|(shard_id, (dataset, public_key))| ShardEntry {
                shard_id: shard_id as u32,
                records: dataset.len() as u64,
                public_key: public_key.clone(),
                addrs: addrs
                    .get(shard_id)
                    .map(|list| list.iter().map(|a| a.to_string()).collect())
                    .unwrap_or_default(),
            })
            .collect(),
    };
    let signature = master.sign_digest(&map.digest());
    SignedShardMap { map, signature }
}

/// Checks a published shard map against the owner's master key and its own
/// internal consistency. Every scatter-gather client must call this before
/// trusting the map's shard count and per-shard keys.
pub fn verify_shard_map(
    signed: &SignedShardMap,
    master: &dyn vaq_crypto::Verifier,
) -> Result<(), ServiceError> {
    let digest: Digest = signed.map.digest();
    if !master.verify_digest(&digest, &signed.signature) {
        return Err(ServiceError::ShardMap(
            "master signature does not cover this shard map".into(),
        ));
    }
    let map = &signed.map;
    if map.shard_count as usize != map.shards.len() {
        return Err(ServiceError::ShardMap(format!(
            "map declares {} shards but lists {}",
            map.shard_count,
            map.shards.len()
        )));
    }
    if map.shards.is_empty() {
        return Err(ServiceError::ShardMap("map lists no shards".into()));
    }
    for (index, entry) in map.shards.iter().enumerate() {
        if entry.shard_id as usize != index {
            return Err(ServiceError::ShardMap(format!(
                "entry {index} carries shard id {}",
                entry.shard_id
            )));
        }
    }
    let listed: u64 = map.shards.iter().map(|s| s.records).sum();
    if listed != map.total_records {
        return Err(ServiceError::ShardMap(format!(
            "per-shard record counts sum to {listed}, map declares {}",
            map.total_records
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaq_crypto::SignatureScheme;
    use vaq_workload::uniform_dataset;

    #[test]
    fn partitions_are_disjoint_and_cover_everything() {
        let dataset = uniform_dataset(17, 2, 3);
        for strategy in [PartitionStrategy::RoundRobin, PartitionStrategy::Contiguous] {
            let shards = partition_dataset(&dataset, 4, strategy);
            assert_eq!(shards.len(), 4);
            let mut ids: Vec<u64> = shards
                .iter()
                .flat_map(|s| s.records.iter().map(|r| r.id))
                .collect();
            ids.sort_unstable();
            let original: Vec<u64> = dataset.records.iter().map(|r| r.id).collect();
            assert_eq!(ids, original, "{strategy:?} must cover every record once");
            for shard in &shards {
                assert!(!shard.is_empty());
                assert_eq!(shard.dims(), dataset.dims());
                // Within a shard the source order (and so the id order) is
                // preserved.
                for pair in shard.records.windows(2) {
                    assert!(pair[0].id < pair[1].id);
                }
            }
        }
    }

    #[test]
    fn round_robin_balances_within_one_record() {
        let dataset = uniform_dataset(14, 1, 9);
        let shards = partition_dataset(&dataset, 4, PartitionStrategy::RoundRobin);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 14);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn contiguous_partitioning_never_leaves_a_shard_empty() {
        // Regression: ceil-chunked contiguous partitioning produced
        // [3, 3, 3, 0] for 9 records over 4 shards.
        for n in 4..=40 {
            for shards in 1..=4 {
                let dataset = uniform_dataset(n, 1, n as u64);
                let parts = partition_dataset(&dataset, shards, PartitionStrategy::Contiguous);
                assert!(
                    parts.iter().all(|p| !p.is_empty()),
                    "empty shard for n={n}, shards={shards}: sizes {:?}",
                    parts.iter().map(|p| p.len()).collect::<Vec<_>>()
                );
                assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), n);
                // Contiguity: each shard holds a consecutive id run.
                let flat: Vec<u64> = parts
                    .iter()
                    .flat_map(|p| p.records.iter().map(|r| r.id))
                    .collect();
                assert_eq!(
                    flat,
                    dataset.records.iter().map(|r| r.id).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn more_shards_than_records_panics() {
        let dataset = uniform_dataset(3, 1, 1);
        let _ = partition_dataset(&dataset, 4, PartitionStrategy::RoundRobin);
    }

    #[test]
    fn attested_map_verifies_and_rejects_tampering() {
        let dataset = uniform_dataset(10, 1, 5);
        let shards = partition_dataset(&dataset, 3, PartitionStrategy::RoundRobin);
        let keys: Vec<PublicKey> = (0..3)
            .map(|i| SignatureScheme::test_rsa(100 + i).public_key())
            .collect();
        let master = SignatureScheme::test_rsa(99);
        let addrs: Vec<Vec<std::net::SocketAddr>> = (0..3)
            .map(|i| {
                vec![
                    format!("127.0.0.1:{}", 4200 + 2 * i).parse().unwrap(),
                    format!("127.0.0.1:{}", 4201 + 2 * i).parse().unwrap(),
                ]
            })
            .collect();
        let signed = attest_shard_map(&shards, &keys, &master, 5, &addrs);
        assert_eq!(signed.map.shard_count, 3);
        assert_eq!(signed.map.total_records, 10);
        assert_eq!(signed.map.epoch, 5);
        assert_eq!(signed.map.shards[1].addrs.len(), 2);
        verify_shard_map(&signed, &master.public_key()).expect("honest map verifies");

        // A different master key must reject the map.
        let other = SignatureScheme::test_rsa(98);
        assert!(matches!(
            verify_shard_map(&signed, &other.public_key()),
            Err(ServiceError::ShardMap(_))
        ));

        // Dropping a shard from the map breaks the signature.
        let mut tampered = signed.clone();
        tampered.map.shards.pop();
        tampered.map.shard_count -= 1;
        assert!(matches!(
            verify_shard_map(&tampered, &master.public_key()),
            Err(ServiceError::ShardMap(_))
        ));

        // Inconsistent record totals are rejected even before the signature
        // check would catch them on re-encode.
        let mut inconsistent = signed.clone();
        inconsistent.map.total_records += 1;
        assert!(verify_shard_map(&inconsistent, &master.public_key()).is_err());
    }
}
