//! A concurrent networked query service over the VAQ1 wire protocol.
//!
//! The paper's system model is three-party: a data **owner** outsources a
//! function database to an untrusted **server**, and data **users** issue
//! analytic queries whose results they verify cryptographically. The other
//! crates implement that protocol in-process; this crate puts the real
//! network boundary in, std-only:
//!
//! * [`QueryService`] — binds a TCP listener and multiplexes every accepted
//!   connection onto one evented reactor thread (std-only: non-blocking
//!   sockets behind a paced O(n) readiness sweep, a per-connection
//!   read/write state machine instead of a thread stack), dispatching
//!   complete frames to a fixed worker pool (`std::thread` + `mpsc`) that
//!   shares one [`vaq_authquery::Server`] behind an `Arc`. Requests wrapped
//!   in [`vaq_wire::Request::Tagged`] pipeline concurrently on one
//!   connection and complete out of order (the correlation tag pairs each
//!   reply); untagged requests keep the classic strict in-order,
//!   one-in-flight contract. The service answers framed
//!   [`vaq_wire::Request`]s with framed [`vaq_wire::Response`]s, keeps a
//!   bounded LRU cache of encoded responses keyed by epoch-prefixed
//!   canonical query bytes, tracks counters + fixed-bucket latency
//!   histograms, deduplicates concurrent identical queries (single-flight),
//!   sheds over-limit connections with a typed
//!   [`vaq_wire::ErrorCode::Overloaded`] reply, answers mid-frame stalls
//!   with a typed [`vaq_wire::ErrorCode::Stalled`] reply, and shuts down
//!   gracefully via a flag plus a best-effort loopback wakeup over a
//!   polling accept loop.
//! * [`ServiceClient`] — a blocking connector whose
//!   [`ServiceClient::query_verified`] feeds remote responses straight into
//!   [`vaq_authquery::client::verify`], so a network round-trip carries the
//!   same soundness and completeness guarantees as a local call.
//! * [`LoadGenerator`] — a closed-loop driver running N client threads over
//!   seeded [`vaq_workload::QueryMix`] streams and reporting aggregate
//!   throughput and latency quantiles.
//! * [`ShardedDeployment`] / [`ShardedClient`] — the horizontal scale tier:
//!   the owner partitions one logical dataset into disjoint shards (each
//!   with its own authenticated structure and per-shard signing key, the
//!   partition attested by a master-signed shard map), and the client
//!   scatter-gathers every query across all shards, verifies each response
//!   under its shard's key, and merges the answers so the logical result is
//!   as sound and complete as a single server's.
//! * **Batches** — [`ServiceClient::batch`] answers many queries with one
//!   frame (arity-checked, typed errors for empty or mismatched batches);
//!   the service resolves each batch item through the same epoch-keyed
//!   cache entry and single-flight the equivalent single query uses; and
//!   [`ShardedClient::batch_verified`] scatters one epoch-pinned batch
//!   frame per shard, verifying and merging each sub-query exactly like a
//!   single sharded query — byte-identical to an unsharded batch.
//! * **Live updates** — every publication carries a monotonically
//!   increasing, master-signed epoch bound into every signature.
//!   [`QueryService::republish`] hot-swaps the served structure under an
//!   `Arc` (cache flushed, cache keys epoch-prefixed, rollback refused);
//!   clients pin queries to their verified epoch and converge through
//!   typed stale-epoch rejections plus a signed-map re-fetch
//!   ([`ShardedClient::refresh`]) that rejects replayed older maps.
//! * **Failover** — [`ShardedDeployment::launch_with_standbys`] binds
//!   standby replicas per shard (same data, same attested key; every
//!   serving address listed in the signed map), and [`ShardedClient`]
//!   retries a dead scatter leg against the attested standby addresses,
//!   preserving the byte-identical-to-unsharded merge guarantee.
//! * **Observability** — every request carries a [`Trace`] that times the
//!   hot-path stages (queue wait, decode, cache lookup, single-flight wait,
//!   query execution, VO build, encode, socket write) into per-stage
//!   histograms and per-kind attribution in [`Metrics`]; deep snapshots are
//!   scraped over the wire ([`ServiceClient::stats_deep`],
//!   [`ShardedClient::stats_deep_all`]), and a configurable slow-request
//!   log ([`SlowLogSink`]) emits structured JSON lines for requests over a
//!   latency threshold.
//!
//! # Quick example
//!
//! ```
//! use vaq_authquery::{IfmhTree, Query, Server, SigningMode};
//! use vaq_crypto::SignatureScheme;
//! use vaq_service::{QueryService, ServiceClient, ServiceConfig};
//! use vaq_workload::uniform_dataset;
//!
//! // Owner builds, server hosts.
//! let dataset = uniform_dataset(12, 1, 7);
//! let scheme = SignatureScheme::test_rsa(7);
//! let tree = IfmhTree::build(&dataset, SigningMode::OneSignature, &scheme);
//! let service = QueryService::bind(
//!     ServiceConfig::ephemeral(),
//!     Server::new(dataset.clone(), tree),
//! )
//! .unwrap();
//!
//! // A remote data user queries over TCP and verifies the response.
//! let mut client = ServiceClient::connect(service.local_addr()).unwrap();
//! let public_key = scheme.public_key();
//! let (response, verified) = client
//!     .query_verified(&Query::top_k(vec![0.6], 3), &dataset.template, &public_key)
//!     .unwrap();
//! assert_eq!(response.records.len(), 3);
//! assert_eq!(verified.scores.len(), 3);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.requests_served, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub(crate) mod conn;
pub mod error;
pub mod frame;
pub mod loadgen;
pub mod metrics;
pub mod partition;
pub mod pool;
pub(crate) mod reactor;
pub mod server;
pub mod shard;
pub mod sync;
pub mod trace;

pub use cache::LruCache;
pub use client::ServiceClient;
pub use config::{ServiceConfig, ShardRole, SlowLogSink};
pub use error::ServiceError;
pub use loadgen::{spec_to_query, LoadGenerator, LoadReport, LoadTarget};
pub use metrics::{CacheGauges, Histogram, Metrics, RequestKind, Stage};
pub use partition::{attest_shard_map, partition_dataset, verify_shard_map, PartitionStrategy};
pub use pool::WorkerPool;
pub use server::QueryService;
pub use shard::{
    ClientObservability, LegLatency, ShardedClient, ShardedDeployment, ShardedPublication,
    ShardedResponse,
};
pub use sync::{OrderedCondvar, OrderedGuard, OrderedMutex};
pub use trace::Trace;
