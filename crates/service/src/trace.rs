//! Request-scoped stage tracing for the server hot path.
//!
//! A [`Trace`] rides along with one request from worker pickup to socket
//! write and accumulates wall-clock time per [`Stage`]. Stages are timed as
//! disjoint sub-intervals of the request, so their sum is always bounded by
//! the whole-request time — which is what lets the per-kind stage
//! attribution in deep stats be read as "where did the latency go".
//!
//! Tracing is always on: a trace is a fixed-size stack value and each stage
//! costs two `Instant::now()` calls, which is noise next to a signature
//! verification. The slow-request log ([`Trace::slow_log_line`]) is the
//! only conditional part, gated by
//! [`ServiceConfig::slow_request_micros`](crate::ServiceConfig).

use crate::metrics::{RequestKind, Stage, STAGES};
use std::time::{Duration, Instant};

/// Wall-clock stage recorder for one request.
#[derive(Clone, Debug)]
pub struct Trace {
    started: Instant,
    stages: [Duration; STAGES],
    kind: Option<RequestKind>,
}

impl Trace {
    /// Starts a trace for a request whose payload has just been read.
    ///
    /// `queue_wait` is time already spent before the worker picked the
    /// connection up (accept-to-pickup); it is folded into the total.
    pub fn begin(queue_wait: Duration) -> Self {
        let mut stages = [Duration::ZERO; STAGES];
        stages[Stage::QueueWait.index()] = queue_wait;
        Trace {
            started: Instant::now(),
            stages,
            kind: None,
        }
    }

    /// Times `f` and charges its wall-clock duration to `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.stages[stage.index()] += start.elapsed();
        out
    }

    /// Charges an externally measured duration to `stage`.
    pub fn add(&mut self, stage: Stage, duration: Duration) {
        self.stages[stage.index()] += duration;
    }

    /// Tags the trace with the request kind it turned out to be. Only set
    /// for successfully answered query-shaped requests; error replies and
    /// non-query requests stay untagged and feed only the global per-stage
    /// histograms.
    pub fn set_kind(&mut self, kind: RequestKind) {
        self.kind = Some(kind);
    }

    /// The kind this trace was tagged with, if any.
    pub fn kind(&self) -> Option<RequestKind> {
        self.kind
    }

    /// Whole-request wall-clock so far: queue wait plus time since the
    /// payload was read.
    pub fn total(&self) -> Duration {
        self.stages[Stage::QueueWait.index()] + self.started.elapsed()
    }

    /// Per-stage micros, indexed by [`Stage::index`]. Each stage truncates
    /// independently, so the array sums to at most [`Trace::total`] in
    /// micros.
    pub fn stage_micros(&self) -> [u64; STAGES] {
        let mut out = [0u64; STAGES];
        for stage in Stage::ALL {
            out[stage.index()] =
                self.stages[stage.index()].as_micros().min(u64::MAX as u128) as u64;
        }
        out
    }

    /// One structured JSON line describing this request, for the
    /// slow-request log.
    pub fn slow_log_line(&self, epoch: u64, total: Duration) -> String {
        let micros = self.stage_micros();
        let mut line = String::with_capacity(256);
        line.push_str("{\"event\":\"slow_request\",\"epoch\":");
        line.push_str(&epoch.to_string());
        line.push_str(",\"kind\":");
        match self.kind {
            Some(kind) => {
                line.push('"');
                line.push_str(kind.label());
                line.push('"');
            }
            None => line.push_str("null"),
        }
        line.push_str(",\"total_micros\":");
        line.push_str(&(total.as_micros().min(u64::MAX as u128) as u64).to_string());
        line.push_str(",\"stages\":{");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            line.push_str(stage.label());
            line.push_str("\":");
            line.push_str(&micros[stage.index()].to_string());
        }
        line.push_str("}}");
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn stage_sums_stay_within_total() {
        let mut trace = Trace::begin(Duration::from_micros(120));
        trace.time(Stage::Decode, || thread::sleep(Duration::from_millis(2)));
        trace.time(Stage::Execute, || thread::sleep(Duration::from_millis(3)));
        trace.add(Stage::Write, Duration::from_micros(40));
        // `add` charges time that did elapse inside the request window in
        // the real server; emulate that window here.
        thread::sleep(Duration::from_micros(50));
        let total = trace.total();
        let micros = trace.stage_micros();
        let stage_sum: u64 = micros.iter().sum();
        assert!(micros[Stage::Decode.index()] >= 2_000);
        assert!(micros[Stage::Execute.index()] >= 3_000);
        assert_eq!(micros[Stage::QueueWait.index()], 120);
        assert!(
            u128::from(stage_sum) <= total.as_micros(),
            "stage sum {stage_sum} exceeds total {}",
            total.as_micros()
        );
    }

    #[test]
    fn slow_log_line_is_structured() {
        let mut trace = Trace::begin(Duration::from_micros(7));
        trace.set_kind(RequestKind::TopK);
        trace.add(Stage::Execute, Duration::from_micros(900));
        let line = trace.slow_log_line(42, Duration::from_micros(1_000));
        assert!(line.starts_with("{\"event\":\"slow_request\""));
        assert!(line.contains("\"epoch\":42"));
        assert!(line.contains("\"kind\":\"topk\""));
        assert!(line.contains("\"total_micros\":1000"));
        assert!(line.contains("\"queue_wait\":7"));
        assert!(line.contains("\"execute\":900"));

        let untagged = Trace::begin(Duration::ZERO).slow_log_line(1, Duration::ZERO);
        assert!(untagged.contains("\"kind\":null"));
    }
}
