//! Error type shared by the service client and server.

use vaq_authquery::VerifyError;
use vaq_wire::{ErrorReply, WireError};

/// Why a service operation failed.
#[derive(Debug)]
pub enum ServiceError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// A frame or message could not be encoded/decoded.
    Wire(WireError),
    /// The peer sent a frame larger than the configured limit.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// The server answered with a typed error reply.
    Remote(ErrorReply),
    /// The server answered with a response of the wrong kind.
    UnexpectedResponse(&'static str),
    /// A remote response failed client-side cryptographic verification.
    Verification(VerifyError),
    /// The shard map (or a shard's handshake against it) failed validation:
    /// bad master signature, wrong shard count, or a shard reporting an
    /// identity that contradicts the attested map.
    ShardMap(String),
    /// One shard of a scatter-gather query failed — connection down, remote
    /// error reply, or a per-shard verification failure. A sharded query
    /// never silently drops a shard's contribution: the whole query fails
    /// with this typed error instead.
    ShardFailed {
        /// Which shard failed.
        shard_id: u32,
        /// What went wrong on that shard.
        error: Box<ServiceError>,
    },
    /// A batch response whose item count disagrees with the request's query
    /// count. Silently zipping the two would misattribute responses to
    /// queries (and a short reply could drop answers unnoticed), so the
    /// mismatch is a typed protocol violation instead. The connection stays
    /// request/response aligned — exactly one frame answered the batch — so
    /// the client remains usable.
    BatchArity {
        /// Queries in the request.
        expected: usize,
        /// Responses in the reply.
        got: usize,
    },
    /// An epoch mismatch the client detected locally: a response stamped
    /// with a different publication epoch than the verified map promises, or
    /// an offered signed map that would roll the client back to an older
    /// (superseded) publication. Server-side epoch rejections arrive as
    /// [`ServiceError::Remote`] with [`vaq_wire::ErrorCode::StaleEpoch`];
    /// use [`ServiceError::is_stale_epoch`] to catch both.
    StaleEpoch {
        /// The epoch the client expects (from its verified publication).
        expected: u64,
        /// The epoch actually offered or served.
        got: u64,
    },
    /// The peer stopped sending mid-frame for longer than the patience
    /// window. The stream offset is stuck inside a frame, so the connection
    /// is unusable; reconnect to recover. The server-side twin is a typed
    /// [`vaq_wire::ErrorCode::Stalled`] reply.
    Stalled {
        /// How long the reader waited without a byte of progress.
        patience: std::time::Duration,
    },
    /// A tagged response arrived carrying a tag with no matching in-flight
    /// request. Pairing it with any pending request would misattribute the
    /// answer, so the connection is desynced instead.
    UnknownTag {
        /// The tag the server echoed.
        tag: u64,
    },
    /// A correlation tag was used twice: either a caller asked to put a tag
    /// in flight while a request with the same tag is still pending, or the
    /// server delivered a second response for a tag already consumed.
    DuplicateTag {
        /// The offending tag.
        tag: u64,
    },
}

impl ServiceError {
    /// True when this error (or the per-shard error it wraps) reports an
    /// epoch mismatch — locally detected or served as a typed remote
    /// [`vaq_wire::ErrorCode::StaleEpoch`] reply. Callers react by
    /// re-fetching the signed shard map and retrying at the new epoch.
    pub fn is_stale_epoch(&self) -> bool {
        match self {
            ServiceError::StaleEpoch { .. } => true,
            ServiceError::Remote(reply) => reply.code == vaq_wire::ErrorCode::StaleEpoch,
            ServiceError::ShardFailed { error, .. } => error.is_stale_epoch(),
            _ => false,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "socket error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
            ServiceError::FrameTooLarge { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            ServiceError::Remote(reply) => {
                write!(f, "server error ({:?}): {}", reply.code, reply.message)
            }
            ServiceError::UnexpectedResponse(kind) => {
                write!(f, "unexpected response kind: {kind}")
            }
            ServiceError::Verification(e) => write!(f, "verification failed: {e}"),
            ServiceError::ShardMap(reason) => write!(f, "shard map rejected: {reason}"),
            ServiceError::ShardFailed { shard_id, error } => {
                write!(f, "shard {shard_id} failed: {error}")
            }
            ServiceError::BatchArity { expected, got } => {
                write!(
                    f,
                    "batch response holds {got} answers for {expected} queries"
                )
            }
            ServiceError::StaleEpoch { expected, got } => {
                write!(
                    f,
                    "stale epoch: expected publication epoch {expected}, got {got}; \
                     re-fetch the signed shard map"
                )
            }
            ServiceError::Stalled { patience } => {
                write!(f, "peer stalled mid-frame for over {patience:?}; reconnect")
            }
            ServiceError::UnknownTag { tag } => {
                write!(f, "response carries unknown correlation tag {tag}")
            }
            ServiceError::DuplicateTag { tag } => {
                write!(f, "correlation tag {tag} is already in flight")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<VerifyError> for ServiceError {
    fn from(e: VerifyError) -> Self {
        ServiceError::Verification(e)
    }
}
