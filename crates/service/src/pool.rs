//! A fixed-size worker thread pool fed by an `mpsc` channel.
//!
//! std-only: a shared `Mutex<Receiver>` gives "multiple consumer" semantics
//! on top of the standard single-consumer channel. Workers exit when every
//! sender is dropped and the queue is drained, which is exactly the shape
//! graceful shutdown needs: drop the sender, then [`WorkerPool::join`].

use crate::sync::{rank, OrderedMutex};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A fixed set of worker threads applying one job function to queued items.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads running `job` on submitted items.
    ///
    /// Returns the pool and the sending half used to submit work. The queue
    /// is bounded at `2 * workers` pending items, so producers get
    /// backpressure (`send` blocks, `try_send` errors) instead of an
    /// unbounded buffer. Workers stop once every clone of the sender is
    /// dropped and the queue is empty.
    ///
    /// Errors if the OS refuses to spawn a worker thread; already spawned
    /// workers wind down through the usual channel-disconnect path once the
    /// returned sender (never handed out on error) is dropped.
    pub fn spawn<T, F>(workers: usize, job: F) -> std::io::Result<(WorkerPool, SyncSender<T>)>
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let (sender, receiver): (SyncSender<T>, Receiver<T>) = sync_channel(workers.max(1) * 2);
        let receiver = Arc::new(OrderedMutex::new(rank::RECEIVER, "receiver", receiver));
        let job = Arc::new(job);
        let handles = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let job = Arc::clone(&job);
                std::thread::Builder::new()
                    .name(format!("vaq-service-worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to pop one item, then release it
                        // before running the job so workers serve in parallel.
                        let item = receiver.lock().recv();
                        match item {
                            Ok(item) => job(item),
                            Err(_) => break,
                        }
                    })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok((WorkerPool { handles }, sender))
    }

    /// Number of worker threads.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True when the pool has no workers (never the case for spawned pools).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to exit. Callers must drop all senders first,
    /// or this blocks forever.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn all_submitted_items_are_processed() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let (pool, sender) = WorkerPool::spawn(4, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        })
        .expect("spawning the pool");
        assert_eq!(pool.len(), 4);
        for i in 0..100 {
            sender.send(i).unwrap();
        }
        drop(sender);
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn worker_count_clamps_to_one() {
        let (pool, sender) = WorkerPool::spawn(0, |_: u8| {}).expect("spawning the pool");
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        drop(sender);
        pool.join();
    }

    #[test]
    fn items_run_concurrently_across_workers() {
        // Two items that each wait for the other prove two workers run at
        // once; with a single worker this would deadlock (bounded by a
        // timeout channel instead of hanging the suite).
        use std::sync::mpsc::channel;
        let (a_tx, a_rx) = channel::<()>();
        let (b_tx, b_rx) = channel::<()>();
        let rendezvous = Arc::new(Mutex::new(Some((a_tx, b_rx))));
        let other = Arc::new(Mutex::new(Some((b_tx, a_rx))));
        let (pool, sender) = WorkerPool::spawn(2, move |which: u8| {
            let slot = if which == 0 { &rendezvous } else { &other };
            let (tx, rx) = slot.lock().unwrap().take().expect("one item per side");
            tx.send(()).unwrap();
            rx.recv_timeout(std::time::Duration::from_secs(5))
                .expect("the other worker must be running concurrently");
        })
        .expect("spawning the pool");
        sender.send(0).unwrap();
        sender.send(1).unwrap();
        drop(sender);
        pool.join();
    }
}
