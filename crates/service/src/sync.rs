//! Rank-ordered locking: the runtime complement of `vaq-lint`'s static
//! lock-order pass.
//!
//! Every mutex and condvar in `vaq-service` carries a **rank** from the
//! checked-in manifest `crates/lint/lock_ranks.toml`. A thread may only
//! acquire locks in strictly increasing rank order, which makes the
//! whole-program lock graph acyclic by construction — the property whose
//! absence produced the PR 2 shutdown deadlock. `vaq-lint` proves the rule
//! about the source statically; [`OrderedMutex`] asserts it dynamically on
//! every `debug_assertions` run, so a nesting the lint's heuristics cannot
//! see (e.g. one threaded through callbacks) still dies loudly in tests
//! with a rank diagnostic instead of hanging.
//!
//! In release builds the rank bookkeeping compiles away entirely:
//! [`OrderedMutex::lock`] is a plain `Mutex::lock` plus a poison check.
//!
//! The `rank` constants below are the single source of truth in code; a
//! test asserts they match `lock_ranks.toml` so the manifest the lint reads
//! and the ranks the runtime asserts can never drift apart.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock ranks for every lock in `vaq-service`, mirroring
/// `crates/lint/lock_ranks.toml` (a unit test asserts the two agree).
///
/// Lower ranks are acquired first. Gaps of 10 leave room to slot new locks
/// between existing ones without renumbering.
pub mod rank {
    /// Worker-pool receiver: held only while popping one queued item.
    pub const RECEIVER: u32 = 10;
    /// The currently serving prover/server snapshot.
    pub const SERVING: u32 = 20;
    /// The signed shard map republished to shard-map requests.
    pub const SHARD_MAP: u32 = 30;
    /// The response cache.
    pub const CACHE: u32 = 40;
    /// The single-flight slot table.
    pub const SLOTS: u32 = 50;
    /// A single-flight slot's result cell (and its `done` condvar).
    pub const RESULT: u32 = 60;
    /// The in-memory slow-log capture buffer.
    pub const BUFFER: u32 = 70;

    /// Not a lock: the highest rank the reactor thread may acquire. Locks
    /// above this ceiling are worker-side and may be held across request
    /// execution — taking one on the reactor thread would let a single
    /// request stall every connection at once. Enforced statically by the
    /// `vaq-lint` reactor-discipline pass (via the `reactor_safe_ceiling`
    /// manifest entry) and at runtime by the sweep stall watchdog.
    pub const REACTOR_SAFE_CEILING: u32 = SERVING;
}

#[cfg(debug_assertions)]
mod held {
    //! Per-thread stack of currently held ranked locks.

    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: u32, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                // lint:allow(panic-path, debug-only lock-order assertion; aborting the test run IS the feature)
                assert!(
                    rank > top_rank,
                    "lock-order violation: acquiring '{name}' (rank {rank}) while holding \
                     '{top_name}' (rank {top_rank}); ranks must strictly increase \
                     (see crates/lint/lock_ranks.toml)"
                );
            }
            held.push((rank, name));
        });
    }

    pub(super) fn release(rank: u32, name: &'static str) {
        HELD.with(|held| {
            let popped = held.borrow_mut().pop();
            // Ranks strictly increase inward, so guards drop innermost-first
            // and the popped entry must be the one being released. Skip the
            // check while unwinding: a poisoned-lock panic already owns the
            // thread and a double panic would abort without a message.
            if !std::thread::panicking() {
                // lint:allow(panic-path, debug-only lock-order assertion; aborting the test run IS the feature)
                assert_eq!(
                    popped,
                    Some((rank, name)),
                    "lock-order tracking desync releasing '{name}' (rank {rank})"
                );
            }
        });
    }
}

/// A [`Mutex`] that participates in the workspace lock-rank order.
///
/// Under `debug_assertions`, [`lock`](Self::lock) panics if the calling
/// thread already holds a lock of equal or higher rank; in release builds
/// the check compiles away. Poisoned locks panic in both profiles: a peer
/// thread died mid-update, and serving with a possibly torn invariant is
/// worse than dying loudly.
pub struct OrderedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex with the given rank and diagnostic name.
    ///
    /// `rank` should be one of the [`rank`] constants and `name` the
    /// matching `lock_ranks.toml` key; `vaq-lint` checks declaration sites.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, asserting rank order in debug builds.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        // Register before blocking: if this acquisition is mis-ordered we
        // want the rank panic, not a silent deadlock while waiting.
        #[cfg(debug_assertions)]
        held::acquire(self.rank, self.name);
        let inner = self.inner.lock();
        #[cfg(debug_assertions)]
        if inner.is_err() {
            held::release(self.rank, self.name);
        }
        // lint:allow(panic-path, a poisoned lock means a peer worker already panicked mid-update; propagating beats serving torn state)
        let inner = inner.unwrap_or_else(|_| panic!("lock '{}' is poisoned", self.name));
        OrderedGuard {
            lock: self,
            inner: Some(inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for an [`OrderedMutex`]; unlocks (and pops the rank stack) on
/// drop.
pub struct OrderedGuard<'a, T> {
    lock: &'a OrderedMutex<T>,
    // `Some` from construction until `Drop` or `OrderedCondvar::wait`
    // consumes the guard; `Option` only so those two places can move the
    // std guard out without `unsafe`.
    inner: Option<MutexGuard<'a, T>>,
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // lint:allow(panic-path, guard invariant - inner is Some until drop/wait consumes the guard by value)
        self.inner.as_ref().expect("guard already consumed")
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // lint:allow(panic-path, guard invariant - inner is Some until drop/wait consumes the guard by value)
        self.inner.as_mut().expect("guard already consumed")
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            #[cfg(debug_assertions)]
            held::release(self.lock.rank, self.lock.name);
            #[cfg(not(debug_assertions))]
            let _ = &self.lock;
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedGuard")
            .field("name", &self.lock.name)
            .field("value", &**self)
            .finish()
    }
}

/// A [`Condvar`] paired with an [`OrderedMutex`].
///
/// Waiting releases the mutex and re-acquires it on wake, so the rank stack
/// is popped for the duration of the wait. The wait-site rule checked by
/// `vaq-lint` (the condvar's mutex must be the highest-ranked lock held) is
/// a consequence of the guard model: the guard being waited on must top the
/// thread's rank stack, which [`held::release`] asserts in debug builds.
#[derive(Debug, Default)]
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// Creates a new condvar.
    pub fn new() -> Self {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Releases `guard`, blocks until notified, and re-acquires the lock.
    pub fn wait<'a, T>(&self, mut guard: OrderedGuard<'a, T>) -> OrderedGuard<'a, T> {
        let lock = guard.lock;
        // lint:allow(panic-path, guard invariant - inner is Some until drop/wait consumes the guard by value)
        let inner = guard.inner.take().expect("guard already consumed");
        #[cfg(debug_assertions)]
        held::release(lock.rank, lock.name);
        drop(guard);
        let inner = self.inner.wait(inner);
        #[cfg(debug_assertions)]
        held::acquire(lock.rank, lock.name);
        #[cfg(debug_assertions)]
        if inner.is_err() {
            held::release(lock.rank, lock.name);
        }
        // lint:allow(panic-path, a poisoned lock means a peer worker already panicked mid-update; propagating beats serving torn state)
        let inner = inner.unwrap_or_else(|_| panic!("lock '{}' is poisoned", lock.name));
        OrderedGuard {
            lock,
            inner: Some(inner),
        }
    }

    /// Wakes every thread blocked in [`wait`](Self::wait).
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pass_through_semantics() {
        let lock = OrderedMutex::new(rank::CACHE, "cache", 41u32);
        {
            let mut guard = lock.lock();
            assert_eq!(*guard, 41);
            *guard += 1;
        }
        assert_eq!(*lock.lock(), 42);
        assert!(format!("{lock:?}").contains("cache"));
    }

    #[test]
    fn ascending_nesting_is_permitted() {
        let low = OrderedMutex::new(rank::SERVING, "serving", 1u32);
        let high = OrderedMutex::new(rank::CACHE, "cache", 2u32);
        let a = low.lock();
        let b = high.lock();
        assert_eq!(*a + *b, 3);
        // Drop order does not matter for correctness, only acquire order;
        // out-of-order drops are rejected by the tracking, so release
        // innermost-first here.
        drop(b);
        drop(a);
        // Re-acquiring after release works (the stack is empty again).
        let _ = high.lock();
    }

    #[test]
    fn condvar_roundtrip_wakes_waiter() {
        let lock = Arc::new(OrderedMutex::new(rank::RESULT, "result", false));
        let done = Arc::new(OrderedCondvar::new());
        let waiter = {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut guard = lock.lock();
                while !*guard {
                    guard = done.wait(guard);
                }
                *guard
            })
        };
        // Let the waiter park, then flip the flag and wake it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        *lock.lock() = true;
        done.notify_all();
        assert!(waiter.join().expect("waiter thread panicked"));
    }

    #[cfg(debug_assertions)]
    mod rank_violations {
        use super::*;

        fn panic_message(result: std::thread::Result<()>) -> String {
            let payload = result.expect_err("nesting should have panicked");
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        }

        #[test]
        fn descending_nesting_panics_with_rank_diagnostic() {
            let message = panic_message(
                std::thread::spawn(|| {
                    let high = OrderedMutex::new(rank::CACHE, "cache", ());
                    let low = OrderedMutex::new(rank::SERVING, "serving", ());
                    let _outer = high.lock();
                    let _inner = low.lock();
                })
                .join(),
            );
            assert!(
                message.contains("lock-order violation"),
                "unexpected panic message: {message}"
            );
            assert!(message.contains("'serving' (rank 20)"), "{message}");
            assert!(message.contains("'cache' (rank 40)"), "{message}");
        }

        #[test]
        fn equal_rank_reentry_panics() {
            let message = panic_message(
                std::thread::spawn(|| {
                    let a = OrderedMutex::new(rank::RESULT, "result", ());
                    let b = OrderedMutex::new(rank::RESULT, "result", ());
                    let _outer = a.lock();
                    let _inner = b.lock();
                })
                .join(),
            );
            assert!(message.contains("lock-order violation"), "{message}");
        }

        /// The PR 2 shutdown deadlock, replayed through ranked locks.
        ///
        /// The original bug: shutdown held the serving snapshot lock and
        /// then reached for a lock the accept path acquires first (the
        /// flight table), while a worker held the flight table and wanted
        /// the serving snapshot — a classic AB/BA hang that froze the suite
        /// until a timeout. Under ranked locks the very first mis-ordered
        /// acquisition (slots → serving, rank 50 → 20) aborts immediately
        /// with a diagnostic naming both locks and ranks, in a single
        /// thread, with no second thread needed to exhibit the hang.
        #[test]
        fn pr2_shutdown_shaped_nesting_aborts_with_diagnostic() {
            let message = panic_message(
                std::thread::spawn(|| {
                    let slots = OrderedMutex::new(rank::SLOTS, "slots", ());
                    let serving = OrderedMutex::new(rank::SERVING, "serving", ());
                    // Shutdown-shaped order: flight-table first, snapshot
                    // second. The accept path orders them the other way.
                    let _flight = slots.lock();
                    let _snapshot = serving.lock();
                })
                .join(),
            );
            assert!(message.contains("lock-order violation"), "{message}");
            assert!(message.contains("'serving' (rank 20)"), "{message}");
            assert!(message.contains("'slots' (rank 50)"), "{message}");
        }

        #[test]
        fn rank_stack_resets_after_violation_panic() {
            // A violation panics before pushing, so the same thread can
            // keep using correctly-ordered locks afterwards.
            let low = OrderedMutex::new(rank::SERVING, "serving", ());
            let high = OrderedMutex::new(rank::CACHE, "cache", ());
            {
                let _outer = high.lock();
                let inner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = low.lock();
                }));
                assert!(inner.is_err(), "descending acquisition must panic");
            }
            // Fresh locks, correct order: must succeed on this same thread.
            let _a = low.lock();
            let _b = high.lock();
        }
    }
}
