//! Blocking client for the VAQ1 query service.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use vaq_authquery::{client, Query, QueryResponse, VerifiedResult, VerifyScratch};
use vaq_crypto::Verifier;
use vaq_funcdb::FunctionTemplate;
use vaq_wire::{ErrorCode, Request, Response, ShardInfo, SignedShardMap, StatsDeep, StatsSnapshot};

use crate::error::ServiceError;
use crate::frame::{read_message, write_message};

/// Default frame-size limit accepted by a client.
const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// A blocking connection to a [`crate::QueryService`].
///
/// One connection carries any number of requests, answered in order. The
/// verification entry point [`ServiceClient::query_verified`] feeds the
/// remote response straight into [`vaq_authquery::client::verify`], so a
/// network round-trip gives the same soundness/completeness guarantees as a
/// local call — the service is untrusted, exactly like the paper's server.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    max_frame_bytes: usize,
    /// Set once a response read fails (timeout or I/O error): the stream may
    /// still carry the late response, so pairing a new request with the next
    /// frame would silently return the wrong response. Desynced connections
    /// refuse further calls; reconnect instead.
    desynced: bool,
    /// Next correlation tag handed out by [`ServiceClient::send_tagged`].
    next_tag: u64,
    /// Tags sent but not yet received. A tagged response must carry one of
    /// these, or the server is answering a request this client never made.
    pending_tags: HashSet<u64>,
    /// Responses that arrived while waiting for a *different* tag, parked
    /// until their own [`ServiceClient::receive_tagged`] asks for them.
    parked: HashMap<u64, Response>,
    /// Reusable verification scratch: repeated `query_verified` calls on one
    /// connection share the leaf-digest buffer instead of reallocating it.
    verify_scratch: VerifyScratch,
}

impl ServiceClient {
    fn over(stream: TcpStream) -> ServiceClient {
        ServiceClient {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            desynced: false,
            next_tag: 0,
            pending_tags: HashSet::new(),
            parked: HashMap::new(),
            verify_scratch: VerifyScratch::default(),
        }
    }

    /// Connects to a service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient::over(stream))
    }

    /// Connects with a timeout on the TCP handshake.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient::over(stream))
    }

    /// Sets a read timeout for responses.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServiceError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Round-trips a liveness probe, returning its latency.
    pub fn ping(&mut self) -> Result<Duration, ServiceError> {
        let start = Instant::now();
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(start.elapsed()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServiceError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the service's deep-telemetry snapshot: the flat counters
    /// plus per-stage latency histograms and per-kind stage attribution.
    pub fn stats_deep(&mut self) -> Result<StatsDeep, ServiceError> {
        match self.call(&Request::StatsDeep)? {
            Response::StatsDeep(deep) => Ok(deep),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one query and returns the raw (unverified) response.
    pub fn query(&mut self, query: &Query) -> Result<QueryResponse, ServiceError> {
        self.query_with_epoch(query).map(|(_, response)| response)
    }

    /// Sends one query and returns the raw (unverified) response together
    /// with the publication epoch the service served it at.
    ///
    /// The envelope stamp is unauthenticated; verify the response with
    /// [`vaq_authquery::verify_at_epoch`] at the epoch the owner's attested
    /// publication promises — the signatures bind it.
    pub fn query_with_epoch(
        &mut self,
        query: &Query,
    ) -> Result<(u64, QueryResponse), ServiceError> {
        match self.call(&Request::Query(query.clone()))? {
            Response::Query { epoch, response } => Ok((epoch, response)),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one query pinned to a publication epoch.
    ///
    /// The service answers only while it serves exactly `epoch`; otherwise
    /// it replies with a typed [`ErrorCode::StaleEpoch`] error (surfaced as
    /// [`ServiceError::Remote`] — check [`ServiceError::is_stale_epoch`]),
    /// which keeps the connection usable: re-fetch the signed shard map and
    /// retry at the new epoch.
    pub fn query_at(&mut self, epoch: u64, query: &Query) -> Result<QueryResponse, ServiceError> {
        match self.call(&Request::QueryAt {
            epoch,
            query: query.clone(),
        })? {
            Response::Query {
                epoch: served,
                response,
            } => {
                if served != epoch {
                    return Err(ServiceError::StaleEpoch {
                        expected: epoch,
                        got: served,
                    });
                }
                Ok(response)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one query and verifies the response against the owner's
    /// published template and public key before returning it.
    pub fn query_verified(
        &mut self,
        query: &Query,
        template: &FunctionTemplate,
        verifier: &dyn Verifier,
    ) -> Result<(QueryResponse, VerifiedResult), ServiceError> {
        let response = self.query(query)?;
        let verified = client::verify_at_epoch_with_scratch(
            query,
            &response.records,
            &response.vo,
            template,
            verifier,
            0,
            &mut self.verify_scratch,
        )?;
        Ok((response, verified))
    }

    /// Sends a batch of queries, answered in order.
    ///
    /// A reply whose answer count disagrees with the query count is rejected
    /// with a typed [`ServiceError::BatchArity`] error: zipping a short (or
    /// long) reply against the queries would silently misattribute answers.
    /// The connection stays usable — exactly one frame answered the batch.
    pub fn batch(&mut self, queries: &[Query]) -> Result<Vec<QueryResponse>, ServiceError> {
        self.batch_with_epoch(queries)
            .map(|(_, responses)| responses)
    }

    /// Sends a batch of queries and returns the responses together with the
    /// publication epoch the service served the whole batch at.
    ///
    /// The envelope stamp is unauthenticated; verify each response with
    /// [`vaq_authquery::verify_at_epoch`] at the epoch the owner's attested
    /// publication promises — the signatures bind it.
    pub fn batch_with_epoch(
        &mut self,
        queries: &[Query],
    ) -> Result<(u64, Vec<QueryResponse>), ServiceError> {
        match self.call(&Request::Batch(queries.to_vec()))? {
            Response::Batch { epoch, responses } => {
                check_batch_arity(queries.len(), &responses)?;
                Ok((epoch, responses))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a batch of queries pinned to a publication epoch, mirroring
    /// [`ServiceClient::query_at`].
    ///
    /// The service answers only while it serves exactly `epoch`; otherwise
    /// it replies with a typed [`ErrorCode::StaleEpoch`] error (surfaced as
    /// [`ServiceError::Remote`] — check [`ServiceError::is_stale_epoch`]),
    /// which keeps the connection usable: re-fetch the signed shard map and
    /// retry at the new epoch. Arity mismatches are rejected like
    /// [`ServiceClient::batch`].
    pub fn batch_at(
        &mut self,
        epoch: u64,
        queries: &[Query],
    ) -> Result<Vec<QueryResponse>, ServiceError> {
        match self.call(&Request::BatchAt {
            epoch,
            queries: queries.to_vec(),
        })? {
            Response::Batch {
                epoch: served,
                responses,
            } => {
                if served != epoch {
                    return Err(ServiceError::StaleEpoch {
                        expected: epoch,
                        got: served,
                    });
                }
                check_batch_arity(queries.len(), &responses)?;
                Ok(responses)
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Asks which shard of a sharded deployment the service hosts.
    ///
    /// A standalone service answers with a typed
    /// [`ErrorCode::NotSharded`] error.
    pub fn shard_info(&mut self) -> Result<ShardInfo, ServiceError> {
        match self.call(&Request::ShardInfo)? {
            Response::ShardInfo(info) => Ok(info),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the owner-signed shard map the service currently publishes.
    ///
    /// The returned map is untrusted until verified against the owner's
    /// master key (and checked for rollback against any epoch the caller
    /// already holds) — see [`crate::verify_shard_map`].
    pub fn shard_map(&mut self) -> Result<SignedShardMap, ServiceError> {
        match self.call(&Request::ShardMap)? {
            Response::ShardMap(map) => Ok(map),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one request frame without reading the response.
    ///
    /// Pair every `send` with exactly one [`ServiceClient::receive`]; the
    /// split exists so a scatter-gather front-end can put one request in
    /// flight on every shard connection before blocking on the first
    /// response. A failed write leaves the stream offset unknown, so it
    /// marks the connection desynced.
    pub fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        if self.desynced {
            return Err(desynced_error());
        }
        if let Err(e) = write_message(&mut self.stream, request) {
            self.desynced = true;
            return Err(e);
        }
        Ok(())
    }

    /// Reads one response frame for a previously [`ServiceClient::send`]-sent
    /// request, with the same desync bookkeeping as [`ServiceClient::call`].
    pub fn receive(&mut self) -> Result<Response, ServiceError> {
        if self.desynced {
            return Err(desynced_error());
        }
        match read_message::<Response>(&mut self.stream, self.max_frame_bytes) {
            Ok(Some(Response::Error(reply))) => {
                // The server closes the connection after a frame-level
                // FrameTooLarge/Malformed reply (the stream offset is
                // unknown) and after ShuttingDown, so pairing another
                // request with this socket would fail confusingly — or
                // worse, mis-pair a late frame. Refuse further calls and
                // make the caller reconnect. (A Malformed reply to a
                // well-framed-but-undecodable payload keeps the server-side
                // connection; this client never produces such payloads, and
                // desyncing is the safe conservative reading either way.)
                if is_fatal_reply(reply.code) {
                    self.desynced = true;
                }
                Err(ServiceError::Remote(reply))
            }
            Ok(Some(response)) => Ok(response),
            Ok(None) => {
                self.desynced = true;
                Err(ServiceError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "service closed the connection",
                )))
            }
            Err(e) => {
                self.desynced = true;
                Err(e)
            }
        }
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// After a failed response read (timeout or I/O error) — or a remote
    /// error reply after which the server closes the connection
    /// ([`ErrorCode::FrameTooLarge`], [`ErrorCode::Malformed`],
    /// [`ErrorCode::ShuttingDown`]) — the connection is marked desynced and
    /// every further call errors. Reconnect to recover.
    pub fn call(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.send(request)?;
        self.receive()
    }

    /// Sends one request wrapped in a tagged VAQ1 envelope and returns the
    /// correlation tag, without reading the response.
    ///
    /// Tagged requests pipeline: any number may be in flight on one
    /// connection, and the service may answer them **out of order** (tagged
    /// responses carry the tag back). Pair every `send_tagged` with exactly
    /// one [`ServiceClient::receive_tagged`] for the returned tag. `request`
    /// must not itself be a [`Request::Tagged`] envelope — the protocol
    /// rejects nesting. A failed write leaves the stream offset unknown, so
    /// it marks the connection desynced.
    pub fn send_tagged(&mut self, request: &Request) -> Result<u64, ServiceError> {
        if self.desynced {
            return Err(desynced_error());
        }
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        let envelope = Request::Tagged {
            tag,
            request: Box::new(request.clone()),
        };
        if let Err(e) = write_message(&mut self.stream, &envelope) {
            self.desynced = true;
            return Err(e);
        }
        self.pending_tags.insert(tag);
        Ok(tag)
    }

    /// Reads the response for one previously [`ServiceClient::send_tagged`]
    /// request, identified by its correlation tag.
    ///
    /// Responses for *other* in-flight tags that arrive first are parked and
    /// handed out when their own `receive_tagged` asks for them, so callers
    /// may collect tags in any order. Asking for a tag that was never sent
    /// (or already received) fails with [`ServiceError::UnknownTag`] without
    /// touching the stream. A response carrying a tag this client never sent
    /// desyncs the connection ([`ServiceError::UnknownTag`]), as does a
    /// second response for an already-parked tag
    /// ([`ServiceError::DuplicateTag`]) — both mean the correlation state no
    /// longer matches the peer's.
    pub fn receive_tagged(&mut self, tag: u64) -> Result<Response, ServiceError> {
        if self.desynced {
            return Err(desynced_error());
        }
        if !self.pending_tags.contains(&tag) {
            // Caller bug (bad tag), not a stream fault: the connection is
            // still perfectly paired, so don't desync it.
            return Err(ServiceError::UnknownTag { tag });
        }
        if let Some(parked) = self.parked.remove(&tag) {
            self.pending_tags.remove(&tag);
            return self.open_inner(parked);
        }
        loop {
            match read_message::<Response>(&mut self.stream, self.max_frame_bytes) {
                Ok(Some(Response::Tagged { tag: got, response })) => {
                    if got == tag {
                        self.pending_tags.remove(&tag);
                        return self.open_inner(*response);
                    }
                    if !self.pending_tags.contains(&got) {
                        // The server answered a request this client never
                        // made; every subsequent pairing is suspect.
                        self.desynced = true;
                        return Err(ServiceError::UnknownTag { tag: got });
                    }
                    if self.parked.insert(got, *response).is_some() {
                        self.desynced = true;
                        return Err(ServiceError::DuplicateTag { tag: got });
                    }
                }
                Ok(Some(Response::Error(reply))) => {
                    // An untagged error while tagged requests are in flight
                    // is frame-level (the server could not attribute it to a
                    // request): Malformed, FrameTooLarge, Stalled,
                    // Overloaded, ShuttingDown. The server closes after
                    // these, so the in-flight tags will never be answered.
                    if is_fatal_reply(reply.code) {
                        self.desynced = true;
                    }
                    return Err(ServiceError::Remote(reply));
                }
                Ok(Some(other)) => {
                    // An untagged success reply cannot belong to any tagged
                    // request — the pairing is broken.
                    self.desynced = true;
                    return Err(unexpected(&other));
                }
                Ok(None) => {
                    self.desynced = true;
                    return Err(ServiceError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "service closed the connection",
                    )));
                }
                Err(e) => {
                    self.desynced = true;
                    return Err(e);
                }
            }
        }
    }

    /// Unwraps the inner response of a tagged envelope, surfacing remote
    /// error replies exactly like [`ServiceClient::receive`] does.
    fn open_inner(&mut self, response: Response) -> Result<Response, ServiceError> {
        match response {
            Response::Error(reply) => {
                if is_fatal_reply(reply.code) {
                    self.desynced = true;
                }
                Err(ServiceError::Remote(reply))
            }
            Response::Tagged { .. } => {
                // The protocol rejects nested envelopes at decode, so a
                // nested tag here means the peer is not speaking VAQ1.
                self.desynced = true;
                Err(unexpected(&response))
            }
            other => Ok(other),
        }
    }
}

/// Remote error codes after which the server closes the connection (or the
/// stream offset is unknown), so pairing another request with this socket
/// would fail confusingly — or worse, mis-pair a late frame.
fn is_fatal_reply(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::FrameTooLarge
            | ErrorCode::Malformed
            | ErrorCode::ShuttingDown
            | ErrorCode::Overloaded
            | ErrorCode::Stalled
    )
}

/// Rejects a batch reply whose answer count disagrees with the query count
/// (shared with the sharded scatter-gather client).
pub(crate) fn check_batch_arity(
    expected: usize,
    responses: &[QueryResponse],
) -> Result<(), ServiceError> {
    if responses.len() != expected {
        return Err(ServiceError::BatchArity {
            expected,
            got: responses.len(),
        });
    }
    Ok(())
}

fn desynced_error() -> ServiceError {
    ServiceError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "connection desynced by an earlier failure; reconnect",
    ))
}

/// Maps a response of the wrong kind to a typed error (shared with the
/// sharded scatter-gather client).
pub(crate) fn unexpected(response: &Response) -> ServiceError {
    ServiceError::UnexpectedResponse(match response {
        Response::Pong => "pong",
        Response::Stats(_) => "stats",
        Response::Query { .. } => "query",
        Response::Batch { .. } => "batch",
        Response::ShardInfo(_) => "shard-info",
        Response::ShardMap(_) => "shard-map",
        Response::Error(_) => "error",
        Response::StatsDeep(_) => "stats-deep",
        Response::Tagged { .. } => "tagged",
    })
}
