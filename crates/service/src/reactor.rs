//! The evented reactor: one thread multiplexing every client connection.
//!
//! std-only, no `epoll`/`kqueue`: every socket is non-blocking and the
//! reactor sweeps them in an O(n) readiness scan, sleeping briefly on the
//! completion channel (so a finishing worker wakes it instantly) only when
//! a full sweep made no progress. Request execution stays on the worker
//! pool: the reactor turns complete frames into [`Job`]s, workers send
//! framed responses back as [`Completion`]s, and the reactor owns every
//! socket write — a connection never pins a thread.
//!
//! Dispatch policy per connection: untagged requests keep the classic
//! one-lane contract (answered strictly in order, at most one in flight);
//! tagged requests ([`vaq_wire::Request::Tagged`]) dispatch greedily and
//! complete out of order, which is what lets one connection pipeline many
//! concurrent requests.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vaq_wire::{ErrorCode, Request, Response, WireEncode};

use crate::conn::{Conn, PendingRequest, FRAME_HEADER_LEN};
use crate::error::ServiceError;
use crate::metrics::Metrics;
use crate::server::{error_response, finish_request, handle_request, Shared};
use crate::trace::Trace;

/// How long an idle sweep sleeps on the completion channel before
/// rescanning; a completion arriving ends the nap early.
const IDLE_NAP: Duration = Duration::from_micros(500);

/// Read-scan pacing: after each O(n) scan the reactor waits at least
/// `SCAN_PACE_FACTOR` times the scan's own duration before scanning again,
/// bounding the scan's CPU share to `1 / (1 + factor)`. Small fleets scan
/// in microseconds and are effectively unpaced; a 10k-connection fleet
/// degrades to a few milliseconds of added read latency instead of a
/// non-blocking-read syscall storm that starves the worker threads.
/// Finished responses never wait on the pace — completions flush their
/// connection's writes immediately.
const SCAN_PACE_FACTOR: u32 = 3;

/// Most buffered requests per connection before the reactor stops reading
/// it and lets TCP backpressure throttle the peer.
const MAX_CONN_BACKLOG: usize = 128;

/// How long graceful shutdown waits for in-flight requests to complete.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// How long graceful shutdown spends flushing final replies.
const FLUSH_DEADLINE: Duration = Duration::from_secs(1);

/// One received request headed for the worker pool.
pub(crate) struct Job {
    conn_id: u64,
    tag: Option<u64>,
    payload: Vec<u8>,
    queued: Instant,
    completions: Sender<Completion>,
}

/// A worker's finished response frame headed back to the reactor.
pub(crate) struct Completion {
    conn_id: u64,
    tag: Option<u64>,
    frame: Vec<u8>,
    trace: Trace,
}

/// Runs one job on a worker thread: decode, dispatch, encode — everything
/// but the socket write, which the reactor owns.
pub(crate) fn run_job(shared: &Shared, job: Job) {
    let mut trace = Trace::begin(job.queued.elapsed());
    let frame = handle_request(shared, &job.payload, &mut trace);
    let frame = match job.tag {
        // Re-wrap without decoding: the result is byte-identical to
        // encoding `Response::Tagged` directly, so cached frames stay
        // shared between tagged and untagged callers.
        Some(tag) => {
            Response::tagged_frame_from_payload(tag, frame.get(FRAME_HEADER_LEN..).unwrap_or(&[]))
        }
        None => frame,
    };
    let _ = job.completions.send(Completion {
        conn_id: job.conn_id,
        tag: job.tag,
        frame,
        trace,
    });
}

/// The reactor entry point, run on its own thread until shutdown.
pub(crate) fn run(
    shared: Arc<Shared>,
    registrations: Receiver<TcpStream>,
    jobs: SyncSender<Job>,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    conn_count: Arc<AtomicUsize>,
) {
    let mut reactor = Reactor {
        shared,
        jobs,
        completions_tx,
        conn_count,
        conns: HashMap::new(),
        next_id: 0,
        dispatch_backlog: VecDeque::new(),
    };
    let mut next_scan = Instant::now();
    let mut flush: Vec<u64> = Vec::new();
    loop {
        let mut busy = false;
        while let Ok(stream) = registrations.try_recv() {
            reactor.register(stream);
            busy = true;
        }
        while let Ok(completion) = completions_rx.try_recv() {
            flush.push(completion.conn_id);
            reactor.complete(completion);
            busy = true;
        }
        // Completed responses leave the process now, not at the next paced
        // scan — and the freed untagged lane dispatches its next request.
        busy |= reactor.flush_completed(&mut flush);
        if Instant::now() >= next_scan {
            let started = Instant::now();
            busy |= reactor.sweep();
            let took = started.elapsed();
            // The stall watchdog: every sweep feeds the duration histogram,
            // and a sweep past the configured threshold counts as a stall —
            // the runtime cross-check of the static reactor-discipline pass.
            reactor
                .shared
                .metrics
                .observe_sweep(took, reactor.shared.config.reactor_stall_micros);
            next_scan = Instant::now() + took * SCAN_PACE_FACTOR;
        }
        if reactor.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if !busy {
            // The reactor itself holds a completion sender, so this can
            // only wake on a worker's completion or time out.
            if let Ok(completion) = completions_rx.recv_timeout(IDLE_NAP) {
                flush.push(completion.conn_id);
                reactor.complete(completion);
            }
        }
    }
    reactor.drain(&completions_rx);
    // Dropping the reactor drops the only job sender; the workers drain the
    // queue and exit, and `QueryService::shutdown` joins them.
}

struct Reactor {
    shared: Arc<Shared>,
    jobs: SyncSender<Job>,
    completions_tx: Sender<Completion>,
    conn_count: Arc<AtomicUsize>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    /// Connections holding requests that could not be handed to the worker
    /// pool (the bounded job queue was full). Each completion frees a queue
    /// slot, and the backlog refills it in FIFO order instead of leaving
    /// blocked connections waiting for the next paced scan.
    dispatch_backlog: VecDeque<u64>,
}

impl Reactor {
    /// Adopts a connection the accept thread handed over (already
    /// non-blocking, nodelay set, counted in `conn_count`).
    fn register(&mut self, stream: TcpStream) {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.conns.insert(id, Conn::new(stream));
    }

    /// Routes one finished response frame onto its connection's write
    /// queue, enforcing the per-connection write-queue byte budget. A
    /// connection that died (or was shed) while the request was in flight
    /// just drops the frame — there is nowhere left to write it; one whose
    /// queued bytes would exceed the budget is shed as a slow reader.
    fn complete(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.conn_id) else {
            return;
        };
        match completion.tag {
            Some(tag) => {
                conn.tags_in_flight.remove(&tag);
            }
            None => conn.untagged_in_flight = false,
        }
        if conn.shed {
            return;
        }
        let budget = self.shared.config.write_queue_budget_bytes;
        if !conn.enqueue(completion.frame, Some(completion.trace), false, budget) {
            shed_slow_reader(&self.shared, conn);
        }
    }

    /// One readiness pass over every connection: reads, dispatch, timers,
    /// writes, closes. Returns whether any progress happened.
    fn sweep(&mut self) -> bool {
        let mut busy = false;
        let mut dead = Vec::new();
        let max_frame = self.shared.config.max_frame_bytes;
        let patience = self.shared.config.mid_frame_patience;
        let idle_budget = self.shared.config.read_timeout;
        for (&id, conn) in self.conns.iter_mut() {
            let mut consumed = 0u64;
            let pass = conn.pump_reads(max_frame, MAX_CONN_BACKLOG, &mut consumed);
            if consumed > 0 {
                Metrics::add(&self.shared.metrics.bytes_in, consumed);
                busy = true;
            }
            for payload in pass.frames {
                queue_request(conn, payload);
            }
            if let Some(error) = pass.error {
                if conn.shed {
                    // The goodbye can no longer be delivered cleanly;
                    // nothing else on a shed connection is worth saving.
                    conn.abort();
                } else {
                    frame_error(&self.shared, conn, error);
                }
            }
            // A stalled peer: the stream offset is stuck inside a frame and
            // no byte has arrived for a whole patience window. (A shed
            // connection's leftovers are covered by its own backstops.)
            if !conn.shed
                && !conn.reads_done
                && conn.mid_frame()
                && conn.last_progress.elapsed() >= patience
            {
                frame_error(&self.shared, conn, ServiceError::Stalled { patience });
            }
            busy |= dispatch(&self.shared, &self.jobs, &self.completions_tx, id, conn);
            if conn.wants_dispatch() && !conn.in_backlog {
                // The job queue was full; remember the connection so the
                // next completion refills the freed slot from here.
                conn.in_backlog = true;
                self.dispatch_backlog.push_back(id);
            }
            let wrote = conn.pump_writes();
            if wrote.bytes > 0 {
                Metrics::add(&self.shared.metrics.bytes_out, wrote.bytes);
                busy = true;
            }
            for trace in wrote.finished {
                finish_request(&self.shared, &trace);
            }
            // A shed slow reader that also refuses to read its typed
            // goodbye cannot pin its write queue forever: once no byte has
            // moved for a whole patience window, drop it outright. The same
            // deadline bounds the post-goodbye draining linger.
            if conn.shed && conn.wants_write() && conn.last_progress.elapsed() >= patience {
                conn.abort();
            }
            if conn.linger_deadline.is_some_and(|d| Instant::now() >= d) {
                conn.abort();
            }
            if wrote.close {
                if close_or_linger(conn, patience) {
                    dead.push(id);
                }
                continue;
            }
            if conn.drained() {
                dead.push(id);
                continue;
            }
            // A quiet connection past its read-timeout budget closes
            // silently, exactly like the old per-connection idle budget.
            let quiet = !conn.mid_frame()
                && conn.pending() == 0
                && conn.in_flight() == 0
                && !conn.wants_write();
            if let (true, Some(limit)) = (quiet, idle_budget) {
                if conn.last_progress.elapsed() >= limit {
                    dead.push(id);
                }
            }
        }
        for id in dead {
            self.close(id);
        }
        busy
    }

    fn close(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.conn_count.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Dispatch-and-write pass over just the connections whose requests
    /// completed since the last loop turn: their response frames go out (and
    /// their untagged lane refills) without waiting for the paced full scan.
    fn flush_completed(&mut self, ids: &mut Vec<u64>) -> bool {
        ids.sort_unstable();
        ids.dedup();
        let mut busy = false;
        for id in ids.drain(..) {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            busy |= dispatch(&self.shared, &self.jobs, &self.completions_tx, id, conn);
            if conn.wants_dispatch() && !conn.in_backlog {
                conn.in_backlog = true;
                self.dispatch_backlog.push_back(id);
            }
            let wrote = conn.pump_writes();
            if wrote.bytes > 0 {
                Metrics::add(&self.shared.metrics.bytes_out, wrote.bytes);
                busy = true;
            }
            for trace in wrote.finished {
                finish_request(&self.shared, &trace);
            }
            if wrote.close {
                if close_or_linger(conn, self.shared.config.mid_frame_patience) {
                    self.close(id);
                    busy = true;
                }
            } else if conn.drained() {
                self.close(id);
                busy = true;
            }
        }
        // Refill the worker-queue slots the completions above just freed
        // from connections whose dispatch was blocked on a full queue.
        while let Some(id) = self.dispatch_backlog.pop_front() {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue; // closed while waiting
            };
            conn.in_backlog = false;
            busy |= dispatch(&self.shared, &self.jobs, &self.completions_tx, id, conn);
            if conn.wants_dispatch() {
                // Queue is full again; keep this connection at the head so
                // backlog order stays FIFO.
                conn.in_backlog = true;
                self.dispatch_backlog.push_front(id);
                break;
            }
        }
        busy
    }

    /// Graceful shutdown: stop reading, bounded-drain in-flight requests
    /// (flushing responses as they land), then a best-effort typed
    /// `ShuttingDown` reply on every surviving connection before the close.
    fn drain(mut self, completions_rx: &Receiver<Completion>) {
        for conn in self.conns.values_mut() {
            conn.reads_done = true;
            conn.pending_untagged.clear();
            conn.pending_tagged.clear();
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while self.conns.values().any(|c| c.in_flight() > 0) && Instant::now() < deadline {
            match completions_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(completion) => self.complete(completion),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.flush_all();
        }
        let goodbye = error_response(
            &self.shared,
            ErrorCode::ShuttingDown,
            "service is shutting down".into(),
        )
        .to_framed_bytes();
        let budget = self.shared.config.write_queue_budget_bytes;
        for conn in self.conns.values_mut() {
            conn.enqueue(goodbye.clone(), None, true, budget);
        }
        let flush_deadline = Instant::now() + FLUSH_DEADLINE;
        while !self.conns.is_empty() && Instant::now() < flush_deadline {
            if !self.flush_all() {
                // lint:allow(reactor-discipline, deliberate shutdown pacing: the sweep loop has exited and this 1ms nap only bounds busy-waiting while the final goodbye frames flush)
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.conn_count
            .fetch_sub(self.conns.len(), Ordering::SeqCst);
        self.conns.clear();
    }

    /// One write-only sweep; returns whether any bytes moved or connections
    /// closed.
    fn flush_all(&mut self) -> bool {
        let mut busy = false;
        let mut dead = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if !conn.wants_write() {
                continue;
            }
            let wrote = conn.pump_writes();
            if wrote.bytes > 0 {
                Metrics::add(&self.shared.metrics.bytes_out, wrote.bytes);
                busy = true;
            }
            for trace in wrote.finished {
                finish_request(&self.shared, &trace);
            }
            if wrote.close {
                dead.push(id);
            }
        }
        for id in dead {
            self.close(id);
            busy = true;
        }
        busy
    }
}

/// After a write pass asked to close: returns whether the connection
/// should drop now. A shed connection half-closes instead — FIN goes out
/// behind the flushed goodbye, and the reactor keeps draining (and
/// discarding) inbound bytes until the peer closes or the linger deadline
/// passes. A full close here would make the kernel reset the peer over the
/// unread flood bytes still in the receive buffer, destroying the typed
/// goodbye before the peer reads it.
fn close_or_linger(conn: &mut Conn, patience: Duration) -> bool {
    if !conn.shed || conn.drained() {
        return true;
    }
    if conn.linger_deadline.is_none() {
        let _ = conn.stream.shutdown(Shutdown::Write);
        conn.linger_deadline = Some(Instant::now() + patience);
    }
    false
}

/// Splits the optional tag envelope off one received payload and queues it
/// for dispatch.
fn queue_request(conn: &mut Conn, payload: Vec<u8>) {
    if conn.shed {
        // Shed connections keep reading only so the eventual close does
        // not reset the peer; their requests are discarded unanswered.
        return;
    }
    // `pump_reads` stops reading once MAX_CONN_BACKLOG requests are
    // buffered, so the pending queues are bounded by construction; the
    // assert keeps the budget test next to the push (for the bounded-queue
    // lint pass) and loud in debug builds.
    debug_assert!(
        conn.pending() < MAX_CONN_BACKLOG,
        "pending queues past MAX_CONN_BACKLOG: pump_reads stopped throttling"
    );
    let received = Instant::now();
    match Request::split_tagged(&payload) {
        Some((tag, inner)) => conn.pending_tagged.push_back(PendingRequest {
            tag: Some(tag),
            payload: inner.to_vec(),
            received,
        }),
        None => conn.pending_untagged.push_back(PendingRequest {
            tag: None,
            payload,
            received,
        }),
    }
}

/// Answers a frame-level failure with a best-effort typed reply and marks
/// the connection close-after-flush; a transport failure closes it
/// outright. Typed replies count as served once written — the documented
/// contract is that `requests_served` includes error replies.
fn frame_error(shared: &Shared, conn: &mut Conn, error: ServiceError) {
    conn.reads_done = true;
    conn.pending_untagged.clear();
    conn.pending_tagged.clear();
    let reply = match error {
        ServiceError::FrameTooLarge { declared, limit } => error_response(
            shared,
            ErrorCode::FrameTooLarge,
            format!("frame of {declared} bytes exceeds the {limit}-byte limit"),
        ),
        ServiceError::Wire(e) => {
            error_response(shared, ErrorCode::Malformed, format!("bad frame: {e}"))
        }
        ServiceError::Stalled { patience } => error_response(
            shared,
            ErrorCode::Stalled,
            format!("no bytes for {patience:?} inside a started frame; reconnect"),
        ),
        // The socket itself failed; there is no way to deliver a reply.
        _ => {
            conn.abort();
            return;
        }
    };
    conn.enqueue(
        reply.to_framed_bytes(),
        Some(Trace::begin(Duration::ZERO)),
        true,
        shared.config.write_queue_budget_bytes,
    );
}

/// Sheds a slow reader: a connection whose queued-but-unflushed response
/// bytes exceeded [`crate::ServiceConfig::write_queue_budget_bytes`]. The
/// peer requested faster than it reads, so buffering more would grow
/// without bound; instead its pending work is dropped, its unstarted
/// queued frames are discarded (a partially-written head stays so the
/// stream remains frame-aligned), and a typed `Overloaded` goodbye closes
/// the connection — via a draining half-close (see [`close_or_linger`]) so
/// the goodbye survives the flooder's own unread backlog. Counted under
/// `slow_readers_shed` in the deep stats.
fn shed_slow_reader(shared: &Shared, conn: &mut Conn) {
    if conn.shed {
        return;
    }
    conn.shed = true;
    // Reads stay open: the flooder's pipelined requests keep draining (and
    // are discarded in `queue_request`) so the close never resets the peer
    // with unread bytes and the typed goodbye below actually arrives.
    conn.pending_untagged.clear();
    conn.pending_tagged.clear();
    let queued = conn.queued_bytes();
    conn.drop_unwritten();
    Metrics::add(&shared.metrics.slow_readers_shed, 1);
    let budget = shared.config.write_queue_budget_bytes;
    let reply = error_response(
        shared,
        ErrorCode::Overloaded,
        format!(
            "shed: queued responses would exceed the {budget}-byte write-queue \
             budget ({queued} bytes already queued unread); read responses faster"
        ),
    );
    conn.enqueue(
        reply.to_framed_bytes(),
        Some(Trace::begin(Duration::ZERO)),
        true,
        budget,
    );
}

/// Moves eligible pending requests onto the worker queue; returns whether
/// anything dispatched (or was answered inline).
fn dispatch(
    shared: &Shared,
    jobs: &SyncSender<Job>,
    completions: &Sender<Completion>,
    conn_id: u64,
    conn: &mut Conn,
) -> bool {
    let mut busy = false;
    // Tagged requests dispatch greedily; each completes independently.
    while let Some(next) = conn.pending_tagged.pop_front() {
        let Some(tag) = next.tag else { continue };
        if conn.tags_in_flight.contains(&tag) {
            // A tag reused while still in flight could never be answered
            // unambiguously; refuse it with a typed, still-tagged reply.
            let reply = error_response(
                shared,
                ErrorCode::Malformed,
                format!("correlation tag {tag} is already in flight on this connection"),
            );
            let frame = Response::Tagged {
                tag,
                response: Box::new(reply),
            }
            .to_framed_bytes();
            let trace = Some(Trace::begin(next.received.elapsed()));
            if !conn.enqueue(frame, trace, false, shared.config.write_queue_budget_bytes) {
                shed_slow_reader(shared, conn);
                return true;
            }
            busy = true;
            continue;
        }
        match jobs.try_send(Job {
            conn_id,
            tag: Some(tag),
            payload: next.payload,
            queued: next.received,
            completions: completions.clone(),
        }) {
            Ok(()) => {
                conn.tags_in_flight.insert(tag);
                busy = true;
            }
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                // The pool is saturated (or shutting down); put it back and
                // retry next sweep.
                conn.pending_tagged.push_front(PendingRequest {
                    tag: job.tag,
                    payload: job.payload,
                    received: job.queued,
                });
                return busy;
            }
        }
    }
    // Untagged requests keep the strict in-order contract: at most one in
    // flight, so replies are written in arrival order.
    if !conn.untagged_in_flight {
        if let Some(next) = conn.pending_untagged.pop_front() {
            match jobs.try_send(Job {
                conn_id,
                tag: None,
                payload: next.payload,
                queued: next.received,
                completions: completions.clone(),
            }) {
                Ok(()) => {
                    conn.untagged_in_flight = true;
                    busy = true;
                }
                Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                    conn.pending_untagged.push_front(PendingRequest {
                        tag: None,
                        payload: job.payload,
                        received: job.queued,
                    });
                }
            }
        }
    }
    busy
}
