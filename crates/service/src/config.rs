//! Service configuration.

use crate::sync::{rank, OrderedMutex};
use std::io::Write;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Where the slow-request log writes its JSON lines.
///
/// An enum rather than a boxed writer so [`ServiceConfig`] stays `Clone +
/// Debug`; the buffer variant exists so tests (and embedders) can capture
/// the log without redirecting stderr.
#[derive(Clone, Debug, Default)]
pub enum SlowLogSink {
    /// Write lines to the process stderr.
    #[default]
    Stderr,
    /// Append lines (newline-terminated) to a shared in-memory buffer.
    Buffer(Arc<OrderedMutex<Vec<u8>>>),
}

impl SlowLogSink {
    /// Creates a buffer-backed sink plus the shared handle for reading what
    /// was captured (via `handle.lock().clone()`).
    pub fn buffer() -> (SlowLogSink, Arc<OrderedMutex<Vec<u8>>>) {
        let buffer = Arc::new(OrderedMutex::new(rank::BUFFER, "buffer", Vec::new()));
        (SlowLogSink::Buffer(Arc::clone(&buffer)), buffer)
    }

    /// Writes one log line (adding the trailing newline).
    pub fn write_line(&self, line: &str) {
        match self {
            SlowLogSink::Stderr => {
                // `writeln!` to an unlocked stderr handle: logging must
                // never panic or hold a lock across the write.
                let _ = writeln!(std::io::stderr(), "{line}");
            }
            SlowLogSink::Buffer(buffer) => {
                let mut buffer = buffer.lock();
                buffer.extend_from_slice(line.as_bytes());
                buffer.push(b'\n');
            }
        }
    }
}

/// Which shard of a sharded deployment a service instance hosts.
///
/// Attached to [`ServiceConfig::shard`] by the owner-side partitioner; the
/// service reports it in reply to [`vaq_wire::Request::ShardInfo`] so a
/// scatter-gather client can check it connected each socket to the shard the
/// attested shard map says lives there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRole {
    /// This shard's index in `0..shard_count`.
    pub shard_id: u32,
    /// Total shards in the deployment.
    pub shard_count: u32,
}

/// Configuration of a [`crate::QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub bind_addr: SocketAddr,
    /// Worker threads executing requests (at least 1). Connections are
    /// multiplexed by the evented reactor, so this bounds concurrent
    /// request *execution*, not concurrent connections — thousands of idle
    /// connections cost no worker.
    pub workers: usize,
    /// Response-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Response-cache byte budget: total bytes of cached response frames.
    pub cache_max_bytes: usize,
    /// Largest accepted (and produced) frame payload, in bytes.
    pub max_frame_bytes: usize,
    /// Per-connection read timeout, so a dead peer cannot pin a worker
    /// forever; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Largest accepted batch size; larger batches get a `BadQuery` reply.
    pub max_batch_len: usize,
    /// The shard this instance hosts, when part of a sharded deployment;
    /// `None` makes the service answer `ShardInfo` requests with a typed
    /// `NotSharded` error.
    pub shard: Option<ShardRole>,
    /// Whole-request latency threshold, in micros, above which a request is
    /// written to the slow-request log as a structured JSON line; `None`
    /// disables the log.
    pub slow_request_micros: Option<u64>,
    /// Where slow-request log lines go.
    pub slow_log: SlowLogSink,
    /// How long a peer may stall mid-frame (no byte of progress inside a
    /// started frame) before the service gives up on the connection with a
    /// typed [`vaq_wire::ErrorCode::Stalled`] reply.
    pub mid_frame_patience: Duration,
    /// Most connections the service holds open at once; a connection
    /// accepted beyond this limit is shed with a best-effort typed
    /// [`vaq_wire::ErrorCode::Overloaded`] reply before the close.
    pub max_connections: usize,
    /// Per-connection write-queue byte budget: the most queued-but-unflushed
    /// response bytes one connection may hold. A peer that requests faster
    /// than it reads (a slow reader) is shed with a typed
    /// [`vaq_wire::ErrorCode::Overloaded`] reply once its queue would exceed
    /// this budget, bounding reactor memory per connection. The budget
    /// should be at least `max_frame_bytes`, or any single response larger
    /// than it sheds the connection.
    pub write_queue_budget_bytes: usize,
    /// Reactor stall watchdog threshold, in micros: a single readiness
    /// sweep taking at least this long counts as a `reactor_stalls` tick in
    /// the deep stats (every sweep also feeds the sweep-duration
    /// histogram). One stalled sweep delays every connection at once, so
    /// the threshold is deliberately coarse — it flags blocking calls and
    /// pathological fleets, not routine jitter.
    pub reactor_stall_micros: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bind_addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            cache_capacity: 1024,
            cache_max_bytes: crate::cache::LruCache::DEFAULT_MAX_BYTES,
            max_frame_bytes: 16 << 20,
            read_timeout: Some(Duration::from_secs(30)),
            max_batch_len: 256,
            shard: None,
            slow_request_micros: None,
            slow_log: SlowLogSink::default(),
            mid_frame_patience: crate::frame::DEFAULT_MID_FRAME_PATIENCE,
            max_connections: 10_000,
            write_queue_budget_bytes: 64 << 20,
            reactor_stall_micros: 100_000,
        }
    }
}

impl ServiceConfig {
    /// Starts from defaults binding an ephemeral localhost port.
    pub fn ephemeral() -> Self {
        Self::default()
    }

    /// Sets the bind address.
    pub fn bind(mut self, addr: SocketAddr) -> Self {
        self.bind_addr = addr;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the response-cache capacity (0 disables the cache).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the frame-size limit.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Sets the per-connection read timeout.
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Declares which shard of a sharded deployment this instance hosts.
    pub fn shard_role(mut self, role: ShardRole) -> Self {
        self.shard = Some(role);
        self
    }

    /// Enables the slow-request log for requests at or above `micros` of
    /// whole-request latency.
    pub fn slow_request_micros(mut self, micros: u64) -> Self {
        self.slow_request_micros = Some(micros);
        self
    }

    /// Routes slow-request log lines to `sink`.
    pub fn slow_log_sink(mut self, sink: SlowLogSink) -> Self {
        self.slow_log = sink;
        self
    }

    /// Sets how long a peer may stall mid-frame before the connection is
    /// dropped with a typed stall reply.
    pub fn mid_frame_patience(mut self, patience: Duration) -> Self {
        self.mid_frame_patience = patience;
        self
    }

    /// Sets the connection limit (clamped to at least 1); connections
    /// beyond it are shed with a typed overload reply.
    pub fn max_connections(mut self, limit: usize) -> Self {
        self.max_connections = limit.max(1);
        self
    }

    /// Sets the per-connection write-queue byte budget; a connection whose
    /// queued response bytes would exceed it is shed with a typed overload
    /// reply.
    pub fn write_queue_budget_bytes(mut self, bytes: usize) -> Self {
        self.write_queue_budget_bytes = bytes;
        self
    }

    /// Sets the reactor stall watchdog threshold in micros; a readiness
    /// sweep at or above it counts as a stall in the deep stats.
    pub fn reactor_stall_micros(mut self, micros: u64) -> Self {
        self.reactor_stall_micros = micros;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ServiceConfig::default();
        assert_eq!(config.bind_addr.port(), 0);
        assert!(config.workers >= 1);
        assert!(config.max_frame_bytes >= 1 << 20);
        assert!(
            config.write_queue_budget_bytes >= config.max_frame_bytes,
            "the default budget must admit at least one max-size response"
        );
        assert!(config.reactor_stall_micros > 0);
    }

    #[test]
    fn builder_methods_apply() {
        let config = ServiceConfig::ephemeral()
            .workers(0)
            .cache_capacity(7)
            .max_frame_bytes(4096)
            .read_timeout(None)
            .mid_frame_patience(Duration::from_millis(250))
            .max_connections(0)
            .write_queue_budget_bytes(8192)
            .reactor_stall_micros(250_000);
        assert_eq!(config.workers, 1, "worker count clamps to 1");
        assert_eq!(config.cache_capacity, 7);
        assert_eq!(config.max_frame_bytes, 4096);
        assert!(config.read_timeout.is_none());
        assert_eq!(config.mid_frame_patience, Duration::from_millis(250));
        assert_eq!(config.max_connections, 1, "connection limit clamps to 1");
        assert_eq!(config.write_queue_budget_bytes, 8192);
        assert_eq!(config.reactor_stall_micros, 250_000);
    }
}
