//! Closed-loop load generator: N client threads driving a query service
//! with seeded workload mixes, verifying every response.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use vaq_authquery::Query;
use vaq_crypto::{PublicKey, Verifier};
use vaq_funcdb::{Dataset, Domain, FunctionTemplate};
use vaq_wire::{Request, Response};
use vaq_workload::{QueryGenerator, QueryMix, QuerySpec, WorkItem};

use crate::client::{check_batch_arity, unexpected, ServiceClient};
use crate::error::ServiceError;
use crate::shard::{ClientObservability, ShardedClient, ShardedPublication};

/// Converts a workload query spec into a protocol query.
pub fn spec_to_query(spec: &QuerySpec) -> Query {
    match spec {
        QuerySpec::TopK { weights, k } => Query::top_k(weights.clone(), *k),
        QuerySpec::Range {
            weights,
            lower,
            upper,
        } => Query::range(weights.clone(), *lower, *upper),
        QuerySpec::Knn { weights, k, target } => Query::knn(weights.clone(), *k, *target),
    }
}

/// What a load-generation run drives.
///
/// The sharded variant carries the full publication (shard map with
/// per-shard keys and address lists); the size skew against the bare
/// single-service address is inherent, and a `LoadTarget` is a run-level
/// config value cloned once per client thread, never a hot-path payload.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum LoadTarget {
    /// One standalone service; responses are verified when
    /// [`LoadGenerator::verify`] is set.
    Single(SocketAddr),
    /// A sharded deployment: every query scatter-gathers across all shards
    /// and is always fully verified against the publication (per-shard keys
    /// plus the attested shard map), so [`LoadGenerator::verify`] is
    /// ignored.
    Sharded {
        /// Shard addresses, in shard-id order.
        addrs: Vec<SocketAddr>,
        /// The owner's published verification material.
        publication: ShardedPublication,
    },
}

/// Configuration of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadGenerator {
    /// What to drive: one service or a sharded deployment.
    pub target: LoadTarget,
    /// Concurrent client threads.
    pub clients: usize,
    /// Connections each client thread opens against a
    /// [`LoadTarget::Single`] service, so one process simulates
    /// `clients * connections_per_client` concurrent connections against
    /// the evented service core (10k+ simulated users from a handful of
    /// threads). Above 1, each thread drives its fan-out in *waves* of
    /// tagged requests — one in flight per connection, gathered by
    /// correlation tag — so the whole fleet is genuinely concurrent rather
    /// than ticking one closed loop across many sockets. Clamped to at
    /// least 1. Ignored by the sharded target, where every shard leg is
    /// already its own connection.
    pub connections_per_client: usize,
    /// Queries each client issues.
    pub requests_per_client: usize,
    /// The query-kind mix every client draws from.
    pub mix: QueryMix,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
    /// When set, every response from a [`LoadTarget::Single`] service is
    /// cryptographically verified against the owner's template and public
    /// key.
    pub verify: Option<(FunctionTemplate, PublicKey)>,
}

impl LoadGenerator {
    /// A single-service generator with the balanced default mix and
    /// verification enabled.
    pub fn new(
        addr: SocketAddr,
        clients: usize,
        requests_per_client: usize,
        template: FunctionTemplate,
        public_key: PublicKey,
    ) -> Self {
        LoadGenerator {
            target: LoadTarget::Single(addr),
            clients: clients.max(1),
            connections_per_client: 1,
            requests_per_client,
            mix: QueryMix::default(),
            seed: 0x10ad,
            verify: Some((template, public_key)),
        }
    }

    /// A generator driving a sharded deployment with the balanced default
    /// mix; every response is scatter-gathered and fully verified.
    pub fn sharded(
        addrs: Vec<SocketAddr>,
        publication: ShardedPublication,
        clients: usize,
        requests_per_client: usize,
    ) -> Self {
        LoadGenerator {
            target: LoadTarget::Sharded { addrs, publication },
            clients: clients.max(1),
            connections_per_client: 1,
            requests_per_client,
            mix: QueryMix::default(),
            seed: 0x10ad,
            verify: None,
        }
    }

    /// Runs the closed loop to completion and aggregates the results.
    ///
    /// `dataset` seeds the per-client [`QueryGenerator`]s with realistic
    /// weight vectors and score ranges — the same knowledge a data user has
    /// from the owner's published metadata. The records themselves never
    /// cross into the client threads: one probe samples the score range,
    /// and each thread generates from the (domain, score range) pair alone.
    pub fn run(&self, dataset: &Dataset) -> Result<LoadReport, ServiceError> {
        let started = Instant::now();
        let probe = QueryGenerator::new(dataset, self.seed);
        let domain = probe.domain().clone();
        let score_range = probe.score_range();
        let threads: Vec<_> = (0..self.clients)
            .map(|i| {
                let config = self.clone();
                let domain = domain.clone();
                std::thread::Builder::new()
                    .name(format!("vaq-loadgen-{i}"))
                    .spawn(move || config.drive_one_client(i as u64, domain, score_range))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        // Join every thread before propagating any error, so a failed client
        // never leaves the others running detached against the service. A
        // panicked client thread folds into a typed error the same way.
        let outcomes: Vec<Result<ClientOutcome, ServiceError>> = threads
            .into_iter()
            .map(|thread| {
                thread.join().unwrap_or_else(|_| {
                    Err(ServiceError::Io(std::io::Error::other(
                        "a load-generator client thread panicked",
                    )))
                })
            })
            .collect();
        let mut latencies_micros: Vec<u64> = Vec::new();
        let mut batch_latencies_micros: Vec<u64> = Vec::new();
        let mut verified = 0usize;
        let mut failures = 0usize;
        let mut epoch_refreshes = 0usize;
        let mut batches = 0usize;
        let mut batch_queries = 0usize;
        let mut failovers = 0u64;
        let mut stale_rejections = 0u64;
        let mut scatter_legs = 0u64;
        let mut scatter_leg_total_micros = 0u64;
        let mut scatter_leg_max_micros = 0u64;
        for outcome in outcomes {
            let outcome = outcome?;
            latencies_micros.extend(outcome.latencies_micros);
            batch_latencies_micros.extend(outcome.batch_latencies_micros);
            verified += outcome.verified;
            failures += outcome.failures;
            epoch_refreshes += outcome.epoch_refreshes;
            batches += outcome.batches;
            batch_queries += outcome.batch_queries;
            if let Some(obs) = outcome.observability {
                failovers += obs.failovers;
                stale_rejections += obs.stale_rejections;
                scatter_leg_max_micros = scatter_leg_max_micros.max(obs.max_leg_micros());
                for leg in &obs.leg_latency {
                    scatter_legs += leg.legs;
                    scatter_leg_total_micros += leg.total_micros;
                }
            }
        }
        let elapsed = started.elapsed();
        latencies_micros.sort_unstable();
        batch_latencies_micros.sort_unstable();
        Ok(LoadReport {
            clients: self.clients,
            total_requests: latencies_micros.len() + batches,
            verified,
            failures,
            epoch_refreshes,
            batches,
            batch_queries,
            failovers,
            stale_rejections,
            scatter_legs,
            scatter_leg_total_micros,
            scatter_leg_max_micros,
            elapsed,
            latencies_micros,
            batch_latencies_micros,
        })
    }

    fn drive_one_client(
        &self,
        index: u64,
        domain: Domain,
        score_range: (f64, f64),
    ) -> Result<ClientOutcome, ServiceError> {
        let mut generator = QueryGenerator::from_published(domain, score_range, self.seed + index);
        match &self.target {
            LoadTarget::Single(addr) => {
                // One stream per simulated user. A fan-out of 1 is the
                // classic closed loop; above 1 the thread pipelines a wave
                // of tagged requests across its connections and gathers
                // them by correlation tag.
                let fan_out = self.connections_per_client.max(1);
                let mut conns: Vec<ServiceClient> = Vec::with_capacity(fan_out);
                for n in 0..fan_out {
                    // Ramp the fan-out instead of dialing it as one storm: an
                    // unpaced burst from every generator thread at once can
                    // overflow the kernel's listen backlog (the connect
                    // spinners starve the accept thread on a saturated core),
                    // and each dropped SYN stalls its client ~1s on a
                    // retransmit. The pauses bound the dial rate and hand the
                    // scheduler windows in which the acceptor drains.
                    if n > 0 && n % CONNECT_RAMP_CHUNK == 0 {
                        std::thread::sleep(CONNECT_RAMP_PAUSE);
                    }
                    conns.push(ServiceClient::connect(addr)?);
                }
                let mut outcome = ClientOutcome::default();
                if fan_out > 1 {
                    self.drive_waves(&mut generator, &mut conns, &mut outcome)?;
                    return Ok(outcome);
                }
                let client = &mut conns[0];
                for request_index in 0..self.requests_per_client {
                    match self.mix.generate_item(&mut generator, request_index as u64) {
                        WorkItem::Single(spec) => {
                            let query = spec_to_query(&spec);
                            let start = Instant::now();
                            let response = client.query(&query)?;
                            outcome.latencies_micros.push(elapsed_micros(start));
                            self.verify_one(&query, &response, &mut outcome);
                        }
                        WorkItem::Batch(specs) => {
                            let queries: Vec<Query> = specs.iter().map(spec_to_query).collect();
                            let start = Instant::now();
                            let responses = client.batch(&queries)?;
                            outcome.batch_latencies_micros.push(elapsed_micros(start));
                            outcome.batches += 1;
                            outcome.batch_queries += queries.len();
                            for (query, response) in queries.iter().zip(&responses) {
                                self.verify_one(query, response, &mut outcome);
                            }
                        }
                    }
                }
                Ok(outcome)
            }
            LoadTarget::Sharded { addrs, publication } => {
                let mut outcome = ClientOutcome::default();
                let mut client = sharded_connect_with_refresh(addrs, publication, &mut outcome)?;
                for request_index in 0..self.requests_per_client {
                    // A sharded request is verified end to end or it errors;
                    // there is no unverified sharded read to time. Update
                    // churn (the owner republishing mid-run) surfaces as
                    // typed stale-epoch rejections: re-fetch the signed map
                    // and retry at the new epoch until the rollout settles.
                    match self.mix.generate_item(&mut generator, request_index as u64) {
                        WorkItem::Single(spec) => {
                            let query = spec_to_query(&spec);
                            let start = Instant::now();
                            sharded_with_refresh(&mut client, &mut outcome, |client| {
                                client.query_verified(&query).map(drop)
                            })?;
                            outcome.latencies_micros.push(elapsed_micros(start));
                            outcome.verified += 1;
                        }
                        WorkItem::Batch(specs) => {
                            let queries: Vec<Query> = specs.iter().map(spec_to_query).collect();
                            let start = Instant::now();
                            sharded_with_refresh(&mut client, &mut outcome, |client| {
                                client.batch_verified(&queries).map(drop)
                            })?;
                            outcome.batch_latencies_micros.push(elapsed_micros(start));
                            outcome.batches += 1;
                            outcome.batch_queries += queries.len();
                            outcome.verified += queries.len();
                        }
                    }
                }
                outcome.observability = Some(client.observability().clone());
                Ok(outcome)
            }
        }
    }

    /// Drives one thread's connection fan-out in waves: each wave sends one
    /// tagged request on every connection (at most one in flight per
    /// simulated user), then gathers the responses by correlation tag —
    /// exercising the service's out-of-order multiplexed completion under
    /// thousands of concurrent sockets. Latency is measured per request
    /// from its own send to its own gather.
    fn drive_waves(
        &self,
        generator: &mut QueryGenerator,
        conns: &mut [ServiceClient],
        outcome: &mut ClientOutcome,
    ) -> Result<(), ServiceError> {
        let fan_out = conns.len();
        let mut index = 0usize;
        while index < self.requests_per_client {
            let wave = fan_out.min(self.requests_per_client - index);
            let mut in_flight = Vec::with_capacity(wave);
            for offset in 0..wave {
                let item = self.mix.generate_item(generator, (index + offset) as u64);
                let conn = (index + offset) % fan_out;
                let started = Instant::now();
                let (request, item) = match item {
                    WorkItem::Single(spec) => {
                        let query = spec_to_query(&spec);
                        (Request::Query(query.clone()), WaveItem::Single(query))
                    }
                    WorkItem::Batch(specs) => {
                        let queries: Vec<Query> = specs.iter().map(spec_to_query).collect();
                        (Request::Batch(queries.clone()), WaveItem::Batch(queries))
                    }
                };
                let tag = conns[conn].send_tagged(&request)?;
                in_flight.push((conn, tag, started, item));
            }
            for (conn, tag, started, item) in in_flight {
                match (conns[conn].receive_tagged(tag)?, item) {
                    (Response::Query { response, .. }, WaveItem::Single(query)) => {
                        outcome.latencies_micros.push(elapsed_micros(started));
                        self.verify_one(&query, &response, outcome);
                    }
                    (Response::Batch { responses, .. }, WaveItem::Batch(queries)) => {
                        check_batch_arity(queries.len(), &responses)?;
                        outcome.batch_latencies_micros.push(elapsed_micros(started));
                        outcome.batches += 1;
                        outcome.batch_queries += queries.len();
                        for (query, response) in queries.iter().zip(&responses) {
                            self.verify_one(query, response, outcome);
                        }
                    }
                    (other, _) => return Err(unexpected(&other)),
                }
            }
            index += wave;
        }
        Ok(())
    }

    /// Verifies one response against the published template and key when
    /// verification is configured, recording the outcome.
    fn verify_one(
        &self,
        query: &Query,
        response: &vaq_authquery::QueryResponse,
        outcome: &mut ClientOutcome,
    ) {
        if let Some((template, public_key)) = &self.verify {
            match vaq_authquery::client::verify(
                query,
                &response.records,
                &response.vo,
                template,
                public_key as &dyn Verifier,
            ) {
                Ok(_) => outcome.verified += 1,
                Err(_) => outcome.failures += 1,
            }
        }
    }
}

/// One wave member awaiting its gather: what was asked, for verification.
enum WaveItem {
    Single(Query),
    Batch(Vec<Query>),
}

/// Elapsed wall-clock microseconds since `start`, saturated into `u64`.
fn elapsed_micros(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Connects to a sharded deployment riding update churn: a stale-epoch
/// handshake rejection means the owner republished between the publication
/// snapshot this run was configured with and the connect — exactly the race
/// the mid-run refresh machinery already rides, except no client exists yet
/// to call [`ShardedClient::refresh`] on. Fetch the current signed map from
/// the attested addresses instead, verify it under the same master key,
/// adopt it only if it is strictly newer (the same rollback gate
/// [`ShardedClient::adopt_map`] enforces), and reconnect at the served
/// epoch, bounded like the per-query retries.
fn sharded_connect_with_refresh(
    addrs: &[SocketAddr],
    publication: &ShardedPublication,
    outcome: &mut ClientOutcome,
) -> Result<ShardedClient, ServiceError> {
    let mut publication = publication.clone();
    let mut stale_retries = 0usize;
    loop {
        match ShardedClient::connect(addrs, &publication) {
            Ok(client) => return Ok(client),
            Err(e) if e.is_stale_epoch() && stale_retries < STALE_RETRY_LIMIT => {
                stale_retries += 1;
                if let Some(offered) = fetch_signed_map(addrs) {
                    let verified =
                        crate::partition::verify_shard_map(&offered, &publication.master_key)
                            .is_ok();
                    let current = publication.shard_map.map.epoch;
                    if verified && vaq_wire::epoch::advances(current, offered.map.epoch) {
                        publication.shard_map = offered;
                        outcome.epoch_refreshes += 1;
                    }
                }
                // A rollout flips shards one at a time; give it a moment
                // before re-handshaking.
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Best-effort fetch of the deployment's current signed shard map from any
/// of the serving addresses; `None` when no address answers.
fn fetch_signed_map(addrs: &[SocketAddr]) -> Option<vaq_wire::SignedShardMap> {
    for addr in addrs {
        if let Ok(map) = ServiceClient::connect(*addr).and_then(|mut c| c.shard_map()) {
            return Some(map);
        }
    }
    None
}

/// Runs one sharded call, riding update churn: typed stale-epoch rejections
/// trigger a signed-map re-fetch and a bounded retry at the new epoch —
/// identical machinery for single queries and batches.
fn sharded_with_refresh(
    client: &mut ShardedClient,
    outcome: &mut ClientOutcome,
    mut call: impl FnMut(&mut ShardedClient) -> Result<(), ServiceError>,
) -> Result<(), ServiceError> {
    let mut stale_retries = 0usize;
    loop {
        match call(client) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_stale_epoch() && stale_retries < STALE_RETRY_LIMIT => {
                stale_retries += 1;
                if client.refresh().is_ok() {
                    outcome.epoch_refreshes += 1;
                }
                // A rollout flips shards one at a time; give it a moment
                // before re-pinning.
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// How many consecutive stale-epoch rejections one query tolerates before
/// the run fails. A rollout flips each shard once, so convergence needs at
/// most a handful of refresh cycles; a bound keeps a wedged deployment from
/// spinning forever.
const STALE_RETRY_LIMIT: usize = 200;

/// Connection-ramp shape for a [`LoadConfig::connections_per_client`]
/// fan-out: each generator thread dials this many sockets back-to-back,
/// then pauses [`CONNECT_RAMP_PAUSE`] before the next chunk. Measured on a
/// single-core box, an unpaced 4×1280 storm overflowed the listen backlog
/// into dozens of ~1s SYN-retransmit stalls (25s+ to connect the fleet);
/// this ramp connects the same fleet in ~2s with at most a handful.
const CONNECT_RAMP_CHUNK: usize = 64;

/// See [`CONNECT_RAMP_CHUNK`].
const CONNECT_RAMP_PAUSE: Duration = Duration::from_millis(2);

#[derive(Default)]
struct ClientOutcome {
    latencies_micros: Vec<u64>,
    batch_latencies_micros: Vec<u64>,
    verified: usize,
    failures: usize,
    epoch_refreshes: usize,
    batches: usize,
    batch_queries: usize,
    /// The sharded client's accumulated observability (None on the single
    /// target, whose client keeps no scatter-side counters).
    observability: Option<ClientObservability>,
}

/// Aggregate results of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Client threads that ran.
    pub clients: usize,
    /// Total requests issued (single queries plus batch requests — a batch
    /// counts once however many queries it carries).
    pub total_requests: usize,
    /// Responses that passed cryptographic verification (each batch member
    /// counts individually).
    pub verified: usize,
    /// Responses that failed verification.
    pub failures: usize,
    /// Shard-map refreshes performed after stale-epoch rejections (update
    /// churn observed and survived mid-run).
    pub epoch_refreshes: usize,
    /// Batch requests issued.
    pub batches: usize,
    /// Queries carried inside batch requests.
    pub batch_queries: usize,
    /// Failover activations across all sharded clients: scatter legs that
    /// were retried against an attested standby address (0 on single
    /// targets).
    pub failovers: u64,
    /// Scatter legs rejected with a typed stale-epoch error across all
    /// sharded clients (0 on single targets).
    pub stale_rejections: u64,
    /// Scatter legs completed across all sharded clients and shards (0 on
    /// single targets).
    pub scatter_legs: u64,
    /// Summed scatter-leg wall-clock, in microseconds.
    pub scatter_leg_total_micros: u64,
    /// Slowest single scatter leg observed by any client, in microseconds.
    pub scatter_leg_max_micros: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Sorted single-query request latencies in microseconds.
    pub latencies_micros: Vec<u64>,
    /// Sorted per-batch request latencies in microseconds (one observation
    /// per batch, not per member).
    pub batch_latencies_micros: Vec<u64>,
}

impl LoadReport {
    /// Total queries answered: single requests plus every batch member —
    /// the unit cryptographic verification and server-side processing are
    /// paid in, regardless of how queries were framed into requests.
    pub fn total_queries(&self) -> usize {
        (self.total_requests - self.batches) + self.batch_queries
    }

    /// Aggregate throughput in queries per second (batch members count
    /// individually, so batched and unbatched runs compare like for like).
    pub fn throughput_qps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_queries() as f64 / self.elapsed.as_secs_f64()
    }

    /// The single-query latency at a quantile in `[0, 1]`, in microseconds.
    ///
    /// Uses the standard nearest-rank definition: the value at 1-based rank
    /// `ceil(q * n)`, so p50 of `[10, 20, 30, 40]` is 20 (the smallest value
    /// at or above which at least 50% of the observations lie), and p100 is
    /// the maximum.
    pub fn latency_quantile_micros(&self, quantile: f64) -> u64 {
        quantile_micros(&self.latencies_micros, quantile)
    }

    /// The per-batch latency at a quantile in `[0, 1]`, in microseconds
    /// (same nearest-rank definition over the batch observations).
    pub fn batch_latency_quantile_micros(&self, quantile: f64) -> u64 {
        quantile_micros(&self.batch_latencies_micros, quantile)
    }

    /// Mean scatter-leg latency across all sharded clients, in microseconds
    /// (0 when the run drove a single target).
    pub fn scatter_leg_mean_micros(&self) -> u64 {
        self.scatter_leg_total_micros
            .checked_div(self.scatter_legs)
            .unwrap_or(0)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} clients x {} reqs: {:.0} qps, p50 {}us, p95 {}us, p99 {}us, max {}us, {} verified",
            self.clients,
            self.total_requests.checked_div(self.clients).unwrap_or(0),
            self.throughput_qps(),
            self.latency_quantile_micros(0.50),
            self.latency_quantile_micros(0.95),
            self.latency_quantile_micros(0.99),
            self.latencies_micros.last().copied().unwrap_or(0),
            self.verified,
        );
        if self.batches > 0 {
            line.push_str(&format!(
                "; {} batches ({} queries), batch p50 {}us p99 {}us",
                self.batches,
                self.batch_queries,
                self.batch_latency_quantile_micros(0.50),
                self.batch_latency_quantile_micros(0.99),
            ));
        }
        if self.scatter_legs > 0 {
            line.push_str(&format!(
                "; {} scatter legs (mean {}us, max {}us), {} failovers, {} stale rejections",
                self.scatter_legs,
                self.scatter_leg_mean_micros(),
                self.scatter_leg_max_micros,
                self.failovers,
                self.stale_rejections,
            ));
        }
        line
    }
}

/// Nearest-rank quantile over a sorted latency list (0 when empty).
fn quantile_micros(sorted: &[u64], quantile: f64) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let quantile = quantile.clamp(0.0, 1.0);
    let rank = (quantile * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_throughput_from_known_latencies() {
        let report = LoadReport {
            clients: 2,
            total_requests: 4,
            verified: 4,
            failures: 0,
            epoch_refreshes: 0,
            batches: 0,
            batch_queries: 0,
            failovers: 0,
            stale_rejections: 0,
            scatter_legs: 0,
            scatter_leg_total_micros: 0,
            scatter_leg_max_micros: 0,
            elapsed: Duration::from_secs(2),
            latencies_micros: vec![10, 20, 30, 40],
            batch_latencies_micros: vec![],
        };
        assert_eq!(report.throughput_qps(), 2.0);
        assert_eq!(report.latency_quantile_micros(0.0), 10);
        assert_eq!(report.latency_quantile_micros(1.0), 40);
        // Standard nearest-rank: p50 of 4 observations is the value at
        // 1-based rank ceil(0.5 * 4) = 2.
        assert_eq!(report.latency_quantile_micros(0.5), 20);
        assert_eq!(report.latency_quantile_micros(0.75), 30);
        assert_eq!(report.latency_quantile_micros(0.76), 40);
        assert!(report.summary().contains("verified"));
        // No batches in the mix: the summary stays in its historical shape.
        assert!(!report.summary().contains("batches"));
    }

    #[test]
    fn batch_quantiles_and_summary_report_batches() {
        let report = LoadReport {
            clients: 1,
            total_requests: 6,
            verified: 12,
            failures: 0,
            epoch_refreshes: 0,
            batches: 2,
            batch_queries: 8,
            failovers: 0,
            stale_rejections: 0,
            scatter_legs: 0,
            scatter_leg_total_micros: 0,
            scatter_leg_max_micros: 0,
            elapsed: Duration::from_secs(1),
            latencies_micros: vec![10, 20, 30, 40],
            batch_latencies_micros: vec![100, 300],
        };
        assert_eq!(report.batch_latency_quantile_micros(0.5), 100);
        assert_eq!(report.batch_latency_quantile_micros(1.0), 300);
        // Throughput counts every batch member: 4 singles + 8 batched
        // queries over 1 second.
        assert_eq!(report.total_queries(), 12);
        assert_eq!(report.throughput_qps(), 12.0);
        let summary = report.summary();
        assert!(summary.contains("2 batches (8 queries)"), "{summary}");
    }

    #[test]
    fn empty_report_is_harmless() {
        let report = LoadReport {
            clients: 1,
            total_requests: 0,
            verified: 0,
            failures: 0,
            epoch_refreshes: 0,
            batches: 0,
            batch_queries: 0,
            failovers: 0,
            stale_rejections: 0,
            scatter_legs: 0,
            scatter_leg_total_micros: 0,
            scatter_leg_max_micros: 0,
            elapsed: Duration::ZERO,
            latencies_micros: vec![],
            batch_latencies_micros: vec![],
        };
        assert_eq!(report.throughput_qps(), 0.0);
        assert_eq!(report.latency_quantile_micros(0.99), 0);
        assert_eq!(report.batch_latency_quantile_micros(0.99), 0);
    }

    #[test]
    fn spec_conversion_preserves_parameters() {
        let spec = QuerySpec::Range {
            weights: vec![0.25, 0.75],
            lower: 0.1,
            upper: 0.6,
        };
        let query = spec_to_query(&spec);
        assert_eq!(query, Query::range(vec![0.25, 0.75], 0.1, 0.6));
    }
}
