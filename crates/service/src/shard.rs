//! Sharded deployment tier: scatter-gather querying over disjoint shards.
//!
//! One logical dataset is split by the owner into `S` disjoint shards (see
//! [`crate::partition`]), each hosted by its own [`QueryService`] over its
//! own authenticated structure and per-shard signing key. A
//! [`ShardedClient`] scatters every query to all shards, cryptographically
//! verifies each per-shard response via [`vaq_authquery::client::verify`]
//! under that shard's attested key, and merges the per-shard answers into
//! the logical answer.
//!
//! # Why the merged answer is sound and complete
//!
//! * Every per-shard response is verified sound and complete *within its
//!   shard* by the paper's protocol.
//! * The owner's [`SignedShardMap`] attests the exact shard count, each
//!   shard's record count and each shard's verification key — so no shard
//!   can be dropped (the client refuses to answer unless all `S` shards
//!   respond and verify) and no shard can impersonate another (its response
//!   would not verify under the per-shard key).
//! * The merge applies the *same* window-selection logic a single server
//!   uses ([`Query::select_window`]) to the score-sorted union of the
//!   per-shard results. For top-k and KNN, each shard returns its local
//!   top-k / k-nearest, a superset of the global answer's members from that
//!   shard; for range, each shard returns exactly its in-range records.
//!   Hence the union contains the logical answer, and selecting over it
//!   reproduces exactly what one server hosting all records would return.

use std::collections::HashSet;
use std::net::SocketAddr;

use vaq_authquery::{client, IfmhTree, Query, Server, SigningMode};
use vaq_crypto::{PublicKey, SignatureScheme};
use vaq_funcdb::{Dataset, FunctionTemplate, Record};
use vaq_wire::{Request, Response, SignedShardMap, StatsSnapshot};

use crate::client::ServiceClient;
use crate::config::{ServiceConfig, ShardRole};
use crate::error::ServiceError;
use crate::partition::{attest_shard_map, partition_dataset, verify_shard_map, PartitionStrategy};
use crate::server::QueryService;

/// Everything a data user needs to query and verify a sharded deployment:
/// the attested shard map, the owner's master public key and the shared
/// function template. Published out of band, like the paper's
/// [`vaq_authquery::PublishedMetadata`].
#[derive(Clone, Debug)]
pub struct ShardedPublication {
    /// The owner-signed partition description.
    pub shard_map: SignedShardMap,
    /// The owner's master public key (verifies the shard map itself).
    pub master_key: PublicKey,
    /// The utility-function template shared by every shard.
    pub template: FunctionTemplate,
}

/// An owner-launched sharded deployment: `S` in-process [`QueryService`]s,
/// each hosting one disjoint shard of one logical dataset under its own
/// signing key, plus the attested shard map clients verify against.
///
/// In production the `S` services would run on separate hosts; this harness
/// wires the same objects up in one process, which is exactly what the
/// integration suite and the `sharded_throughput` benchmark need — the wire
/// protocol, verification and merge paths are identical either way.
pub struct ShardedDeployment {
    /// `None` marks a shard stopped via [`ShardedDeployment::stop_shard`];
    /// indices stay aligned with shard ids and [`ShardedDeployment::addrs`].
    services: Vec<Option<QueryService>>,
    addrs: Vec<SocketAddr>,
    publication: ShardedPublication,
}

impl std::fmt::Debug for ShardedDeployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDeployment")
            .field("shards", &self.services.len())
            .field("addrs", &self.addrs)
            .finish()
    }
}

impl ShardedDeployment {
    /// Partitions `dataset` round-robin into `shard_count` shards, builds an
    /// IFMH-tree per shard under a fresh per-shard RSA key (derived from
    /// `seed`), signs the shard map with a fresh master key, and binds one
    /// [`QueryService`] per shard using `base_config` (whose bind address
    /// must carry port 0 so every shard gets its own ephemeral port).
    pub fn launch(
        dataset: &Dataset,
        shard_count: usize,
        mode: SigningMode,
        seed: u64,
        base_config: ServiceConfig,
    ) -> Result<ShardedDeployment, ServiceError> {
        if shard_count > 1 && base_config.bind_addr.port() != 0 {
            return Err(ServiceError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a multi-shard deployment needs an ephemeral bind port (port 0)",
            )));
        }
        let shards = partition_dataset(dataset, shard_count, PartitionStrategy::RoundRobin);
        // Distinct keys per shard: a compromised shard cannot answer with
        // another shard's validly signed data, because the client verifies
        // shard i's responses under shard i's attested key.
        let schemes: Vec<SignatureScheme> = (0..shard_count)
            .map(|i| SignatureScheme::new_rsa(128, seed.wrapping_add(1 + i as u64)))
            .collect();
        let master = SignatureScheme::new_rsa(128, seed);
        let keys: Vec<PublicKey> = schemes.iter().map(|s| s.public_key()).collect();
        let shard_map = attest_shard_map(&shards, &keys, &master);

        let mut services = Vec::with_capacity(shard_count);
        let mut addrs = Vec::with_capacity(shard_count);
        for (shard_id, (shard_dataset, scheme)) in shards.iter().zip(&schemes).enumerate() {
            let tree = IfmhTree::build(shard_dataset, mode, scheme);
            let config = base_config.clone().shard_role(ShardRole {
                shard_id: shard_id as u32,
                shard_count: shard_count as u32,
            });
            let service = QueryService::bind(config, Server::new(shard_dataset.clone(), tree))?;
            addrs.push(service.local_addr());
            services.push(Some(service));
        }
        Ok(ShardedDeployment {
            services,
            addrs,
            publication: ShardedPublication {
                shard_map,
                master_key: master.public_key(),
                template: dataset.template.clone(),
            },
        })
    }

    /// The addresses the shards listen on, in shard-id order.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.services.len()
    }

    /// The verification material a data user needs (shard map, master key,
    /// template).
    pub fn publication(&self) -> &ShardedPublication {
        &self.publication
    }

    /// Connects a verifying scatter-gather client to this deployment.
    pub fn client(&self) -> Result<ShardedClient, ServiceError> {
        ShardedClient::connect(&self.addrs, &self.publication)
    }

    /// Per-shard counter snapshots for the shards still running, in
    /// shard-id order.
    pub fn stats(&self) -> Vec<StatsSnapshot> {
        self.services.iter().flatten().map(|s| s.stats()).collect()
    }

    /// Shuts down one shard (simulating a shard outage) and returns its
    /// final stats. Panics if `shard_id` is out of range or already down.
    pub fn stop_shard(&mut self, shard_id: usize) -> StatsSnapshot {
        self.services[shard_id]
            .take()
            .unwrap_or_else(|| panic!("shard {shard_id} is already down"))
            .shutdown()
    }

    /// Stops every still-running shard and returns their final stats in
    /// shard-id order.
    pub fn shutdown(self) -> Vec<StatsSnapshot> {
        self.services
            .into_iter()
            .flatten()
            .map(|s| s.shutdown())
            .collect()
    }
}

/// One shard connection plus its attested identity.
struct ShardConnection {
    entry: vaq_wire::ShardEntry,
    client: ServiceClient,
}

/// The merged, fully verified answer to one sharded query.
#[derive(Clone, Debug)]
pub struct ShardedResponse {
    /// Result records in ascending score order — the same order (and for
    /// datasets with in-order record ids, the same bytes) a single server
    /// hosting the whole dataset would return.
    pub records: Vec<Record>,
    /// The verified score of each result record, in result order.
    pub scores: Vec<f64>,
    /// How many records each shard contributed to the candidate set (not
    /// the final answer), in shard-id order.
    pub per_shard_returned: Vec<usize>,
}

/// A verifying scatter-gather front-end over a sharded deployment.
///
/// Holds one [`ServiceClient`] per shard. Every query is sent to all shards
/// (pipelined: all requests go out before the first response is read), each
/// response is verified under that shard's attested key, and the verified
/// per-shard answers are merged. Any shard failure — connection down, error
/// reply, verification failure — fails the whole query with a typed
/// [`ServiceError::ShardFailed`]; there are no silent partial answers.
pub struct ShardedClient {
    shards: Vec<ShardConnection>,
    template: FunctionTemplate,
    total_records: u64,
}

impl std::fmt::Debug for ShardedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClient")
            .field("shards", &self.shards.len())
            .field("total_records", &self.total_records)
            .finish()
    }
}

impl ShardedClient {
    /// Verifies the published shard map, connects to every shard and
    /// handshakes each connection's shard identity against the map.
    ///
    /// `addrs[i]` must host the shard the map lists as shard `i`; a
    /// mismatch (wrong shard id, wrong deployment size, wrong record count)
    /// is rejected with [`ServiceError::ShardMap`] before any query runs.
    pub fn connect(
        addrs: &[SocketAddr],
        publication: &ShardedPublication,
    ) -> Result<ShardedClient, ServiceError> {
        verify_shard_map(&publication.shard_map, &publication.master_key)?;
        let map = &publication.shard_map.map;
        if addrs.len() != map.shards.len() {
            return Err(ServiceError::ShardMap(format!(
                "{} addresses for {} attested shards",
                addrs.len(),
                map.shards.len()
            )));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for (entry, addr) in map.shards.iter().zip(addrs) {
            let mut client =
                ServiceClient::connect(addr).map_err(|e| shard_failed(entry.shard_id, e))?;
            let info = client
                .shard_info()
                .map_err(|e| shard_failed(entry.shard_id, e))?;
            if info.shard_id != entry.shard_id
                || info.shard_count != map.shard_count
                || info.records != entry.records
            {
                return Err(ServiceError::ShardMap(format!(
                    "{addr} reports shard {}/{} with {} records, map attests shard {}/{} with {}",
                    info.shard_id,
                    info.shard_count,
                    info.records,
                    entry.shard_id,
                    map.shard_count,
                    entry.records
                )));
            }
            shards.push(ShardConnection {
                entry: entry.clone(),
                client,
            });
        }
        Ok(ShardedClient {
            shards,
            template: publication.template.clone(),
            total_records: map.total_records,
        })
    }

    /// Number of shards this client scatters to.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Scatters `query` to every shard, verifies every per-shard response
    /// under its attested key, and merges the results into the logical
    /// answer (ascending score order, exactly as a single server over the
    /// whole dataset would return).
    pub fn query_verified(&mut self, query: &Query) -> Result<ShardedResponse, ServiceError> {
        let request = Request::Query(query.clone());
        let mut failure: Option<ServiceError> = None;

        // Scatter: put one request in flight on every shard before reading
        // any response, so the per-shard work overlaps.
        let mut sent = vec![false; self.shards.len()];
        for (i, shard) in self.shards.iter_mut().enumerate() {
            match shard.client.send(&request) {
                Ok(()) => sent[i] = true,
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(shard_failed(shard.entry.shard_id, e));
                    }
                }
            }
        }

        // Gather: read every in-flight response even after a failure, so
        // surviving connections stay request/response aligned for the next
        // query.
        let mut candidates: Vec<(f64, Record)> = Vec::new();
        let mut per_shard_returned = vec![0usize; self.shards.len()];
        let template = &self.template;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !sent[i] {
                continue;
            }
            let outcome = shard.client.receive().and_then(|response| match response {
                Response::Query(response) => {
                    let verified = client::verify(
                        query,
                        &response.records,
                        &response.vo,
                        template,
                        &shard.entry.public_key,
                    )?;
                    Ok((response.records, verified.scores))
                }
                other => Err(crate::client::unexpected(&other)),
            });
            match outcome {
                Ok((records, scores)) => {
                    per_shard_returned[i] = records.len();
                    candidates.extend(scores.into_iter().zip(records));
                }
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(shard_failed(shard.entry.shard_id, e));
                    }
                }
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }

        merge(query, candidates, self.total_records, per_shard_returned)
    }

    /// Fetches every shard's counter snapshot, in shard-id order.
    pub fn stats_all(&mut self) -> Result<Vec<StatsSnapshot>, ServiceError> {
        self.shards
            .iter_mut()
            .map(|shard| {
                shard
                    .client
                    .stats()
                    .map_err(|e| shard_failed(shard.entry.shard_id, e))
            })
            .collect()
    }
}

fn shard_failed(shard_id: u32, error: ServiceError) -> ServiceError {
    ServiceError::ShardFailed {
        shard_id,
        error: Box::new(error),
    }
}

/// Merges verified per-shard candidates into the logical answer by sorting
/// the union in ascending (score, record id) order — the same total order a
/// single server's authenticated list uses — and applying the query's own
/// window selection to it.
fn merge(
    query: &Query,
    mut candidates: Vec<(f64, Record)>,
    total_records: u64,
    per_shard_returned: Vec<usize>,
) -> Result<ShardedResponse, ServiceError> {
    candidates.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.1.id.cmp(&b.1.id))
    });

    // Disjointness check: the attested map promises each record lives on
    // exactly one shard, so a duplicate id means a shard served data that is
    // not its own.
    let mut seen = HashSet::with_capacity(candidates.len());
    for (_, record) in &candidates {
        if !seen.insert(record.id) {
            return Err(ServiceError::ShardMap(format!(
                "record {} returned by more than one shard — shards are not disjoint",
                record.id
            )));
        }
    }

    let all_scores: Vec<f64> = candidates.iter().map(|c| c.0).collect();
    let (records, scores) = match query.select_window(&all_scores) {
        Some((start, end)) => (
            candidates[start..=end]
                .iter()
                .map(|c| c.1.clone())
                .collect(),
            all_scores[start..=end].to_vec(),
        ),
        None => (Vec::new(), Vec::new()),
    };

    // Length sanity against the *attested* dataset size: each shard returned
    // a verified min(k, n_shard) records, so the merged top-k/KNN answer
    // must hold exactly min(k, n_total). Anything else means the map and the
    // shard contents disagree.
    let expected = match query {
        Query::TopK { k, .. } | Query::Knn { k, .. } => (*k).min(total_records as usize),
        Query::Range { .. } => records.len(),
    };
    if records.len() != expected {
        return Err(ServiceError::ShardMap(format!(
            "merged answer holds {} records, the attested shard map implies {expected}",
            records.len()
        )));
    }

    Ok(ShardedResponse {
        records,
        scores,
        per_shard_returned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> Record {
        Record::new(id, vec![0.0])
    }

    #[test]
    fn merge_topk_selects_global_best_in_ascending_order() {
        // Shard A returned scores [0.9, 0.7], shard B [0.8, 0.2].
        let candidates = vec![
            (0.7, record(1)),
            (0.9, record(3)),
            (0.2, record(0)),
            (0.8, record(2)),
        ];
        let query = Query::top_k(vec![0.0], 2);
        let merged = merge(&query, candidates, 10, vec![2, 2]).unwrap();
        assert_eq!(merged.scores, vec![0.8, 0.9]);
        assert_eq!(
            merged.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 3]
        );
    }

    #[test]
    fn merge_range_concatenates_in_score_order() {
        let candidates = vec![(0.5, record(5)), (0.3, record(1)), (0.4, record(9))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        let merged = merge(&query, candidates, 10, vec![3]).unwrap();
        assert_eq!(merged.scores, vec![0.3, 0.4, 0.5]);
        assert_eq!(merged.records.len(), 3);
    }

    #[test]
    fn merge_knn_reranks_by_distance_to_target() {
        let candidates = vec![
            (0.1, record(0)),
            (0.45, record(1)),
            (0.55, record(2)),
            (0.95, record(3)),
        ];
        let query = Query::knn(vec![0.0], 2, 0.5);
        let merged = merge(&query, candidates, 4, vec![2, 2]).unwrap();
        assert_eq!(merged.scores, vec![0.45, 0.55]);
    }

    #[test]
    fn merge_rejects_duplicate_records_across_shards() {
        let candidates = vec![(0.1, record(7)), (0.2, record(7))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        assert!(matches!(
            merge(&query, candidates, 4, vec![1, 1]),
            Err(ServiceError::ShardMap(_))
        ));
    }

    #[test]
    fn merge_rejects_short_topk_answers() {
        // The attested map says 10 records exist, so top-3 must return 3.
        let candidates = vec![(0.1, record(0)), (0.2, record(1))];
        let query = Query::top_k(vec![0.0], 3);
        assert!(matches!(
            merge(&query, candidates, 10, vec![1, 1]),
            Err(ServiceError::ShardMap(_))
        ));
    }

    #[test]
    fn merge_breaks_score_ties_by_record_id() {
        let candidates = vec![(0.5, record(9)), (0.5, record(2)), (0.5, record(4))];
        let query = Query::range(vec![0.0], 0.0, 1.0);
        let merged = merge(&query, candidates, 3, vec![3]).unwrap();
        assert_eq!(
            merged.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            [2, 4, 9]
        );
    }
}
